//! The mote CPU: a cycle-accounting interpreter for lowered NLC programs.
//!
//! The interpreter charges exactly the static costs the estimators assume:
//! per block, the instruction costs plus the terminator base cost; per
//! control transfer, the layout-dependent penalty (0 for fall-through, the
//! taken-branch penalty, or the jump cost). With cycle-accurate timing and no
//! instrumentation overhead, a procedure's measured window is *identically*
//! `Σ block costs + Σ edge costs` along the path taken — the property the
//! whole tomography pipeline rests on (and which the tests here pin down).

use crate::cost::{block_costs, edge_costs, CostModel};
use crate::devices::Devices;
use crate::memory::GlobalStore;
use crate::pmu::Pmu;
use crate::trace::Profiler;
use ct_cfg::graph::{BlockId, Cfg, Terminator};
use ct_cfg::layout::{EdgeTransfer, Layout};
use ct_ir::ast::{BinOp, UnOp};
use ct_ir::instr::{Instr, Intrinsic, ProcId};
use ct_ir::program::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A runtime trap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapError {
    /// What went wrong.
    pub kind: TrapKind,
    /// The procedure that trapped.
    pub proc: ProcId,
    /// The block executing when the trap fired.
    pub block: BlockId,
}

/// Trap categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    /// Division or remainder by zero.
    DivideByZero,
    /// Array access outside bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
    },
    /// Call nesting exceeded the configured limit.
    CallDepthExceeded,
    /// Instruction budget exhausted (runaway loop).
    StepLimitExceeded,
    /// Operand stack underflow (malformed hand-built code).
    StackUnderflow,
    /// A call supplied the wrong number of arguments for the callee.
    ArgumentCountMismatch {
        /// Parameters the procedure declares.
        expected: usize,
        /// Arguments actually supplied.
        got: usize,
    },
}

impl fmt::Display for TrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            TrapKind::DivideByZero => "division by zero".to_string(),
            TrapKind::IndexOutOfBounds { index } => format!("index {index} out of bounds"),
            TrapKind::CallDepthExceeded => "call depth exceeded".to_string(),
            TrapKind::StepLimitExceeded => "step limit exceeded".to_string(),
            TrapKind::StackUnderflow => "operand stack underflow".to_string(),
            TrapKind::ArgumentCountMismatch { expected, got } => {
                format!("argument count mismatch: expected {expected}, got {got}")
            }
        };
        write!(f, "trap in p{} at {}: {what}", self.proc.0, self.block)
    }
}

impl Error for TrapError {}

/// Execution limits and fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Maximum instructions per top-level call.
    pub step_limit: u64,
    /// Maximum call nesting depth.
    pub call_depth_limit: usize,
    /// Probability that an activation is contaminated by an interrupt
    /// (experiment E6's noise model).
    pub contamination_prob: f64,
    /// Cycles an interrupt steals inside the measured window.
    pub contamination_cycles: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            step_limit: 10_000_000,
            call_depth_limit: 32,
            contamination_prob: 0.0,
            contamination_cycles: 0,
        }
    }
}

/// Pre-resolved edge indices for one block's terminator, so the interpreter
/// never hashes `(from, to)` on the hot path. Both fields resolve through
/// the same `(from, to)` map the old per-transfer lookup used, so a branch
/// whose arms share a target keeps its historical single-edge accounting.
#[derive(Clone, Copy, Default)]
struct TermEdgeIds {
    /// Edge taken by a `Jump`, or by a `Branch` when the condition is true.
    on_true: usize,
    /// Edge taken by a `Branch` when the condition is false.
    on_false: usize,
}

/// Boot-time-resolved executable image of one procedure.
///
/// Everything the dispatch loop reads per instruction or per block lives
/// here, flat and behind one `Arc`: `call_inner` clones the handle once per
/// invocation and hands the loop an owned view, so the hot path never
/// re-borrows `self` — the block's instructions become a plain slice
/// iteration (no per-instruction triple indexing, no bounds checks the
/// optimizer can't drop) while `&mut self` stays free for RAM, the cycle
/// counter and the PMU.
struct ProcCode {
    /// All blocks' instructions, paired with their (boot-time constant)
    /// cycle costs, concatenated in block order.
    code: Vec<(Instr, u64)>,
    /// Per block: half-open `[start, end)` range into `code`.
    span: Vec<(u32, u32)>,
    /// Per block: the terminator, copied out of the CFG.
    term: Vec<Terminator>,
    /// Per block: pre-resolved terminator edge indices.
    term_edges: Vec<TermEdgeIds>,
}

/// A simulated mote: program image, CPU cost model, flash layout, RAM,
/// peripherals and a cycle counter.
pub struct Mote {
    program: Program,
    cost_model: Box<dyn CostModel>,
    layouts: Vec<Layout>,
    block_costs: Vec<Vec<u64>>,
    edge_costs: Vec<Vec<u64>>,
    edge_transfers: Vec<Vec<EdgeTransfer>>,
    /// Per proc: the boot-time-resolved executable image the dispatch loop
    /// runs from (see [`ProcCode`]).
    code: Vec<Arc<ProcCode>>,
    /// The virtual performance-monitoring unit: zero-overhead hardware
    /// counters sampled at every control transfer.
    pub pmu: Pmu,
    /// Module-variable RAM.
    pub globals: GlobalStore,
    /// Peripherals.
    pub devices: Devices,
    /// Execution limits and fault injection.
    pub config: ExecConfig,
    /// The CPU cycle counter.
    pub cycles: u64,
    rng: StdRng,
    steps_left: u64,
}

impl fmt::Debug for Mote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mote")
            .field("program", &self.program.name)
            .field("cost_model", &self.cost_model.name())
            .field("cycles", &self.cycles)
            .finish()
    }
}

impl Mote {
    /// Boots a mote with `program` under `cost_model`, natural (compiler
    /// id-order) layouts, default devices and a fixed RNG seed.
    pub fn new(program: Program, cost_model: Box<dyn CostModel>) -> Mote {
        let layouts: Vec<Layout> = program
            .procs
            .iter()
            .map(|p| Layout::natural(&p.cfg))
            .collect();
        Mote::with_layouts(program, cost_model, layouts)
    }

    /// Boots a mote with explicit per-procedure layouts (post-placement
    /// images).
    ///
    /// # Panics
    ///
    /// Panics if `layouts.len()` differs from the procedure count.
    pub fn with_layouts(
        program: Program,
        cost_model: Box<dyn CostModel>,
        layouts: Vec<Layout>,
    ) -> Mote {
        assert_eq!(
            layouts.len(),
            program.procs.len(),
            "one layout per procedure"
        );
        let block_costs: Vec<Vec<u64>> = program
            .procs
            .iter()
            .map(|p| block_costs(p, cost_model.as_ref()))
            .collect();
        let edge_costs: Vec<Vec<u64>> = program
            .procs
            .iter()
            .zip(&layouts)
            .map(|(p, l)| edge_costs(p, cost_model.as_ref(), l))
            .collect();
        let code: Vec<Arc<ProcCode>> = program
            .procs
            .iter()
            .map(|p| {
                let mut flat = Vec::new();
                let mut span = Vec::with_capacity(p.code.len());
                for block in &p.code {
                    let s = flat.len() as u32;
                    flat.extend(block.iter().map(|i| (*i, cost_model.instr_cost(i))));
                    span.push((s, flat.len() as u32));
                }
                let by_pair: HashMap<(u32, u32), usize> = p
                    .cfg
                    .edges()
                    .iter()
                    .map(|e| ((e.from.0, e.to.0), e.index))
                    .collect();
                let mut term = Vec::with_capacity(p.code.len());
                let mut term_edges = Vec::with_capacity(p.code.len());
                for b in 0..p.code.len() {
                    let from = BlockId(b as u32);
                    let t = p.cfg.block(from).term;
                    term.push(t);
                    term_edges.push(match t {
                        Terminator::Return => TermEdgeIds::default(),
                        Terminator::Jump(t) => TermEdgeIds {
                            on_true: by_pair[&(from.0, t.0)],
                            on_false: 0,
                        },
                        Terminator::Branch { on_true, on_false } => TermEdgeIds {
                            on_true: by_pair[&(from.0, on_true.0)],
                            on_false: by_pair[&(from.0, on_false.0)],
                        },
                    });
                }
                Arc::new(ProcCode {
                    code: flat,
                    span,
                    term,
                    term_edges,
                })
            })
            .collect();
        let edge_transfers: Vec<Vec<EdgeTransfer>> = program
            .procs
            .iter()
            .zip(&layouts)
            .map(|(p, l)| l.edge_transfers(&p.cfg))
            .collect();
        let pmu = Pmu::new(program.procs.len());
        let globals = GlobalStore::new(&program);
        Mote {
            program,
            cost_model,
            layouts,
            block_costs,
            edge_costs,
            edge_transfers,
            code,
            pmu,
            globals,
            devices: Devices::default(),
            config: ExecConfig::default(),
            cycles: 0,
            rng: StdRng::seed_from_u64(0x00C0_DE70 + 1),
            steps_left: 0,
        }
    }

    /// The program image.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The CPU cost model.
    pub fn cost_model(&self) -> &dyn CostModel {
        self.cost_model.as_ref()
    }

    /// The layout of `proc`.
    pub fn layout(&self, proc: ProcId) -> &Layout {
        &self.layouts[proc.index()]
    }

    /// Replaces the layout of `proc` (re-deriving edge costs), e.g. after
    /// running the placement optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the layout does not fit the procedure's CFG.
    pub fn set_layout(&mut self, proc: ProcId, layout: Layout) {
        let p = &self.program.procs[proc.index()];
        assert_eq!(
            layout.order().len(),
            p.cfg.len(),
            "layout does not fit procedure"
        );
        self.edge_costs[proc.index()] = edge_costs(p, self.cost_model.as_ref(), &layout);
        self.edge_transfers[proc.index()] = layout.edge_transfers(&p.cfg);
        self.layouts[proc.index()] = layout;
    }

    /// Static per-block cycle costs of `proc` (what the estimators consume).
    pub fn static_block_costs(&self, proc: ProcId) -> &[u64] {
        &self.block_costs[proc.index()]
    }

    /// Static per-edge transfer costs of `proc` under its current layout.
    pub fn static_edge_costs(&self, proc: ProcId) -> &[u64] {
        &self.edge_costs[proc.index()]
    }

    /// Reseeds the mote's RNG (inputs, radio loss, contamination).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Resets RAM to the program's initial values (cycle counter continues).
    pub fn reset_memory(&mut self) {
        self.globals.reset(&self.program);
    }

    /// Calls `proc` with `args`, observing through `profiler`.
    ///
    /// # Errors
    ///
    /// Returns a [`TrapError`] on runtime faults (including an argument
    /// count that does not match the callee); the mote's memory may be
    /// partially updated but remains usable.
    pub fn call(
        &mut self,
        proc: ProcId,
        args: &[i64],
        profiler: &mut dyn Profiler,
    ) -> Result<Option<i64>, TrapError> {
        self.steps_left = self.config.step_limit;
        self.call_inner(proc, args, profiler, 0)
    }

    fn call_inner(
        &mut self,
        proc: ProcId,
        args: &[i64],
        profiler: &mut dyn Profiler,
        depth: usize,
    ) -> Result<Option<i64>, TrapError> {
        let entry = self.program.procs[proc.index()].cfg.entry();
        if depth >= self.config.call_depth_limit {
            return Err(TrapError {
                kind: TrapKind::CallDepthExceeded,
                proc,
                block: entry,
            });
        }
        let (n_params, n_locals, has_ret) = {
            let p = &self.program.procs[proc.index()];
            (p.params.len(), p.n_locals as usize, p.ret.is_some())
        };
        if args.len() != n_params {
            return Err(TrapError {
                kind: TrapKind::ArgumentCountMismatch {
                    expected: n_params,
                    got: args.len(),
                },
                proc,
                block: entry,
            });
        }

        // The PMU activation window opens before instrumentation charges,
        // so per-procedure cycle attribution includes the profiler's own
        // overhead — that is what E3 measures in mote cycles.
        self.pmu.enter(proc, self.cycles);
        let overhead = profiler.on_proc_enter(proc, self.cycles);
        self.cycles += overhead;
        // Interrupt contamination lands inside the measured window.
        if self.config.contamination_prob > 0.0 && self.rng.gen_bool(self.config.contamination_prob)
        {
            self.cycles += self.config.contamination_cycles;
        }

        let mut locals = vec![0i64; n_locals];
        locals[..n_params].copy_from_slice(args);
        let mut stack: Vec<i64> = Vec::with_capacity(8);
        let mut cur = entry;
        // One refcount bump per invocation buys the dispatch loop an owned
        // view of the procedure image (see [`ProcCode`]).
        let pc = Arc::clone(&self.code[proc.index()]);

        let result = loop {
            let overhead = profiler.on_block(proc, cur, self.cycles);
            self.cycles += overhead;
            match self.exec_block(proc, cur, &pc, &mut locals, &mut stack, profiler, depth) {
                Ok(ControlFlow::Continue(next)) => cur = next,
                Ok(ControlFlow::Return(v)) => break Ok(if has_ret { v } else { None }),
                Err(e) => break Err(e),
            }
        };

        let overhead = profiler.on_proc_exit(proc, self.cycles);
        self.cycles += overhead;
        // Close the window after exit instrumentation too — and on the trap
        // path, so unwinding stays balanced like the profiler's.
        self.pmu.exit(proc, self.cycles);
        result
    }

    #[allow(clippy::too_many_arguments)] // hot path: flat args beat a context struct rebuilt per block
    fn exec_block(
        &mut self,
        proc: ProcId,
        block: BlockId,
        pc: &ProcCode,
        locals: &mut [i64],
        stack: &mut Vec<i64>,
        profiler: &mut dyn Profiler,
        depth: usize,
    ) -> Result<ControlFlow, TrapError> {
        let trap = |kind: TrapKind| TrapError { kind, proc, block };
        let (s, e) = pc.span[block.index()];

        for &(instr, cost) in &pc.code[s as usize..e as usize] {
            if self.steps_left == 0 {
                return Err(trap(TrapKind::StepLimitExceeded));
            }
            self.steps_left -= 1;
            self.cycles += cost;
            match instr {
                Instr::PushConst(v) => stack.push(v),
                Instr::LoadLocal(n) => stack.push(locals[n as usize]),
                Instr::StoreLocal(n) => {
                    let v = stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                    locals[n as usize] = v;
                }
                Instr::LoadGlobal(g) => stack.push(self.globals.load(g)),
                Instr::StoreGlobal(g) => {
                    let v = stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                    self.globals.store(g, v);
                }
                Instr::LoadElem(g) => {
                    let idx = stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                    let v = self
                        .globals
                        .load_elem(g, idx)
                        .ok_or_else(|| trap(TrapKind::IndexOutOfBounds { index: idx }))?;
                    stack.push(v);
                }
                Instr::StoreElem(g) => {
                    let v = stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                    let idx = stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                    if !self.globals.store_elem(g, idx, v) {
                        return Err(trap(TrapKind::IndexOutOfBounds { index: idx }));
                    }
                }
                Instr::Unary(op) => {
                    let v = stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                    stack.push(match op {
                        UnOp::Neg => v.wrapping_neg(),
                        UnOp::Not => (v == 0) as i64,
                        UnOp::BitNot => !v,
                    });
                }
                Instr::Binary(op) => {
                    let r = stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                    let l = stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                    let v = match op {
                        BinOp::Add => l.wrapping_add(r),
                        BinOp::Sub => l.wrapping_sub(r),
                        BinOp::Mul => l.wrapping_mul(r),
                        BinOp::Div => {
                            if r == 0 {
                                return Err(trap(TrapKind::DivideByZero));
                            }
                            l.wrapping_div(r)
                        }
                        BinOp::Rem => {
                            if r == 0 {
                                return Err(trap(TrapKind::DivideByZero));
                            }
                            l.wrapping_rem(r)
                        }
                        BinOp::BitAnd => l & r,
                        BinOp::BitOr => l | r,
                        BinOp::BitXor => l ^ r,
                        // MCU shifters are loop-shifts: each count moves one
                        // bit, so counts at or beyond the accumulator width
                        // shift everything out (Shr sign-fills) instead of
                        // aliasing mod 64 — `x << 65` on a 16-bit operand
                        // must not behave like `x << 1`. Negative counts,
                        // reinterpreted as huge unsigned values, shift out
                        // too.
                        BinOp::Shl => match u32::try_from(r) {
                            Ok(n) if n < 64 => l.wrapping_shl(n),
                            _ => 0,
                        },
                        BinOp::Shr => match u32::try_from(r) {
                            Ok(n) if n < 64 => l.wrapping_shr(n),
                            _ => -i64::from(l < 0),
                        },
                        BinOp::Lt => (l < r) as i64,
                        BinOp::Le => (l <= r) as i64,
                        BinOp::Gt => (l > r) as i64,
                        BinOp::Ge => (l >= r) as i64,
                        BinOp::Eq => (l == r) as i64,
                        BinOp::Ne => (l != r) as i64,
                        BinOp::And => ((l != 0) && (r != 0)) as i64,
                        BinOp::Or => ((l != 0) || (r != 0)) as i64,
                    };
                    stack.push(v);
                }
                Instr::Cast(ty) => {
                    let v = stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                    stack.push(ty.wrap(v));
                }
                Instr::Call(callee) => {
                    let argc = self.program.procs[callee.index()].params.len();
                    if stack.len() < argc {
                        return Err(trap(TrapKind::StackUnderflow));
                    }
                    let args: Vec<i64> = stack.split_off(stack.len() - argc);
                    let result = self.call_inner(callee, &args, profiler, depth + 1)?;
                    if let Some(v) = result {
                        stack.push(v);
                    }
                }
                Instr::Intrinsic(intr) => self.exec_intrinsic(intr, stack, &trap)?,
                Instr::Pop => {
                    stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                }
            }
        }

        // Terminator.
        match pc.term[block.index()] {
            Terminator::Return => {
                self.cycles += self.cost_model.return_cost();
                self.pmu.record_return(proc);
                let v = if self.program.procs[proc.index()].ret.is_some() {
                    Some(stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?)
                } else {
                    None
                };
                Ok(ControlFlow::Return(v))
            }
            Terminator::Jump(t) => {
                let ei = pc.term_edges[block.index()].on_true;
                self.take_edge(proc, ei, profiler);
                Ok(ControlFlow::Continue(t))
            }
            Terminator::Branch { on_true, on_false } => {
                self.cycles += self.cost_model.branch_base();
                let cond = stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow))?;
                let ids = pc.term_edges[block.index()];
                let (next, ei) = if cond != 0 {
                    (on_true, ids.on_true)
                } else {
                    (on_false, ids.on_false)
                };
                self.take_edge(proc, ei, profiler);
                Ok(ControlFlow::Continue(next))
            }
        }
    }

    fn take_edge(&mut self, proc: ProcId, ei: usize, profiler: &mut dyn Profiler) {
        self.cycles += self.edge_costs[proc.index()][ei];
        let t = self.edge_transfers[proc.index()][ei];
        self.pmu.record_transfer(proc, t);
        let overhead = profiler.on_edge(proc, ei);
        self.cycles += overhead;
    }

    fn exec_intrinsic(
        &mut self,
        intr: Intrinsic,
        stack: &mut Vec<i64>,
        trap: &dyn Fn(TrapKind) -> TrapError,
    ) -> Result<(), TrapError> {
        let pop = |stack: &mut Vec<i64>| stack.pop().ok_or_else(|| trap(TrapKind::StackUnderflow));
        match intr {
            Intrinsic::ReadAdc => {
                let v = self.devices.adc.sample(&mut self.rng);
                self.devices.adc_samples += 1;
                stack.push(v as i64);
            }
            Intrinsic::LedSet => {
                let on = pop(stack)?;
                let which = pop(stack)?;
                self.devices.leds.set(which as u8, on != 0);
            }
            Intrinsic::LedToggle => {
                let which = pop(stack)?;
                self.devices.leds.toggle(which as u8);
            }
            Intrinsic::SendMsg => {
                let payload = pop(stack)?;
                let ok = self.devices.radio.send(payload as u16, &mut self.rng);
                stack.push(ok as i64);
            }
            Intrinsic::RecvAvail => stack.push(self.devices.radio.rx_available() as i64),
            Intrinsic::RecvMsg => stack.push(self.devices.radio.receive() as i64),
            Intrinsic::NodeId => stack.push(self.devices.node_id as i64),
        }
        Ok(())
    }
}

enum ControlFlow {
    Continue(BlockId),
    Return(Option<i64>),
}

/// Convenience: the CFG of `proc` inside a mote's program.
pub fn proc_cfg(mote: &Mote, proc: ProcId) -> &Cfg {
    &mote.program().procs[proc.index()].cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AvrCost;
    use crate::timer::VirtualTimer;
    use crate::trace::{GroundTruthProfiler, NullProfiler, TimingProfiler};

    fn boot(src: &str) -> Mote {
        Mote::new(ct_ir::compile_source(src).unwrap(), Box::new(AvrCost))
    }

    #[test]
    fn arithmetic_and_return() {
        let mut mote = boot("module M { proc add(a: u16, b: u16) -> u16 { return a + b; } }");
        let r = mote.call(ProcId(0), &[3, 4], &mut NullProfiler).unwrap();
        assert_eq!(r, Some(7));
    }

    #[test]
    fn wrong_arity_traps_instead_of_panicking() {
        let mut mote = boot("module M { proc add(a: u16, b: u16) -> u16 { return a + b; } }");
        let e = mote.call(ProcId(0), &[3], &mut NullProfiler).unwrap_err();
        assert_eq!(
            e.kind,
            TrapKind::ArgumentCountMismatch {
                expected: 2,
                got: 1
            }
        );
        assert!(e.to_string().contains("argument count mismatch"));
        // The mote stays usable after the trap.
        let r = mote.call(ProcId(0), &[3, 4], &mut NullProfiler).unwrap();
        assert_eq!(r, Some(7));
    }

    #[test]
    fn wrapping_on_store() {
        let mut mote = boot("module M { proc f(a: u8) -> u8 { var x: u8 = a + 200; return x; } }");
        let r = mote.call(ProcId(0), &[100], &mut NullProfiler).unwrap();
        assert_eq!(r, Some(44)); // 300 wrapped to u8
    }

    #[test]
    fn shifts_beyond_width_shift_out_on_both_mcus() {
        use crate::cost::{CostModel, Msp430Cost};
        let src = "module M {
            proc shl(x: u16, n: u16) -> u16 { return x << n; }
            proc shr(x: u16, n: u16) -> u16 { return x >> n; }
        }";
        let models: [Box<dyn CostModel>; 2] = [Box::new(AvrCost), Box::new(Msp430Cost)];
        for model in models {
            let mut mote = Mote::new(ct_ir::compile_source(src).unwrap(), model);
            let shl = |mote: &mut Mote, x: i64, n: i64| {
                mote.call(ProcId(0), &[x, n], &mut NullProfiler).unwrap()
            };
            let shr = |mote: &mut Mote, x: i64, n: i64| {
                mote.call(ProcId(1), &[x, n], &mut NullProfiler).unwrap()
            };
            // In-width shifts behave normally.
            assert_eq!(shl(&mut mote, 1, 3), Some(8));
            assert_eq!(shr(&mut mote, 0x8000, 15), Some(1));
            // A 16-bit operand shifted by 17 loses every bit: the count
            // exceeds the width, and the wrap-on-store finishes the job.
            assert_eq!(shl(&mut mote, 1, 17), Some(0));
            assert_eq!(shr(&mut mote, 0x8000, 17), Some(0));
            // Shift-by-65 is the regression case: the old `& 63` mask
            // aliased it to shift-by-1 (2 and 0x4000 here) instead of
            // shifting out.
            assert_eq!(shl(&mut mote, 1, 65), Some(0));
            assert_eq!(shr(&mut mote, 0x8000, 65), Some(0));
        }
    }

    #[test]
    fn branching_follows_condition() {
        let src = "module M { proc f(x: u16) -> u16 {
            var y: u16 = 0;
            if (x > 10) { y = 1; } else { y = 2; }
            return y;
        } }";
        let mut mote = boot(src);
        assert_eq!(
            mote.call(ProcId(0), &[20], &mut NullProfiler).unwrap(),
            Some(1)
        );
        assert_eq!(
            mote.call(ProcId(0), &[5], &mut NullProfiler).unwrap(),
            Some(2)
        );
    }

    #[test]
    fn loops_iterate() {
        let src = "module M { proc sum(n: u16) -> u32 {
            var acc: u32 = 0;
            var i: u16 = 0;
            while (i < n) { acc = acc + i; i = i + 1; }
            return acc;
        } }";
        let mut mote = boot(src);
        assert_eq!(
            mote.call(ProcId(0), &[10], &mut NullProfiler).unwrap(),
            Some(45)
        );
        assert_eq!(
            mote.call(ProcId(0), &[0], &mut NullProfiler).unwrap(),
            Some(0)
        );
    }

    #[test]
    fn globals_persist_across_calls() {
        let src =
            "module M { var total: u32; proc bump() -> u32 { total = total + 1; return total; } }";
        let mut mote = boot(src);
        for expected in 1..=5 {
            let r = mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
            assert_eq!(r, Some(expected));
        }
        mote.reset_memory();
        assert_eq!(
            mote.call(ProcId(0), &[], &mut NullProfiler).unwrap(),
            Some(1)
        );
    }

    #[test]
    fn nested_calls_compute() {
        let src = "module M {
            proc sq(x: u16) -> u32 { return x * x; }
            proc sumsq(a: u16, b: u16) -> u32 { return sq(a) + sq(b); }
        }";
        let mut mote = boot(src);
        assert_eq!(
            mote.call(ProcId(1), &[3, 4], &mut NullProfiler).unwrap(),
            Some(25)
        );
    }

    #[test]
    fn arrays_read_write() {
        let src = "module M { var buf: u16[8]; proc fill(n: u16) -> u16 {
            var i: u16 = 0;
            while (i < n) { buf[i] = i * 3; i = i + 1; }
            return buf[2];
        } }";
        let mut mote = boot(src);
        assert_eq!(
            mote.call(ProcId(0), &[8], &mut NullProfiler).unwrap(),
            Some(6)
        );
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut mote = boot("module M { proc f(x: u16) -> u16 { return 10 / x; } }");
        let e = mote.call(ProcId(0), &[0], &mut NullProfiler).unwrap_err();
        assert_eq!(e.kind, TrapKind::DivideByZero);
        // The mote survives the trap.
        assert_eq!(
            mote.call(ProcId(0), &[2], &mut NullProfiler).unwrap(),
            Some(5)
        );
    }

    #[test]
    fn index_out_of_bounds_traps() {
        let mut mote = boot("module M { var b: u8[2]; proc f(i: u16) { b[i] = 1; } }");
        let e = mote.call(ProcId(0), &[5], &mut NullProfiler).unwrap_err();
        assert_eq!(e.kind, TrapKind::IndexOutOfBounds { index: 5 });
    }

    #[test]
    fn runaway_loop_hits_step_limit() {
        let mut mote = boot("module M { proc f() { var i: u16 = 1; while (i > 0) { i = 1; } } }");
        mote.config.step_limit = 10_000;
        let e = mote.call(ProcId(0), &[], &mut NullProfiler).unwrap_err();
        assert_eq!(e.kind, TrapKind::StepLimitExceeded);
    }

    #[test]
    fn cycles_advance_deterministically() {
        let mut mote = boot("module M { proc f(x: u16) -> u16 { return x + 1; } }");
        let c0 = mote.cycles;
        mote.call(ProcId(0), &[1], &mut NullProfiler).unwrap();
        let c1 = mote.cycles;
        mote.call(ProcId(0), &[1], &mut NullProfiler).unwrap();
        let c2 = mote.cycles;
        assert!(c1 > c0);
        assert_eq!(c2 - c1, c1 - c0, "identical calls cost identical cycles");
    }

    #[test]
    fn window_equals_path_cost() {
        // The core timing identity: measured window (cycle-accurate, zero
        // overhead) == Σ block costs + Σ edge costs along the executed path.
        let src = "module M { var a: u16; proc f(x: u16) {
            if (x > 10) { a = a + x; } else { a = a * 2; }
        } }";
        let mut mote = boot(src);
        let pid = ProcId(0);
        let program = mote.program().clone();
        for &arg in &[20i64, 5] {
            let mut gt = GroundTruthProfiler::new(&program);
            let mut tp = TimingProfiler::new(&program, VirtualTimer::cycle_accurate(), 0);
            let mut pair = crate::trace::PairProfiler {
                a: &mut gt,
                b: &mut tp,
            };
            mote.call(pid, &[arg], &mut pair).unwrap();
            let bc = mote.static_block_costs(pid);
            let ec = mote.static_edge_costs(pid);
            let cfg = &program.procs[0].cfg;
            // Path cost from the exact edge profile.
            let visits = gt.profile(pid).block_visits(cfg, 1);
            let block_sum: u64 = visits.iter().enumerate().map(|(i, &v)| v * bc[i]).sum();
            let edge_sum: u64 = (0..cfg.edges().len())
                .map(|i| gt.profile(pid).count(i) * ec[i])
                .sum();
            assert_eq!(tp.samples(pid), &[block_sum + edge_sum], "arg={arg}");
        }
    }

    #[test]
    fn exclusive_windows_subtract_callees() {
        let src = "module M {
            proc leaf(x: u16) -> u16 { return x * 2; }
            proc top(x: u16) -> u16 { var y: u16 = leaf(x); return y + leaf(y); }
        }";
        let mut mote = boot(src);
        let program = mote.program().clone();
        let mut tp = TimingProfiler::new(&program, VirtualTimer::cycle_accurate(), 0);
        mote.call(ProcId(1), &[3], &mut tp).unwrap();
        // leaf has two identical activations; top's exclusive time excludes them.
        assert_eq!(tp.samples(ProcId(0)).len(), 2);
        assert_eq!(tp.samples(ProcId(0))[0], tp.samples(ProcId(0))[1]);
        assert_eq!(tp.samples(ProcId(1)).len(), 1);
        // Exclusive top time is layout/call-overhead only, far less than the window.
        let leaf_total: u64 = tp.samples(ProcId(0)).iter().sum();
        assert!(tp.samples(ProcId(1))[0] > 0);
        assert!(leaf_total > 0);
    }

    #[test]
    fn intrinsics_drive_devices() {
        let src = "module M { proc f() -> u16 {
            led_toggle(0);
            var ok: bool = send_msg(99);
            var v: u16 = read_adc();
            return v;
        } }";
        let mut mote = boot(src);
        mote.devices.adc = Box::new(crate::devices::ConstantAdc(777));
        let r = mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        assert_eq!(r, Some(777));
        assert!(mote.devices.leds.state[0]);
        assert_eq!(mote.devices.radio.sent, vec![99]);
    }

    #[test]
    fn radio_receive_path() {
        let src = "module M { proc f() -> u16 {
            var v: u16 = 0;
            if (recv_avail()) { v = recv_msg(); } else { v = 9999; }
            return v;
        } }";
        let mut mote = boot(src);
        assert_eq!(
            mote.call(ProcId(0), &[], &mut NullProfiler).unwrap(),
            Some(9999)
        );
        mote.devices.radio.deliver(42);
        assert_eq!(
            mote.call(ProcId(0), &[], &mut NullProfiler).unwrap(),
            Some(42)
        );
    }

    #[test]
    fn contamination_inflates_windows() {
        let src = "module M { proc f() { led_toggle(0); } }";
        let mut mote = boot(src);
        let program = mote.program().clone();
        let mut tp = TimingProfiler::new(&program, VirtualTimer::cycle_accurate(), 0);
        mote.call(ProcId(0), &[], &mut tp).unwrap();
        let clean = tp.samples(ProcId(0))[0];

        mote.config.contamination_prob = 1.0;
        mote.config.contamination_cycles = 500;
        let mut tp2 = TimingProfiler::new(&program, VirtualTimer::cycle_accurate(), 0);
        mote.call(ProcId(0), &[], &mut tp2).unwrap();
        assert_eq!(tp2.samples(ProcId(0))[0], clean + 500);
    }

    #[test]
    fn layout_change_alters_cycle_cost() {
        let src = "module M { var a: u16; proc f(x: u16) {
            if (x > 10) { a = 1; } else { a = 2; }
        } }";
        let mut mote = boot(src);
        let pid = ProcId(0);
        let cfg = mote.program().procs[0].cfg.clone();

        let run_cost = |mote: &mut Mote| {
            let before = mote.cycles;
            mote.call(pid, &[20], &mut NullProfiler).unwrap(); // always true arm
            mote.cycles - before
        };
        let natural_cost = run_cost(&mut mote);
        // Lowering emits blocks as [cond, join, then, else], so the natural
        // layout displaces both branch targets. Moving the hot then-arm right
        // after the condition makes it a fall-through and elides the jump.
        let order: Vec<_> = {
            use ct_cfg::graph::BlockId;
            let mut o: Vec<BlockId> = cfg.block_ids().collect();
            o.swap(1, 2); // [cond, then, join, else]
            o
        };
        let hot_fallthrough = Layout::from_order(&cfg, order).unwrap();
        mote.set_layout(pid, hot_fallthrough);
        let optimized_cost = run_cost(&mut mote);
        assert!(
            optimized_cost < natural_cost,
            "{optimized_cost} vs {natural_cost}"
        );
    }

    #[test]
    fn call_depth_limit_enforced() {
        // Build an artificial deep chain via hand-written wrappers.
        let src = "module M {
            proc p0() { led_toggle(0); }
            proc p1() { p0(); }
            proc p2() { p1(); }
            proc p3() { p2(); }
        }";
        let mut mote = boot(src);
        mote.config.call_depth_limit = 2;
        let e = mote.call(ProcId(3), &[], &mut NullProfiler).unwrap_err();
        assert_eq!(e.kind, TrapKind::CallDepthExceeded);
    }

    #[test]
    fn trap_display_names_location() {
        let e = TrapError {
            kind: TrapKind::DivideByZero,
            proc: ProcId(1),
            block: BlockId(2),
        };
        assert!(e.to_string().contains("p1"));
        assert!(e.to_string().contains("b2"));
    }
}

//! Semantic analysis: name resolution, kind checking, structural rules.
//!
//! Rules enforced here (beyond syntax):
//!
//! - unique global, procedure and per-procedure local names; locals may not
//!   shadow globals or parameters; procedures may not shadow intrinsics;
//! - conditions are `bool`; arithmetic is integer; `==`/`!=` compare equal
//!   kinds; `&&`/`||`/`!` are boolean-only;
//! - array variables are indexed, scalars are not; array indices are integers;
//! - calls match arity and argument kinds; void calls cannot be used as
//!   values;
//! - `return` appears only as the last statement of a procedure body (this is
//!   what guarantees lowered CFGs are structured and single-exit);
//! - the call graph is acyclic (no recursion — mote stacks are tiny, and
//!   exclusive-time sample extraction relies on properly nested activations).

use crate::ast::*;
use crate::error::IrError;
use crate::instr::{GlobalId, Intrinsic, ProcId, ValKind};
use crate::token::Span;
use crate::types::Ty;
use std::collections::HashMap;

/// Resolution tables produced by [`analyze`], consumed by lowering.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Global name → (id, element type, array length if any).
    pub globals: HashMap<String, (GlobalId, Ty, Option<u32>)>,
    /// Procedure name → (id, parameter types, return type).
    pub procs: HashMap<String, (ProcId, Vec<Ty>, Option<Ty>)>,
    /// Per-procedure local name → (slot, type); parameters occupy the first
    /// slots. Indexed by [`ProcId`].
    pub locals: Vec<HashMap<String, (u16, Ty)>>,
    /// Per-procedure total slot count. Indexed by [`ProcId`].
    pub n_locals: Vec<u16>,
}

/// Kind of a checked expression (`None` means void, only legal in statement
/// position).
type ExprKindResult = Result<Option<ValKind>, IrError>;

fn kind_of(ty: Ty) -> ValKind {
    if ty == Ty::Bool {
        ValKind::Bool
    } else {
        ValKind::Int
    }
}

fn sema_err(message: impl Into<String>, span: Span) -> IrError {
    IrError::Sema {
        message: message.into(),
        span,
    }
}

/// Checks `module` and builds its resolution tables.
///
/// # Errors
///
/// Returns the first [`IrError::Sema`] violation found.
pub fn analyze(module: &Module) -> Result<Analysis, IrError> {
    let mut globals = HashMap::new();
    for (i, g) in module.globals.iter().enumerate() {
        if globals.contains_key(&g.name) {
            return Err(sema_err(format!("duplicate global `{}`", g.name), g.span));
        }
        if let Some(init) = g.init {
            if g.ty == Ty::Bool && !(init == 0 || init == 1) {
                return Err(sema_err("bool initializer must be 0 or 1", g.span));
            }
        }
        globals.insert(g.name.clone(), (GlobalId(i as u32), g.ty, g.array_len));
    }

    let mut procs = HashMap::new();
    for (i, p) in module.procs.iter().enumerate() {
        if Intrinsic::from_name(&p.name).is_some() {
            return Err(sema_err(
                format!("procedure `{}` shadows an intrinsic", p.name),
                p.span,
            ));
        }
        if procs.contains_key(&p.name) {
            return Err(sema_err(
                format!("duplicate procedure `{}`", p.name),
                p.span,
            ));
        }
        let params: Vec<Ty> = p.params.iter().map(|q| q.ty).collect();
        procs.insert(p.name.clone(), (ProcId(i as u32), params, p.ret));
    }

    let mut all_locals = Vec::with_capacity(module.procs.len());
    let mut n_locals_all = Vec::with_capacity(module.procs.len());
    for p in &module.procs {
        let mut checker = ProcChecker {
            globals: &globals,
            procs: &procs,
            locals: HashMap::new(),
            proc: p,
        };
        checker.collect_and_check()?;
        n_locals_all.push(checker.locals.len() as u16);
        all_locals.push(checker.locals);
    }

    let analysis = Analysis {
        globals,
        procs,
        locals: all_locals,
        n_locals: n_locals_all,
    };
    check_no_recursion(module, &analysis)?;
    Ok(analysis)
}

struct ProcChecker<'a> {
    globals: &'a HashMap<String, (GlobalId, Ty, Option<u32>)>,
    procs: &'a HashMap<String, (ProcId, Vec<Ty>, Option<Ty>)>,
    locals: HashMap<String, (u16, Ty)>,
    proc: &'a ProcDecl,
}

impl<'a> ProcChecker<'a> {
    fn collect_and_check(&mut self) -> Result<(), IrError> {
        for param in &self.proc.params {
            self.declare_local(&param.name, param.ty, param.span)?;
        }
        self.check_stmts(&self.proc.body, true)?;
        Ok(())
    }

    fn declare_local(&mut self, name: &str, ty: Ty, span: Span) -> Result<u16, IrError> {
        if self.globals.contains_key(name) {
            return Err(sema_err(format!("local `{name}` shadows a global"), span));
        }
        if self.locals.contains_key(name) {
            return Err(sema_err(format!("duplicate local `{name}`"), span));
        }
        let slot = self.locals.len() as u16;
        self.locals.insert(name.to_string(), (slot, ty));
        Ok(slot)
    }

    /// Checks a statement list. `top_level` marks the procedure body itself,
    /// where a trailing `return` is allowed.
    fn check_stmts(&mut self, stmts: &[Stmt], top_level: bool) -> Result<(), IrError> {
        for (i, stmt) in stmts.iter().enumerate() {
            let is_last_top = top_level && i + 1 == stmts.len();
            if matches!(stmt, Stmt::Return { .. }) && !is_last_top {
                return Err(sema_err(
                    "`return` is only allowed as the last statement of a procedure body",
                    stmt.span(),
                ));
            }
            self.check_stmt(stmt)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), IrError> {
        match stmt {
            Stmt::VarDecl {
                name,
                ty,
                init,
                span,
            } => {
                if let Some(e) = init {
                    self.expect_kind(e, kind_of(*ty))?;
                }
                self.declare_local(name, *ty, *span)?;
                Ok(())
            }
            Stmt::Assign {
                target,
                value,
                span,
            } => {
                let target_kind = match target {
                    LValue::Var(name) => {
                        if let Some(&(_, ty)) = self.locals.get(name) {
                            kind_of(ty)
                        } else if let Some(&(_, ty, len)) = self.globals.get(name) {
                            if len.is_some() {
                                return Err(sema_err(
                                    format!("array `{name}` must be indexed"),
                                    *span,
                                ));
                            }
                            kind_of(ty)
                        } else {
                            return Err(sema_err(format!("unknown variable `{name}`"), *span));
                        }
                    }
                    LValue::Elem(name, index) => {
                        let Some(&(_, ty, len)) = self.globals.get(name) else {
                            return Err(sema_err(format!("unknown array `{name}`"), *span));
                        };
                        if len.is_none() {
                            return Err(sema_err(format!("`{name}` is not an array"), *span));
                        }
                        self.expect_kind(index, ValKind::Int)?;
                        kind_of(ty)
                    }
                };
                self.expect_kind(value, target_kind)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.expect_kind(cond, ValKind::Bool)?;
                self.check_stmts(then_blk, false)?;
                self.check_stmts(else_blk, false)
            }
            Stmt::While { cond, body, .. } => {
                self.expect_kind(cond, ValKind::Bool)?;
                self.check_stmts(body, false)
            }
            Stmt::Return { value, span } => match (&self.proc.ret, value) {
                (None, None) => Ok(()),
                (None, Some(_)) => Err(sema_err("void procedure cannot return a value", *span)),
                (Some(ty), Some(e)) => self.expect_kind(e, kind_of(*ty)),
                (Some(_), None) => Err(sema_err(
                    "procedure with return type must return a value",
                    *span,
                )),
            },
            Stmt::Expr { expr, .. } => {
                // Parser guarantees this is a call; void results are fine.
                self.check_expr(expr).map(|_| ())
            }
        }
    }

    fn expect_kind(&mut self, e: &Expr, want: ValKind) -> Result<(), IrError> {
        match self.check_expr(e)? {
            Some(k) if k == want => Ok(()),
            Some(k) => Err(sema_err(
                format!("expected {want:?} expression, found {k:?}"),
                e.span,
            )),
            None => Err(sema_err("void call used as a value", e.span)),
        }
    }

    fn check_expr(&mut self, e: &Expr) -> ExprKindResult {
        match &e.kind {
            ExprKind::Int(_) => Ok(Some(ValKind::Int)),
            ExprKind::Bool(_) => Ok(Some(ValKind::Bool)),
            ExprKind::Var(name) => {
                if let Some(&(_, ty)) = self.locals.get(name) {
                    Ok(Some(kind_of(ty)))
                } else if let Some(&(_, ty, len)) = self.globals.get(name) {
                    if len.is_some() {
                        return Err(sema_err(format!("array `{name}` must be indexed"), e.span));
                    }
                    Ok(Some(kind_of(ty)))
                } else {
                    Err(sema_err(format!("unknown variable `{name}`"), e.span))
                }
            }
            ExprKind::Elem(name, index) => {
                let Some(&(_, ty, len)) = self.globals.get(name) else {
                    return Err(sema_err(format!("unknown array `{name}`"), e.span));
                };
                if len.is_none() {
                    return Err(sema_err(format!("`{name}` is not an array"), e.span));
                }
                self.expect_kind(index, ValKind::Int)?;
                Ok(Some(kind_of(ty)))
            }
            ExprKind::Unary(op, operand) => {
                let want = match op {
                    UnOp::Neg | UnOp::BitNot => ValKind::Int,
                    UnOp::Not => ValKind::Bool,
                };
                self.expect_kind(operand, want)?;
                Ok(Some(want))
            }
            ExprKind::Binary(op, lhs, rhs) => {
                if op.is_logical() {
                    self.expect_kind(lhs, ValKind::Bool)?;
                    self.expect_kind(rhs, ValKind::Bool)?;
                    Ok(Some(ValKind::Bool))
                } else if matches!(op, BinOp::Eq | BinOp::Ne) {
                    let lk = self
                        .check_expr(lhs)?
                        .ok_or_else(|| sema_err("void call used as a value", lhs.span))?;
                    self.expect_kind(rhs, lk)?;
                    Ok(Some(ValKind::Bool))
                } else if op.is_comparison() {
                    self.expect_kind(lhs, ValKind::Int)?;
                    self.expect_kind(rhs, ValKind::Int)?;
                    Ok(Some(ValKind::Bool))
                } else {
                    self.expect_kind(lhs, ValKind::Int)?;
                    self.expect_kind(rhs, ValKind::Int)?;
                    Ok(Some(ValKind::Int))
                }
            }
            ExprKind::Call(name, args) => {
                if let Some(intr) = Intrinsic::from_name(name) {
                    let params = intr.params();
                    if args.len() != params.len() {
                        return Err(sema_err(
                            format!(
                                "intrinsic `{name}` expects {} argument(s), got {}",
                                params.len(),
                                args.len()
                            ),
                            e.span,
                        ));
                    }
                    for (a, &k) in args.iter().zip(params) {
                        self.expect_kind(a, k)?;
                    }
                    Ok(intr.result())
                } else if let Some((_, params, ret)) = self.procs.get(name).cloned() {
                    if args.len() != params.len() {
                        return Err(sema_err(
                            format!(
                                "procedure `{name}` expects {} argument(s), got {}",
                                params.len(),
                                args.len()
                            ),
                            e.span,
                        ));
                    }
                    for (a, ty) in args.iter().zip(&params) {
                        self.expect_kind(a, kind_of(*ty))?;
                    }
                    Ok(ret.map(kind_of))
                } else {
                    Err(sema_err(format!("unknown procedure `{name}`"), e.span))
                }
            }
        }
    }
}

/// Rejects recursion (direct or mutual) in the call graph.
fn check_no_recursion(module: &Module, analysis: &Analysis) -> Result<(), IrError> {
    let n = module.procs.len();
    // Build adjacency: proc → procs it calls.
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, p) in module.procs.iter().enumerate() {
        let mut targets = Vec::new();
        collect_calls_stmts(&p.body, &mut targets);
        for name in targets {
            if let Some((pid, _, _)) = analysis.procs.get(&name) {
                calls[i].push(pid.index());
            }
        }
    }
    // Iterative DFS cycle detection.
    let mut state = vec![0u8; n];
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            if *child < calls[node].len() {
                let next = calls[node][*child];
                *child += 1;
                match state[next] {
                    0 => {
                        state[next] = 1;
                        stack.push((next, 0));
                    }
                    1 => {
                        return Err(sema_err(
                            format!(
                                "recursion involving procedure `{}` is not allowed",
                                module.procs[next].name
                            ),
                            module.procs[next].span,
                        ));
                    }
                    _ => {}
                }
            } else {
                state[node] = 2;
                stack.pop();
            }
        }
    }
    Ok(())
}

fn collect_calls_stmts(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::VarDecl { init, .. } => {
                if let Some(e) = init {
                    collect_calls_expr(e, out);
                }
            }
            Stmt::Assign { target, value, .. } => {
                if let LValue::Elem(_, idx) = target {
                    collect_calls_expr(idx, out);
                }
                collect_calls_expr(value, out);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                collect_calls_expr(cond, out);
                collect_calls_stmts(then_blk, out);
                collect_calls_stmts(else_blk, out);
            }
            Stmt::While { cond, body, .. } => {
                collect_calls_expr(cond, out);
                collect_calls_stmts(body, out);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    collect_calls_expr(e, out);
                }
            }
            Stmt::Expr { expr, .. } => collect_calls_expr(expr, out),
        }
    }
}

fn collect_calls_expr(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Call(name, args) => {
            out.push(name.clone());
            for a in args {
                collect_calls_expr(a, out);
            }
        }
        ExprKind::Elem(_, idx) => collect_calls_expr(idx, out),
        ExprKind::Unary(_, x) => collect_calls_expr(x, out),
        ExprKind::Binary(_, l, r) => {
            collect_calls_expr(l, out);
            collect_calls_expr(r, out);
        }
        ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn check(src: &str) -> Result<Analysis, IrError> {
        analyze(&parse_module(src).unwrap())
    }

    fn check_err(src: &str, needle: &str) {
        let e = check(src).unwrap_err();
        assert!(
            e.to_string().contains(needle),
            "expected error containing {needle:?}, got: {e}"
        );
    }

    #[test]
    fn accepts_well_typed_module() {
        let a = check(
            "module M {
                var total: u32;
                var buf: u16[4];
                proc f(x: u16) -> u32 {
                    var acc: u32 = 0;
                    if (x > 10) { acc = total + x; } else { acc = buf[x % 4]; }
                    total = acc;
                    return acc;
                }
            }",
        )
        .unwrap();
        assert_eq!(a.n_locals[0], 2); // x + acc
        assert_eq!(a.locals[0]["x"].0, 0);
        assert_eq!(a.locals[0]["acc"].0, 1);
    }

    #[test]
    fn rejects_duplicate_global() {
        check_err("module M { var a: u8; var a: u16; }", "duplicate global");
    }

    #[test]
    fn rejects_duplicate_proc() {
        check_err(
            "module M { proc f() {} proc f() {} }",
            "duplicate procedure",
        );
    }

    #[test]
    fn rejects_intrinsic_shadowing() {
        check_err("module M { proc read_adc() {} }", "shadows an intrinsic");
    }

    #[test]
    fn rejects_local_shadowing_global() {
        check_err(
            "module M { var a: u8; proc f() { var a: u8; } }",
            "shadows a global",
        );
    }

    #[test]
    fn rejects_duplicate_local_even_across_scopes() {
        check_err(
            "module M { proc f() { if (true) { var x: u8; } else { } var x: u8; } }",
            "duplicate local",
        );
    }

    #[test]
    fn rejects_unknown_variable() {
        check_err("module M { proc f() { x = 1; } }", "unknown variable");
    }

    #[test]
    fn rejects_integer_condition() {
        check_err(
            "module M { proc f(x: u8) { if (x) { } else { } } }",
            "expected Bool",
        );
    }

    #[test]
    fn rejects_bool_arithmetic() {
        check_err(
            "module M { proc f() { var b: bool = true + 1; } }",
            "expected Int",
        );
    }

    #[test]
    fn rejects_mixed_equality() {
        check_err(
            "module M { proc f(x: u8) { var b: bool = x == true; } }",
            "expected Int",
        );
    }

    #[test]
    fn rejects_unindexed_array_use() {
        check_err(
            "module M { var b: u8[2]; proc f() { b = 1; } }",
            "must be indexed",
        );
    }

    #[test]
    fn rejects_indexing_scalar() {
        check_err(
            "module M { var s: u8; proc f() { s[0] = 1; } }",
            "not an array",
        );
    }

    #[test]
    fn rejects_bad_arity() {
        check_err(
            "module M { proc g(x: u8) {} proc f() { g(); } }",
            "expects 1 argument(s), got 0",
        );
        check_err(
            "module M { proc f() { read_adc(1); } }",
            "expects 0 argument(s)",
        );
    }

    #[test]
    fn rejects_void_call_as_value() {
        check_err(
            "module M { proc g() {} proc f() { var x: u8 = g(); } }",
            "void call used as a value",
        );
    }

    #[test]
    fn rejects_unknown_procedure() {
        check_err("module M { proc f() { nope(); } }", "unknown procedure");
    }

    #[test]
    fn rejects_early_return() {
        check_err(
            "module M { proc f(x: u8) { if (x > 1) { return; } else { } led_toggle(0); } }",
            "only allowed as the last statement",
        );
    }

    #[test]
    fn accepts_trailing_return() {
        assert!(check("module M { proc f() -> u8 { return 3; } }").is_ok());
    }

    #[test]
    fn rejects_return_type_mismatches() {
        check_err(
            "module M { proc f() { return 1; } }",
            "void procedure cannot return",
        );
        check_err(
            "module M { proc f() -> u8 { return; } }",
            "must return a value",
        );
        check_err(
            "module M { proc f() -> u8 { return true; } }",
            "expected Int",
        );
    }

    #[test]
    fn rejects_direct_recursion() {
        check_err("module M { proc f() { f(); } }", "recursion involving");
    }

    #[test]
    fn rejects_mutual_recursion() {
        check_err(
            "module M { proc f() { g(); } proc g() { f(); } }",
            "recursion involving",
        );
    }

    #[test]
    fn accepts_dag_call_graph() {
        assert!(check(
            "module M {
                proc leaf(x: u8) -> u8 { return x + 1; }
                proc mid(x: u8) -> u8 { return leaf(x) + leaf(x); }
                proc top() -> u8 { return mid(leaf(1)); }
            }"
        )
        .is_ok());
    }

    #[test]
    fn rejects_bad_bool_global_init() {
        check_err("module M { var b: bool = 2; }", "bool initializer");
    }

    #[test]
    fn intrinsic_results_typed() {
        assert!(check(
            "module M { proc f() { var ok: bool = send_msg(7); var v: u16 = recv_msg(); } }"
        )
        .is_ok());
        check_err(
            "module M { proc f() { var v: u16 = recv_avail(); } }",
            "expected Int",
        );
    }
}

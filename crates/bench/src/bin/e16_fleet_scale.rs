//! E16 — Fleet-scale sharded estimation service (Table, extension).
//!
//! Claims evaluated, each enforced by exit status:
//!
//! 1. **Shard-count invariance**: the estimate the threaded service serves
//!    after ingesting a ~25%-duplicated delivery stream through N producer
//!    threads and K bounded-queue shards is bitwise identical to a
//!    monolithic [`IncrementalEm`] fold of the same distinct batches — at
//!    every shard count in the sweep.
//! 2. **Throughput**: every shard cell sustains at least the per-mode
//!    ingest floor (100k batches/sec full, 1k smoke) from enqueue to final
//!    drain, duplicates and tree reductions included.
//! 3. **Backpressure without loss**: a deliberately starved cell (2-deep
//!    queues, stalled workers) reports `svc.backpressure` yet still ends
//!    with every distinct batch absorbed and the same estimate bits.
//!
//! The ingest-path mean cost is printed as a criterion-style `bench:` line
//! (`service/ingest`) so `scripts/bench_ingest.sh` can append it to the
//! `BENCH_ingest.json` trajectory that check.sh gates.

use ct_apps::synthetic::diamond_chain_problem;
use ct_bench::{f2, write_manifest_env, write_result, Table};
use ct_core::em::{EmOptions, EmResult};
use ct_core::stream::{BatchTag, SuffStats};
use ct_core::IncrementalEm;
use ct_faults::{MoteFaultKind, MoteFaultPlan};
use ct_pipeline::synth::synth_samples;
use ct_pipeline::EnvConfig;
use ct_service::{EstimateRequest, EstimationService, ServiceConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Ticks per delivered batch: the smallest payload a real radio report
/// would amortize, which maximizes per-batch overhead — the quantity the
/// throughput claim is about.
const BATCH_LEN: usize = 4;

/// Looks a cumulative counter up in a registry snapshot (0 when absent).
fn counter(snap: &ct_obs::Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// One delivery stream: per-mote 4-tick deltas tagged `(mote, 0)`, with a
/// seeded ~`dup_rate` fraction of motes delivering their batch twice
/// (at-least-once transport). Returns the stream in delivery order plus the
/// duplicate count.
fn delivery_stream(
    deltas: &[SuffStats],
    dup_rate: f64,
    seed: u64,
) -> (Vec<(BatchTag, SuffStats)>, u64) {
    let plan = MoteFaultPlan::single(MoteFaultKind::DuplicateDelivery, dup_rate, seed);
    let mut deliveries = Vec::with_capacity(deltas.len() * 2);
    let mut dups = 0u64;
    for (m, delta) in deltas.iter().enumerate() {
        let tag = BatchTag {
            mote: m as u64,
            seq: 0,
        };
        deliveries.push((tag, delta.clone()));
        if plan.outcome(m as u64, 0).duplicate_delivery {
            deliveries.push((tag, delta.clone()));
            dups += 1;
        }
    }
    (deliveries, dups)
}

/// The monolithic reference: one [`IncrementalEm`] folds every distinct
/// delta in mote order and re-estimates once from a cold start — exactly
/// the single EM run the service's final serve performs.
fn monolithic_reference(
    deltas: &[SuffStats],
    cpt: u64,
    cfg: &ct_cfg::graph::Cfg,
    bc: &[u64],
    ec: &[u64],
) -> EmResult {
    let mut inc = IncrementalEm::new(cpt, EmOptions::default());
    for d in deltas {
        inc.ingest(d).expect("reference ingest");
    }
    inc.reestimate(cfg, bc, ec).expect("reference EM").clone()
}

/// Runs one service cell: producers fan the delivery stream over the
/// ingest handles while the coordinator polls reduce; ends with a drain, a
/// single served estimate, and a clean shutdown. Returns the response and
/// the wall time from first enqueue to final drain.
fn run_cell(
    config: &ServiceConfig,
    producers: usize,
    deliveries: &[(BatchTag, SuffStats)],
    cpt: u64,
    cfg: &ct_cfg::graph::Cfg,
    bc: &[u64],
    ec: &[u64],
) -> (ct_service::EstimateResponse, std::time::Duration) {
    let mut svc = EstimationService::start(config, cpt, EmOptions::default());
    let remaining = AtomicUsize::new(producers);
    let started = Instant::now();
    std::thread::scope(|s| {
        for p in 0..producers {
            let handle = svc.handle();
            let remaining = &remaining;
            s.spawn(move || {
                for (tag, delta) in deliveries.iter().skip(p).step_by(producers) {
                    handle.ingest(*tag, delta.clone()).expect("ingest");
                }
                ct_obs::drain_thread();
                remaining.fetch_sub(1, Ordering::Release);
            });
        }
        // The coordinator reduces while producers are still enqueuing —
        // the schedule is racy on purpose; the estimate must not be.
        while remaining.load(Ordering::Acquire) > 0 {
            svc.reduce().expect("reduce");
        }
    });
    svc.drain().expect("final drain");
    let elapsed = started.elapsed();
    let resp = svc
        .serve(&EstimateRequest::latest("diamond_chain"), cfg, bc, ec)
        .expect("serve");
    svc.shutdown().expect("shutdown");
    (resp, elapsed)
}

/// Panics unless the served estimate is bitwise the reference EM run.
fn assert_bitwise(resp: &ct_service::EstimateResponse, reference: &EmResult, cell: &str) {
    assert_eq!(
        resp.probs.len(),
        reference.probs.as_slice().len(),
        "{cell}: probability vector shape changed"
    );
    for (i, (a, b)) in resp
        .probs
        .iter()
        .zip(reference.probs.as_slice())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{cell}: branch {i} diverged from the monolithic reference: {a} vs {b}"
        );
    }
    assert_eq!(
        resp.loglik.to_bits(),
        reference.loglik.to_bits(),
        "{cell}: log-likelihood diverged"
    );
    assert_eq!(
        resp.iterations, reference.iterations,
        "{cell}: EM iteration count diverged"
    );
    assert_eq!(resp.converged, reference.converged);
}

fn main() {
    ct_obs::flight::set_run_name("e16_fleet_scale");
    let env = EnvConfig::load();
    eprintln!("e16: {}", env.banner());
    let seed = env.seed_or(61);
    let motes = env.pick(120_000, 400);
    let shard_counts: &[usize] = if env.smoke { &[1, 2] } else { &[1, 2, 7, 16] };
    let producers = env.threads.max(1);
    let min_rate = env.pick(100_000.0, 1_000.0);

    let (cfg, bc, ec, truth) = diamond_chain_problem(2, seed);
    let samples = synth_samples(&cfg, &bc, &ec, &truth, motes * BATCH_LEN, seed);
    let cpt = samples.cycles_per_tick();
    let deltas: Vec<SuffStats> = samples
        .ticks()
        .chunks(BATCH_LEN)
        .map(|chunk| {
            let mut s = SuffStats::new(cpt);
            chunk.iter().for_each(|&t| s.push(t));
            s
        })
        .collect();
    let (deliveries, dups) = delivery_stream(&deltas, 0.25, seed);
    let reference = monolithic_reference(&deltas, cpt, &cfg, &bc, &ec);

    let mut table = Table::new(vec![
        "shards",
        "producers",
        "motes",
        "deliveries",
        "dedup",
        "backpressure",
        "kbatch/s",
        "bitwise",
    ]);
    let mut bench_ns: Option<(f64, usize)> = None;

    for &shards in shard_counts {
        let config = ServiceConfig::new().shards(shards);
        let before = ct_obs::snapshot();
        let (resp, elapsed) = run_cell(&config, producers, &deliveries, cpt, &cfg, &bc, &ec);
        let after = ct_obs::snapshot();
        let cell = format!("shards={shards}");

        // Claim 1: bitwise shard-count invariance, duplicates dropped.
        assert_bitwise(&resp, &reference, &cell);
        assert_eq!(resp.batches, motes as u64, "{cell}: batch count diverged");
        assert_eq!(
            resp.samples,
            motes * BATCH_LEN,
            "{cell}: sample count diverged"
        );
        assert_eq!(resp.staleness, 0, "{cell}: drained service must be fresh");
        assert!(resp.generation >= 1, "{cell}: no generation was reduced");
        let accepted =
            counter(&after, "svc.ingest.accepted") - counter(&before, "svc.ingest.accepted");
        let dedup = counter(&after, "svc.ingest.dedup") - counter(&before, "svc.ingest.dedup");
        assert_eq!(
            accepted, motes as u64,
            "{cell}: accepted-batch count diverged"
        );
        assert_eq!(dedup, dups, "{cell}: dedup ledger missed duplicates");

        // Claim 2: sustained ingest throughput, reductions included.
        let rate = deliveries.len() as f64 / elapsed.as_secs_f64();
        assert!(
            rate >= min_rate,
            "{cell}: {rate:.0} batches/sec under the {min_rate:.0} floor"
        );
        if shards == *shard_counts.last().expect("non-empty sweep") {
            let ns = elapsed.as_nanos() as f64 / deliveries.len() as f64;
            bench_ns = Some((ns, deliveries.len()));
        }

        table.row(vec![
            shards.to_string(),
            producers.to_string(),
            motes.to_string(),
            deliveries.len().to_string(),
            dedup.to_string(),
            "0".to_string(),
            f2(rate / 1_000.0),
            "yes".to_string(),
        ]);
    }

    // Claim 3: a starved topology (2-deep queues, stalled workers) must
    // report backpressure yet lose nothing and serve the same bits.
    let bp_motes = env.pick(300, 120);
    let bp_deltas = &deltas[..bp_motes];
    let (bp_deliveries, _) = delivery_stream(bp_deltas, 0.25, seed);
    let bp_reference = monolithic_reference(bp_deltas, cpt, &cfg, &bc, &ec);
    let bp_config = ServiceConfig::new()
        .shards(2)
        .queue_depth(2)
        .ingest_stall_us(500);
    let before = ct_obs::snapshot();
    let (bp_resp, bp_elapsed) = run_cell(
        &bp_config,
        producers.max(2),
        &bp_deliveries,
        cpt,
        &cfg,
        &bc,
        &ec,
    );
    let after = ct_obs::snapshot();
    let backpressure = counter(&after, "svc.backpressure") - counter(&before, "svc.backpressure");
    assert!(
        backpressure > 0,
        "starved cell never hit a full queue: stall/depth no longer force backpressure"
    );
    assert_bitwise(&bp_resp, &bp_reference, "backpressure cell");
    assert_eq!(
        bp_resp.batches, bp_motes as u64,
        "backpressure dropped batches"
    );
    table.row(vec![
        "2*".to_string(),
        producers.max(2).to_string(),
        bp_motes.to_string(),
        bp_deliveries.len().to_string(),
        (counter(&after, "svc.ingest.dedup") - counter(&before, "svc.ingest.dedup")).to_string(),
        backpressure.to_string(),
        f2(bp_deliveries.len() as f64 / bp_elapsed.as_secs_f64() / 1_000.0),
        "yes".to_string(),
    ]);

    let (ns, iters) = bench_ns.expect("at least one shard cell ran");
    println!("bench: service/ingest ... {ns:.1} ns/iter ({iters} iters)");

    let out = format!(
        "# E16 — Fleet-scale sharded estimation service\n\n\
         diamond_chain(2), {motes} motes x {BATCH_LEN} ticks/batch, ~25% duplicated\n\
         deliveries, seed {seed}, {producers} producer thread(s). Exit-status-enforced\n\
         claims: the served estimate is bitwise the monolithic reference at every\n\
         shard count, every cell sustains >= {} kbatch/s, and the starved cell\n\
         (`2*`: depth-2 queues, 500us worker stall) reports backpressure while\n\
         losing nothing.\n\
         {}\n\n{}",
        f2(min_rate / 1_000.0),
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    write_manifest_env("e16_fleet_scale");
    if !env.smoke {
        write_result("e16_fleet_scale.md", &out);
    }
}

//! Sense: threshold detection over an ADC stream (the SenseToLeds pattern).
//! One input-driven branch whose probability tracks the sensor field — the
//! simplest end-to-end target for timing-based estimation.

use ct_ir::program::Program;
use ct_mote::devices::UniformAdc;
use ct_mote::interp::Mote;

/// NLC source.
pub const SOURCE: &str = r#"
module Sense {
    var threshold: u16 = 700;
    var alarms: u32;
    var reading: u16;

    proc check() {
        reading = read_adc();
        if (reading > threshold) {
            alarms = alarms + 1;
            led_set(0, 1);
        } else {
            led_set(0, 0);
        }
    }
}
"#;

/// The procedure the experiments profile.
pub const TARGET_PROC: &str = "check";

/// The alarm probability implied by [`configure`]'s uniform 0..=1023 input
/// and the 700 threshold.
pub const EXPECTED_ALARM_PROB: f64 = 323.0 / 1024.0;

/// Compiles the app.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug in this crate).
pub fn program() -> Program {
    ct_ir::compile_source(SOURCE).expect("bundled Sense source compiles")
}

/// Standard workload: uniform field over the full ADC range.
pub fn configure(mote: &mut Mote) {
    mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_ir::instr::ProcId;
    use ct_mote::cost::AvrCost;
    use ct_mote::trace::GroundTruthProfiler;

    #[test]
    fn alarm_probability_matches_field() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        let mut gt = GroundTruthProfiler::new(&p);
        for _ in 0..5000 {
            mote.call(ProcId(0), &[], &mut gt).unwrap();
        }
        let cfg = &p.procs[0].cfg;
        let probs = gt.branch_probs(ProcId(0), cfg);
        assert!(
            (probs.as_slice()[0] - EXPECTED_ALARM_PROB).abs() < 0.02,
            "{:?}",
            probs
        );
    }

    #[test]
    fn alarm_counter_accumulates() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        for _ in 0..100 {
            mote.call(ProcId(0), &[], &mut ct_mote::trace::NullProfiler)
                .unwrap();
        }
        let alarms = mote.globals.load(p.global_id("alarms").unwrap());
        assert!(alarms > 0 && alarms < 100, "{alarms}");
    }
}

//! E5 — End-to-end cycle improvement after placement (Figure).
//!
//! Claim evaluated: the misprediction reduction of E4 translates into a
//! measurable whole-workload cycle saving, and the estimated profile
//! captures most of the saving available to the exact profile.

use ct_bench::{
    edge_frequencies, estimate_run, f4, penalties, random_layout, replay_with_layout, run_app,
    write_result, Mcu, Table,
};
use ct_cfg::layout::Layout;
use ct_core::estimator::EstimateOptions;
use ct_mote::timer::VirtualTimer;
use ct_placement::{place_procedure, Strategy};

fn main() {
    let n = 3_000;
    let mcu = Mcu::Avr;
    let pen = penalties(mcu);
    let mut table = Table::new(vec![
        "app",
        "natural cycles",
        "random",
        "PH(true)",
        "PH(estimated)",
        "captured",
    ]);

    for app in ct_apps::all_apps() {
        let run = run_app(&app, mcu, n, VirtualTimer::mhz1_at_8mhz(), 0, 5_000);
        let (est, _) = estimate_run(&run, EstimateOptions::default());
        let cfg = run.cfg().clone();
        let freq_true = edge_frequencies(&cfg, &run.truth);
        let freq_est = edge_frequencies(&cfg, &est.probs);

        let layouts: Vec<Layout> = vec![
            Layout::natural(&cfg),
            random_layout(&cfg, 77),
            place_procedure(&cfg, &freq_true, &pen, Strategy::Best),
            place_procedure(&cfg, &freq_est, &pen, Strategy::Best),
        ];
        let cycles: Vec<u64> = layouts
            .iter()
            .map(|l| replay_with_layout(&app, mcu, l.clone(), n, 5_000).1)
            .collect();

        let base = cycles[0] as f64;
        let saved_true = base - cycles[2] as f64;
        let saved_est = base - cycles[3] as f64;
        let captured = if saved_true > 0.0 {
            saved_est / saved_true
        } else {
            1.0
        };
        table.row(vec![
            app.name.to_string(),
            cycles[0].to_string(),
            f4(cycles[1] as f64 / base),
            f4(cycles[2] as f64 / base),
            f4(cycles[3] as f64 / base),
            f4(captured),
        ]);
        eprintln!("e5: {} done", app.name);
    }

    let out = format!(
        "# E5 — Whole-workload cycles by layout (normalized to the natural layout)\n\n\
         {n} invocations, identical inputs per layout (seed 5000); placement = best of\n\
         Pettis–Hansen / greedy traces. `captured` = estimated-profile saving as a\n\
         fraction of the exact-profile saving (1.0 = estimation loses nothing).\n\n{}",
        table.to_markdown()
    );
    println!("{out}");
    write_result("e5_speedup.md", &out);
}

//! Natural-loop detection and the loop nesting forest.
//!
//! A back edge `latch → header` where `header` dominates `latch` defines a
//! natural loop: the set of blocks that can reach the latch without passing
//! through the header. Sensor programs lowered from NLC are always reducible,
//! so every cycle is a natural loop; [`is_reducible`] verifies this and lets
//! the estimators reject pathological synthetic inputs.

use crate::dominators::Dominators;
use crate::graph::{BlockId, Cfg};

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the loop).
    pub header: BlockId,
    /// Latch blocks: sources of back edges into the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header, in id order.
    pub body: Vec<BlockId>,
}

impl NaturalLoop {
    /// True when `b` belongs to this loop (header included).
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// The set of natural loops of a CFG plus nesting information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopForest {
    /// Loops sorted by header id; loops sharing a header are merged.
    loops: Vec<NaturalLoop>,
    /// `parent[i]` is the index of the innermost loop strictly containing
    /// loop `i`, if any.
    parent: Vec<Option<usize>>,
    /// Innermost loop index containing each block, if any.
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Detects all natural loops of `cfg`.
    pub fn compute(cfg: &Cfg) -> LoopForest {
        let dom = Dominators::compute(cfg);
        Self::compute_with(cfg, &dom)
    }

    /// Detects loops using a precomputed dominator tree.
    pub fn compute_with(cfg: &Cfg, dom: &Dominators) -> LoopForest {
        let preds = cfg.predecessors();
        // Collect back edges grouped by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for (id, b) in cfg.iter() {
            for s in b.term.successors() {
                if dom.dominates(s, id) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(id),
                        None => by_header.push((s, vec![id])),
                    }
                }
            }
        }
        by_header.sort_by_key(|(h, _)| *h);

        // For each header, gather the loop body via backward reachability
        // from the latches, stopping at the header.
        let mut loops = Vec::with_capacity(by_header.len());
        for (header, latches) in by_header {
            let mut in_loop = vec![false; cfg.len()];
            in_loop[header.index()] = true;
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if !in_loop[l.index()] {
                    in_loop[l.index()] = true;
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in &preds[b.index()] {
                    if !in_loop[p.index()] {
                        in_loop[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            let body: Vec<BlockId> = cfg.block_ids().filter(|b| in_loop[b.index()]).collect();
            loops.push(NaturalLoop {
                header,
                latches,
                body,
            });
        }

        // Nesting: loop j is a parent of loop i when j's body strictly
        // contains i's body; pick the smallest such container.
        let mut parent = vec![None; loops.len()];
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j {
                    continue;
                }
                let contains = loops[i].body.iter().all(|b| loops[j].contains(*b))
                    && loops[j].body.len() > loops[i].body.len();
                if contains {
                    best = match best {
                        None => Some(j),
                        Some(k) if loops[j].body.len() < loops[k].body.len() => Some(j),
                        other => other,
                    };
                }
            }
            parent[i] = best;
        }

        // Innermost loop per block.
        let mut innermost: Vec<Option<usize>> = vec![None; cfg.len()];
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.body {
                innermost[b.index()] = match innermost[b.index()] {
                    None => Some(i),
                    Some(k) if l.body.len() < loops[k].body.len() => Some(i),
                    other => other,
                };
            }
        }

        LoopForest {
            loops,
            parent,
            innermost,
        }
    }

    /// All loops, sorted by header id.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True when the CFG has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Index of the innermost loop containing `b`, if any.
    pub fn innermost_loop_of(&self, b: BlockId) -> Option<usize> {
        self.innermost[b.index()]
    }

    /// Index of the parent loop of loop `i`, if nested.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn parent_of(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Nesting depth of block `b`: 0 outside any loop, 1 in a top-level loop,
    /// and so on.
    pub fn depth_of(&self, b: BlockId) -> usize {
        let mut depth = 0;
        let mut cur = self.innermost[b.index()];
        while let Some(i) = cur {
            depth += 1;
            cur = self.parent[i];
        }
        depth
    }
}

/// True when every cycle of the graph is a natural loop, i.e. every back edge
/// (in the DFS sense) targets a dominator of its source.
pub fn is_reducible(cfg: &Cfg) -> bool {
    let dom = Dominators::compute(cfg);
    // DFS classification of retreating edges.
    let n = cfg.len();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack: Vec<(BlockId, usize)> = vec![(cfg.entry(), 0)];
    state[cfg.entry().index()] = 1;
    while let Some(&mut (node, ref mut child)) = stack.last_mut() {
        let succs = cfg.successors(node);
        if *child < succs.len() {
            let next = succs[*child];
            *child += 1;
            match state[next.index()] {
                0 => {
                    state[next.index()] = 1;
                    stack.push((next, 0));
                }
                1
                    // Retreating edge node→next: must be a dominator back edge.
                    if !dom.dominates(next, node) => {
                        return false;
                    }
                _ => {}
            }
        } else {
            state[node.index()] = 2;
            stack.pop();
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{diamond, irreducible, nested_loops, while_loop};

    #[test]
    fn diamond_has_no_loops() {
        let forest = LoopForest::compute(&diamond());
        assert!(forest.is_empty());
    }

    #[test]
    fn while_loop_detected() {
        let cfg = while_loop();
        let forest = LoopForest::compute(&cfg);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert_eq!(l.body, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn nested_loops_nesting_recovered() {
        let cfg = nested_loops();
        let forest = LoopForest::compute(&cfg);
        assert_eq!(forest.len(), 2);
        // Outer loop headed at b1 contains inner loop headed at b2.
        let outer = forest
            .loops()
            .iter()
            .position(|l| l.header == BlockId(1))
            .unwrap();
        let inner = forest
            .loops()
            .iter()
            .position(|l| l.header == BlockId(2))
            .unwrap();
        assert_eq!(forest.parent_of(inner), Some(outer));
        assert_eq!(forest.parent_of(outer), None);
        // inner_body (b3) is at depth 2; outer_latch (b4) at depth 1.
        assert_eq!(forest.depth_of(BlockId(3)), 2);
        assert_eq!(forest.depth_of(BlockId(4)), 1);
        assert_eq!(forest.depth_of(BlockId(0)), 0);
    }

    #[test]
    fn innermost_loop_of_header_is_own_loop() {
        let cfg = nested_loops();
        let forest = LoopForest::compute(&cfg);
        let inner = forest.innermost_loop_of(BlockId(2)).unwrap();
        assert_eq!(forest.loops()[inner].header, BlockId(2));
    }

    #[test]
    fn reducibility_checks() {
        assert!(is_reducible(&diamond()));
        assert!(is_reducible(&while_loop()));
        assert!(is_reducible(&nested_loops()));
        assert!(!is_reducible(&irreducible()));
    }

    #[test]
    fn loop_contains_is_consistent() {
        let cfg = while_loop();
        let forest = LoopForest::compute(&cfg);
        let l = &forest.loops()[0];
        assert!(l.contains(BlockId(1)));
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)));
        assert!(!l.contains(BlockId(3)));
    }
}

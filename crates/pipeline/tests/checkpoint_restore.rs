//! Crash-restart equivalence golden test: a streaming fleet-ingestion run
//! that crashes at *any* batch boundary and restores from its checkpoint
//! must finish bitwise identical to the uninterrupted run — same merged
//! statistics, same estimate bits, same per-batch iteration trail — at any
//! `CT_THREADS`. A corrupted snapshot must be rejected with a typed error
//! (never a panic) and fall back to a clean start that still converges to
//! the same answer.
//!
//! One `#[test]` owns the process globals (ct-obs registry, `CT_THREADS`,
//! the snapshot file); splitting it would race the harness's parallel test
//! threads.

use ct_pipeline::{CheckpointPolicy, Fleet, FleetStreamReport, RunConfig};
use std::path::PathBuf;

const MOTES: usize = 4;

fn fleet() -> Fleet {
    Fleet::new(RunConfig::new("sense").invocations(200).seeded(17), MOTES)
}

fn snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ct_ckpt_it_{}_{tag}.ckpt", std::process::id()))
}

/// Asserts two stream reports agree bitwise on everything estimation
/// produced (counters and restore provenance legitimately differ).
fn assert_bitwise_equal(a: &FleetStreamReport, b: &FleetStreamReport, what: &str) {
    assert_eq!(a.batches, b.batches, "{what}: batch counts differ");
    assert_eq!(
        a.batch_iterations, b.batch_iterations,
        "{what}: iteration trails differ"
    );
    let (ea, eb) = (&a.estimated.estimate, &b.estimated.estimate);
    assert_eq!(ea.iterations, eb.iterations, "{what}");
    assert_eq!(ea.converged, eb.converged, "{what}");
    assert_eq!(
        ea.final_delta.to_bits(),
        eb.final_delta.to_bits(),
        "{what}: final delta bits differ"
    );
    match (ea.loglik, eb.loglik) {
        (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits(), "{what}: loglik bits differ"),
        (x, y) => assert_eq!(x, y, "{what}: loglik presence differs"),
    }
    for (i, (x, y)) in ea
        .probs
        .as_slice()
        .iter()
        .zip(eb.probs.as_slice())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: probability {i} differs bitwise"
        );
    }
    assert_eq!(
        a.estimated.confidence.to_bits(),
        b.estimated.confidence.to_bits(),
        "{what}: confidence differs"
    );
}

#[test]
fn crash_at_any_batch_boundary_restores_bitwise() {
    for threads in ["1", "4"] {
        std::env::set_var("CT_THREADS", threads);

        // The uninterrupted reference: no checkpointing at all.
        ct_obs::reset();
        let f = fleet();
        let fr = f.run().expect("fleet runs");
        let reference = f.estimate_streaming(&fr).expect("reference estimates");
        ct_obs::reset();
        assert_eq!(reference.batches, MOTES);
        assert!(!reference.restored && !reference.halted);

        // Crash after every possible number of ingested batches, restore,
        // and finish: each resumed run must equal the reference bitwise.
        for crash_after in 1..MOTES as u64 {
            let path = snapshot_path(&format!("t{threads}_k{crash_after}"));
            let _ = std::fs::remove_file(&path);

            ct_obs::reset();
            let halted = f
                .estimate_streaming_with(&fr, &CheckpointPolicy::to(&path).halt_after(crash_after))
                .expect("halted run estimates");
            assert!(halted.halted, "crash_after={crash_after} did not halt");
            assert!(!halted.restored);
            assert_eq!(halted.batches as u64, crash_after);
            assert!(path.exists(), "no snapshot at the crash boundary");

            let resumed = f
                .estimate_streaming_with(&fr, &CheckpointPolicy::to(&path))
                .expect("resumed run estimates");
            let snap = ct_obs::snapshot();
            ct_obs::reset();
            assert!(
                resumed.restored,
                "crash_after={crash_after} did not restore"
            );
            assert!(!resumed.halted);
            assert!(
                snap.counters
                    .iter()
                    .any(|(k, v)| k == "ckpt.restored" && *v == 1),
                "restore left no ckpt.restored counter"
            );
            assert_bitwise_equal(
                &resumed,
                &reference,
                &format!("threads={threads} crash_after={crash_after}"),
            );
            let _ = std::fs::remove_file(&path);
        }

        // Corrupt snapshot: flip one payload byte. The restore must be
        // rejected with a typed error (surfaced as the ckpt.rejected
        // counter + a warn event — never a panic) and the clean fallback
        // must still reach the reference answer.
        let path = snapshot_path(&format!("t{threads}_corrupt"));
        let _ = std::fs::remove_file(&path);
        ct_obs::reset();
        let _ = f
            .estimate_streaming_with(&fr, &CheckpointPolicy::to(&path).halt_after(2))
            .expect("halted run estimates");
        ct_obs::reset();
        let mut bytes = std::fs::read(&path).expect("snapshot readable");
        let mid = 16 + bytes.len() / 2;
        let mid = mid.min(bytes.len() - 9); // inside the payload
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corruption written");

        ct_obs::reset();
        ct_obs::set_stream_enabled(true);
        let fallback = f
            .estimate_streaming_with(&fr, &CheckpointPolicy::to(&path))
            .expect("corrupt snapshot must degrade, not fail");
        let snap = ct_obs::snapshot();
        ct_obs::set_stream_enabled(false);
        ct_obs::reset();
        assert!(!fallback.restored, "corrupt snapshot was restored");
        assert!(
            snap.counters
                .iter()
                .any(|(k, v)| k == "ckpt.rejected" && *v == 1),
            "rejection left no ckpt.rejected counter"
        );
        assert!(
            snap.events.iter().any(|e| e.name == "warn.ckpt_rejected"),
            "rejection left no warn event"
        );
        assert_bitwise_equal(
            &fallback,
            &reference,
            &format!("threads={threads} corrupt fallback"),
        );
        let _ = std::fs::remove_file(&path);
    }

    service_kill_and_restore_is_bitwise();
}

/// The threaded service variant of the same guarantee: an
/// [`ct_service::EstimationService`] killed mid-stream after persisting a
/// checkpoint, then restarted over the same at-least-once delivery stream,
/// must serve bitwise the estimate of an uninterrupted service. Runs inside
/// the one `#[test]` because it shares the ct-obs process globals.
fn service_kill_and_restore_is_bitwise() {
    use ct_core::em::EmOptions;
    use ct_core::stream::{BatchTag, SuffStats};
    use ct_service::{EstimateRequest, EstimationService, ServiceConfig};

    let cfg = ct_cfg::builder::diamond();
    let (bc, ec) = ([10u64, 100, 200, 5], [0u64; 4]);
    let fingerprint = 0xC0DEu64;
    let deliveries: Vec<(BatchTag, SuffStats)> = (0..12u64)
        .map(|m| {
            let mut s = SuffStats::new(1);
            s.push(if m % 3 == 0 { 215 } else { 115 });
            s.push(115 + m);
            (BatchTag { mote: m, seq: 0 }, s)
        })
        .collect();
    let config = ServiceConfig::new().shards(3).queue_depth(4);
    let req = EstimateRequest::latest("diamond");

    // Uninterrupted reference service.
    ct_obs::reset();
    let mut reference = EstimationService::start(&config, 1, EmOptions::default());
    let handle = reference.handle();
    for (tag, delta) in &deliveries {
        handle.ingest(*tag, delta.clone()).expect("ingest");
    }
    reference.drain().expect("drain");
    let want = reference.serve(&req, &cfg, &bc, &ec).expect("serve");
    reference.shutdown().expect("shutdown");

    // Interrupted service: checkpoint every reduced batch, ingest 7 of the
    // 12 deliveries, then die without serving.
    let path = snapshot_path("service_kill");
    let _ = std::fs::remove_file(&path);
    ct_obs::reset();
    let policy = CheckpointPolicy::to(&path).every(1);
    let mut first = EstimationService::start_with_checkpoints(
        &config,
        1,
        EmOptions::default(),
        &cfg,
        policy.clone(),
        fingerprint,
    );
    assert!(!first.restored(), "nothing to restore on a fresh path");
    let handle = first.handle();
    for (tag, delta) in &deliveries[..7] {
        handle.ingest(*tag, delta.clone()).expect("ingest");
    }
    first.drain().expect("drain");
    assert_eq!(first.batches(), 7);
    first.shutdown().expect("shutdown");
    let snap = ct_obs::snapshot();
    assert!(
        snap.counters
            .iter()
            .any(|(k, v)| k == "ckpt.written" && *v >= 1),
        "interrupted service wrote no checkpoint"
    );
    assert!(path.exists(), "no snapshot survived the kill");

    // Restored service: replay the *entire* stream (at-least-once — the
    // restored ledger must drop the 7 already-folded batches), then serve.
    ct_obs::reset();
    let mut second = EstimationService::start_with_checkpoints(
        &config,
        1,
        EmOptions::default(),
        &cfg,
        policy,
        fingerprint,
    );
    assert!(second.restored(), "snapshot was not restored");
    assert_eq!(second.batches(), 7);
    let handle = second.handle();
    for (tag, delta) in &deliveries {
        handle.ingest(*tag, delta.clone()).expect("ingest");
    }
    second.drain().expect("drain");
    let got = second.serve(&req, &cfg, &bc, &ec).expect("serve");
    second.shutdown().expect("shutdown");
    let snap = ct_obs::snapshot();
    ct_obs::reset();
    assert!(
        snap.counters
            .iter()
            .any(|(k, v)| k == "ckpt.restored" && *v == 1),
        "restore left no ckpt.restored counter"
    );

    assert_eq!(got.batches, want.batches, "service restore: batch counts");
    assert_eq!(got.samples, want.samples, "service restore: sample counts");
    assert_eq!(
        got.iterations, want.iterations,
        "service restore: EM iterations"
    );
    assert_eq!(got.converged, want.converged);
    assert_eq!(
        got.loglik.to_bits(),
        want.loglik.to_bits(),
        "service restore: loglik bits differ"
    );
    for (i, (x, y)) in got.probs.iter().zip(&want.probs).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "service restore: probability {i} differs bitwise"
        );
    }
    let _ = std::fs::remove_file(&path);
}

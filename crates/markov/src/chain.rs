//! Discrete-time Markov chains over finite state spaces.

use ct_stats::matrix::Matrix;
use std::error::Error;
use std::fmt;

/// Error constructing or analyzing a chain.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainError {
    /// A row of the transition matrix does not sum to 1 (within tolerance).
    NotStochastic {
        /// Offending row.
        row: usize,
        /// Its sum.
        sum: f64,
    },
    /// A transition probability is negative or non-finite.
    BadProbability {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
    },
    /// The matrix is not square.
    NotSquare,
    /// The requested analysis needs at least one absorbing state.
    NoAbsorbingStates,
    /// A transient state cannot reach any absorbing state, so absorption
    /// analyses diverge.
    AbsorptionUnreachable {
        /// A state from which absorption is unreachable.
        state: usize,
    },
    /// The linear solve inside an analysis failed (singular system).
    Numeric(String),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::NotStochastic { row, sum } => {
                write!(f, "row {row} sums to {sum}, expected 1")
            }
            ChainError::BadProbability { row, col } => {
                write!(f, "invalid probability at ({row}, {col})")
            }
            ChainError::NotSquare => write!(f, "transition matrix must be square"),
            ChainError::NoAbsorbingStates => {
                write!(f, "analysis requires at least one absorbing state")
            }
            ChainError::AbsorptionUnreachable { state } => {
                write!(f, "absorption is unreachable from state {state}")
            }
            ChainError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
        }
    }
}

impl Error for ChainError {}

/// A finite discrete-time Markov chain.
///
/// # Examples
///
/// ```
/// use ct_stats::matrix::Matrix;
/// use ct_markov::chain::Dtmc;
/// let p = Matrix::from_rows(&[&[0.5, 0.5], &[0.0, 1.0]]);
/// let chain = Dtmc::new(p).unwrap();
/// assert!(chain.is_absorbing_state(1));
/// assert!(!chain.is_absorbing_state(0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    p: Matrix,
}

/// Row-sum tolerance for stochasticity validation.
const STOCHASTIC_TOL: f64 = 1e-9;

impl Dtmc {
    /// Validates and wraps a row-stochastic transition matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] when the matrix is not square, has invalid
    /// entries, or a row does not sum to one.
    pub fn new(p: Matrix) -> Result<Dtmc, ChainError> {
        if p.rows() != p.cols() {
            return Err(ChainError::NotSquare);
        }
        for i in 0..p.rows() {
            let mut sum = 0.0;
            for j in 0..p.cols() {
                let v = p[(i, j)];
                if !v.is_finite() || !(0.0..=1.0 + STOCHASTIC_TOL).contains(&v) {
                    return Err(ChainError::BadProbability { row: i, col: j });
                }
                sum += v;
            }
            if (sum - 1.0).abs() > STOCHASTIC_TOL {
                return Err(ChainError::NotStochastic { row: i, sum });
            }
        }
        Ok(Dtmc { p })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.p.rows()
    }

    /// True when the chain has no states. (Never true for a constructed
    /// chain; provided for API completeness.)
    pub fn is_empty(&self) -> bool {
        self.p.rows() == 0
    }

    /// Transition probability from `i` to `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.p[(i, j)]
    }

    /// The transition matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.p
    }

    /// True when state `i` is absorbing (`p(i,i) == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_absorbing_state(&self, i: usize) -> bool {
        (self.p[(i, i)] - 1.0).abs() <= STOCHASTIC_TOL
    }

    /// Indices of all absorbing states.
    pub fn absorbing_states(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.is_absorbing_state(i))
            .collect()
    }

    /// Indices of all transient (non-absorbing) states.
    pub fn transient_states(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| !self.is_absorbing_state(i))
            .collect()
    }

    /// One-step distribution: `row · P` for a distribution over states.
    ///
    /// # Panics
    ///
    /// Panics if `dist.len()` differs from the state count.
    #[allow(clippy::needless_range_loop)]
    pub fn step(&self, dist: &[f64]) -> Vec<f64> {
        assert_eq!(dist.len(), self.len(), "distribution length mismatch");
        let mut out = vec![0.0; self.len()];
        for i in 0..self.len() {
            if dist[i] == 0.0 {
                continue;
            }
            for j in 0..self.len() {
                out[j] += dist[i] * self.p[(i, j)];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_chain() {
        let p = Matrix::from_rows(&[&[0.3, 0.7], &[1.0, 0.0]]);
        assert!(Dtmc::new(p).is_ok());
    }

    #[test]
    fn rejects_non_square() {
        let p = Matrix::zeros(2, 3);
        assert_eq!(Dtmc::new(p), Err(ChainError::NotSquare));
    }

    #[test]
    fn rejects_bad_row_sum() {
        let p = Matrix::from_rows(&[&[0.3, 0.3], &[0.0, 1.0]]);
        assert!(matches!(
            Dtmc::new(p),
            Err(ChainError::NotStochastic { row: 0, .. })
        ));
    }

    #[test]
    fn rejects_negative_probability() {
        let p = Matrix::from_rows(&[&[-0.1, 1.1], &[0.0, 1.0]]);
        assert!(matches!(
            Dtmc::new(p),
            Err(ChainError::BadProbability { .. })
        ));
    }

    #[test]
    fn classifies_absorbing_and_transient() {
        let p = Matrix::from_rows(&[&[0.5, 0.25, 0.25], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let c = Dtmc::new(p).unwrap();
        assert_eq!(c.absorbing_states(), vec![1, 2]);
        assert_eq!(c.transient_states(), vec![0]);
    }

    #[test]
    fn step_propagates_distribution() {
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0]]);
        let c = Dtmc::new(p).unwrap();
        let d = c.step(&[1.0, 0.0]);
        assert_eq!(d, vec![0.0, 1.0]);
    }

    #[test]
    fn step_preserves_total_mass() {
        let p = Matrix::from_rows(&[&[0.5, 0.5], &[0.2, 0.8]]);
        let c = Dtmc::new(p).unwrap();
        let d = c.step(&[0.4, 0.6]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = ChainError::NotStochastic { row: 2, sum: 0.9 };
        assert!(e.to_string().contains("row 2"));
    }
}

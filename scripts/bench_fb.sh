#!/usr/bin/env bash
# Benchmarks the inference engine and writes BENCH_fb.json at the repo root.
#
# Runs the estimator and mote-simulator Criterion suites (microbench
# throughput of the forward-backward kernels and the interpreter) plus a
# wall-clock timing of the full e1_accuracy sweep — the end-to-end number the
# 0.2.0 engine rework is judged by. CT_THREADS is recorded so single-core vs
# parallel runs are distinguishable.
#
# Usage: scripts/bench_fb.sh            # defaults
#        CT_THREADS=1 scripts/bench_fb.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_fb.json
THREADS="${CT_THREADS:-$(nproc 2>/dev/null || echo 1)}"

# Keep the microbench budgets modest; override via env for longer runs.
export CT_BENCH_WARMUP_MS="${CT_BENCH_WARMUP_MS:-200}"
export CT_BENCH_MEASURE_MS="${CT_BENCH_MEASURE_MS:-500}"

echo "== building (release) =="
cargo build --release -p ct-bench >/dev/null

bench_lines=""
for suite in estimators mote_sim; do
    echo "== cargo bench: $suite =="
    # The vendored criterion shim prints: "bench: <label> ... <mean_ns> ns/iter (<N> iters)"
    out=$(cargo bench -p ct-bench --bench "$suite" 2>&1 | grep '^bench:' || true)
    echo "$out"
    bench_lines+="$out"$'\n'
done

echo "== timing e1_accuracy (full sweep) =="
start_ns=$(date +%s%N)
cargo run --release -q -p ct-bench --bin e1_accuracy >/dev/null
end_ns=$(date +%s%N)
e1_ms=$(( (end_ns - start_ns) / 1000000 ))
echo "e1_accuracy: ${e1_ms} ms (CT_THREADS=${THREADS})"

{
    echo '{'
    echo '  "threads": '"$THREADS"','
    echo '  "e1_accuracy_wall_ms": '"$e1_ms"','
    echo '  "kernels": ['
    # "bench: <label> ... <mean_ns> ns/iter (<N> iters)" -> JSON objects
    first=1
    while IFS= read -r line; do
        [ -z "$line" ] && continue
        label=$(echo "$line" | sed -E 's/^bench: (.*) \.\.\. .*/\1/')
        ns=$(echo "$line" | sed -E 's|.* ([0-9]+(\.[0-9]+)?) ns/iter.*|\1|')
        [ "$first" -eq 0 ] && echo ','
        first=0
        printf '    {"kernel": "%s", "mean_ns_per_iter": %s}' "$label" "$ns"
    done <<< "$bench_lines"
    echo ''
    echo '  ]'
    echo '}'
} > "$OUT"

echo "== wrote $OUT =="
cat "$OUT"

//! Simulated mote peripherals: ADC sensor, radio, LEDs.
//!
//! The ADC is where nondeterministic inputs enter sensor programs — branch
//! behaviour downstream of `read_adc()` is what Code Tomography estimates.
//! Several source models are provided so the benchmark apps see realistic
//! input regimes (steady fields, periodic signals, bursty events, replayed
//! traces).

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// A stream of 10-bit ADC readings.
pub trait AdcSource {
    /// Draws the next reading (expected range 0..=1023, not enforced).
    fn sample(&mut self, rng: &mut StdRng) -> u16;
}

/// Always returns the same value (a dead-calm sensor field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantAdc(pub u16);

impl AdcSource for ConstantAdc {
    fn sample(&mut self, _rng: &mut StdRng) -> u16 {
        self.0
    }
}

/// Uniform readings in `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformAdc {
    /// Inclusive lower bound.
    pub lo: u16,
    /// Inclusive upper bound.
    pub hi: u16,
}

impl AdcSource for UniformAdc {
    fn sample(&mut self, rng: &mut StdRng) -> u16 {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// A slow sinusoid plus uniform noise — a periodic environmental signal
/// (temperature, light).
#[derive(Debug, Clone, PartialEq)]
pub struct SineAdc {
    /// Midpoint of the signal.
    pub center: f64,
    /// Peak deviation from the midpoint.
    pub amplitude: f64,
    /// Samples per full period.
    pub period: f64,
    /// Half-width of the uniform noise.
    pub noise: f64,
    t: u64,
}

impl SineAdc {
    /// Creates a sinusoid source.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0`.
    pub fn new(center: f64, amplitude: f64, period: f64, noise: f64) -> SineAdc {
        assert!(period > 0.0, "period must be positive");
        SineAdc {
            center,
            amplitude,
            period,
            noise,
            t: 0,
        }
    }
}

impl AdcSource for SineAdc {
    fn sample(&mut self, rng: &mut StdRng) -> u16 {
        let phase = 2.0 * std::f64::consts::PI * (self.t as f64) / self.period;
        self.t += 1;
        let noise = if self.noise > 0.0 {
            rng.gen_range(-self.noise..=self.noise)
        } else {
            0.0
        };
        let v = self.center + self.amplitude * phase.sin() + noise;
        v.clamp(0.0, 1023.0) as u16
    }
}

/// A two-state Markov-modulated source: long quiet spells with occasional
/// bursts of high readings — the regime event-detection apps are built for.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstyAdc {
    /// Reading range while quiet.
    pub quiet: (u16, u16),
    /// Reading range while bursting.
    pub burst: (u16, u16),
    /// Probability of entering a burst per sample.
    pub p_enter: f64,
    /// Probability of leaving a burst per sample.
    pub p_exit: f64,
    in_burst: bool,
}

impl BurstyAdc {
    /// Creates a bursty source starting in the quiet state.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are not in `[0, 1]`.
    pub fn new(quiet: (u16, u16), burst: (u16, u16), p_enter: f64, p_exit: f64) -> BurstyAdc {
        assert!((0.0..=1.0).contains(&p_enter) && (0.0..=1.0).contains(&p_exit));
        BurstyAdc {
            quiet,
            burst,
            p_enter,
            p_exit,
            in_burst: false,
        }
    }
}

impl AdcSource for BurstyAdc {
    fn sample(&mut self, rng: &mut StdRng) -> u16 {
        if self.in_burst {
            if rng.gen_bool(self.p_exit) {
                self.in_burst = false;
            }
        } else if rng.gen_bool(self.p_enter) {
            self.in_burst = true;
        }
        let (lo, hi) = if self.in_burst {
            self.burst
        } else {
            self.quiet
        };
        rng.gen_range(lo..=hi)
    }
}

/// Replays a fixed trace, cycling at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAdc {
    values: Vec<u16>,
    idx: usize,
}

impl TraceAdc {
    /// Wraps a trace.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: Vec<u16>) -> TraceAdc {
        assert!(!values.is_empty(), "trace must be nonempty");
        TraceAdc { values, idx: 0 }
    }
}

impl AdcSource for TraceAdc {
    fn sample(&mut self, _rng: &mut StdRng) -> u16 {
        let v = self.values[self.idx];
        self.idx = (self.idx + 1) % self.values.len();
        v
    }
}

/// The mote's radio: a receive queue and a lossy transmit path.
#[derive(Debug)]
pub struct Radio {
    rx_queue: VecDeque<u16>,
    /// Payloads successfully transmitted.
    pub sent: Vec<u16>,
    /// Probability that a transmission fails (CSMA collision / no ack).
    pub loss_prob: f64,
}

impl Radio {
    /// A lossless radio with an empty receive queue.
    pub fn new() -> Radio {
        Radio {
            rx_queue: VecDeque::new(),
            sent: Vec::new(),
            loss_prob: 0.0,
        }
    }

    /// Enqueues an incoming packet (used by the scheduler's arrival process).
    pub fn deliver(&mut self, payload: u16) {
        self.rx_queue.push_back(payload);
    }

    /// True when a packet is pending.
    pub fn rx_available(&self) -> bool {
        !self.rx_queue.is_empty()
    }

    /// Dequeues a packet payload; 0 when none is pending.
    pub fn receive(&mut self) -> u16 {
        self.rx_queue.pop_front().unwrap_or(0)
    }

    /// Transmits; returns channel success.
    pub fn send(&mut self, payload: u16, rng: &mut StdRng) -> bool {
        if self.loss_prob > 0.0 && rng.gen_bool(self.loss_prob) {
            false
        } else {
            self.sent.push(payload);
            true
        }
    }
}

impl Default for Radio {
    fn default() -> Self {
        Radio::new()
    }
}

/// The mote's LED bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Leds {
    /// Current LED states.
    pub state: [bool; 3],
    /// Total toggle/set operations (an observable for app tests).
    pub operations: u64,
}

impl Leds {
    /// Sets LED `which % 3` to `on`.
    pub fn set(&mut self, which: u8, on: bool) {
        self.state[(which % 3) as usize] = on;
        self.operations += 1;
    }

    /// Toggles LED `which % 3`.
    pub fn toggle(&mut self, which: u8) {
        let i = (which % 3) as usize;
        self.state[i] = !self.state[i];
        self.operations += 1;
    }
}

/// All peripherals of one mote.
#[derive(Debug)]
pub struct Devices {
    /// The sensor.
    pub adc: Box<dyn AdcSource>,
    /// Total ADC conversions performed (for energy accounting).
    pub adc_samples: u64,
    /// The radio.
    pub radio: Radio,
    /// The LED bank.
    pub leds: Leds,
    /// This mote's identifier (returned by `node_id()`).
    pub node_id: u16,
}

impl std::fmt::Debug for dyn AdcSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AdcSource")
    }
}

impl Devices {
    /// Devices with a given ADC source, lossless radio, dark LEDs, node 1.
    pub fn with_adc(adc: Box<dyn AdcSource>) -> Devices {
        Devices {
            adc,
            adc_samples: 0,
            radio: Radio::new(),
            leds: Leds::default(),
            node_id: 1,
        }
    }
}

impl Default for Devices {
    fn default() -> Self {
        Devices::with_adc(Box::new(UniformAdc { lo: 0, hi: 1023 }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn constant_adc_is_constant() {
        let mut a = ConstantAdc(512);
        let mut r = rng();
        assert_eq!(a.sample(&mut r), 512);
        assert_eq!(a.sample(&mut r), 512);
    }

    #[test]
    fn uniform_adc_within_bounds() {
        let mut a = UniformAdc { lo: 100, hi: 200 };
        let mut r = rng();
        for _ in 0..200 {
            let v = a.sample(&mut r);
            assert!((100..=200).contains(&v));
        }
    }

    #[test]
    fn sine_adc_oscillates_and_clamps() {
        let mut a = SineAdc::new(512.0, 400.0, 16.0, 0.0);
        let mut r = rng();
        let samples: Vec<u16> = (0..16).map(|_| a.sample(&mut r)).collect();
        let max = *samples.iter().max().unwrap();
        let min = *samples.iter().min().unwrap();
        assert!(max > 800, "{samples:?}");
        assert!(min < 200, "{samples:?}");
    }

    #[test]
    fn bursty_adc_visits_both_regimes() {
        let mut a = BurstyAdc::new((0, 100), (900, 1023), 0.2, 0.2);
        let mut r = rng();
        let samples: Vec<u16> = (0..500).map(|_| a.sample(&mut r)).collect();
        assert!(samples.iter().any(|&v| v <= 100));
        assert!(samples.iter().any(|&v| v >= 900));
    }

    #[test]
    fn trace_adc_cycles() {
        let mut a = TraceAdc::new(vec![1, 2, 3]);
        let mut r = rng();
        let got: Vec<u16> = (0..5).map(|_| a.sample(&mut r)).collect();
        assert_eq!(got, vec![1, 2, 3, 1, 2]);
    }

    #[test]
    fn radio_queue_fifo() {
        let mut radio = Radio::new();
        assert!(!radio.rx_available());
        assert_eq!(radio.receive(), 0);
        radio.deliver(5);
        radio.deliver(6);
        assert!(radio.rx_available());
        assert_eq!(radio.receive(), 5);
        assert_eq!(radio.receive(), 6);
        assert!(!radio.rx_available());
    }

    #[test]
    fn lossless_radio_sends_everything() {
        let mut radio = Radio::new();
        let mut r = rng();
        assert!(radio.send(9, &mut r));
        assert_eq!(radio.sent, vec![9]);
    }

    #[test]
    fn lossy_radio_drops_some() {
        let mut radio = Radio::new();
        radio.loss_prob = 0.5;
        let mut r = rng();
        let ok = (0..200).filter(|_| radio.send(1, &mut r)).count();
        assert!(ok > 50 && ok < 150, "{ok}");
        assert_eq!(radio.sent.len(), ok);
    }

    #[test]
    fn leds_toggle_and_count() {
        let mut leds = Leds::default();
        leds.toggle(0);
        assert!(leds.state[0]);
        leds.toggle(0);
        assert!(!leds.state[0]);
        leds.set(2, true);
        assert!(leds.state[2]);
        leds.set(4, true); // wraps to LED 1
        assert!(leds.state[1]);
        assert_eq!(leds.operations, 4);
    }
}

//! Crash flight recorder: a bounded ring of recent trace events per
//! thread, dumped to `results/<run>.flight.jsonl` when something goes
//! wrong.
//!
//! # Lifecycle
//!
//! Enabled by `CT_FLIGHT_RECORDER=1` (or [`set_enabled`]); ring depth per
//! thread comes from `CT_FLIGHT_DEPTH` (default 256 events). While
//! enabled, every [`crate::emit`] call is captured into the calling
//! thread's ring **even when the full event stream is off** — the
//! recorder exists precisely so production runs can keep tracing off yet
//! still explain a failure after the fact. Rings are fixed-depth, so
//! steady-state cost is one clone plus a ring rotation; nothing is ever
//! written until an *incident*.
//!
//! An incident dumps every ring, merged and sorted by a global capture
//! sequence number, to a single JSONL file. Incidents fire:
//!
//! - on **panic**, via a chained hook installed when the recorder is
//!   first enabled (the previous hook still runs afterwards);
//! - on **checkpoint rejection** (`ct-service` and the fleet harness call
//!   [`incident`] right after emitting `warn.ckpt_rejected`, so the dump
//!   contains the warning itself);
//! - on an injected **mote crash** in the chaos harness (the catch site
//!   calls [`incident`] — the quiet panic hook used for injected crashes
//!   swallows the hook chain, so the catch site must dump explicitly);
//! - **on demand**, via the service's `Dump` verb
//!   ([`dump_to`] with any path).
//!
//! The dump file starts with a `flight.meta` header line (schema version,
//! reason, ring depth, event count) followed by the captured events, each
//! tagged with its capture sequence (`seq`) and an opaque recorder thread
//! id (`tid`). Repeated incidents overwrite the file: latest wins, which
//! is what a post-mortem wants.

use std::cell::OnceCell;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock};

use crate::event::Event;

/// Default per-thread ring depth when `CT_FLIGHT_DEPTH` is unset.
pub const DEFAULT_DEPTH: usize = 256;

struct Ring {
    thread: u64,
    events: VecDeque<(u64, Event)>,
}

static INIT: Once = Once::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static DEPTH: AtomicUsize = AtomicUsize::new(DEFAULT_DEPTH);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static RUN_NAME: Mutex<String> = Mutex::new(String::new());

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static R: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Ring contents stay valid through a panic; recover the poison (the
    // panic hook dumps *during* unwinding, when locks may be poisoned).
    m.lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    static RING: OnceCell<Arc<Mutex<Ring>>> = const { OnceCell::new() };
}

fn init_from_env() {
    INIT.call_once(|| {
        let on = |k: &str| std::env::var(k).is_ok_and(|v| !v.is_empty() && v != "0");
        if let Ok(d) = std::env::var("CT_FLIGHT_DEPTH") {
            if let Ok(n) = d.parse::<usize>() {
                if n > 0 {
                    DEPTH.store(n, Ordering::Relaxed);
                }
            }
        }
        if on("CT_FLIGHT_RECORDER") {
            ENABLED.store(true, Ordering::Relaxed);
            install_panic_hook();
        }
    });
}

/// Whether the flight recorder is capturing. Lazily initialized from
/// `CT_FLIGHT_RECORDER` / `CT_FLIGHT_DEPTH` on first call.
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Forces the recorder on or off, overriding the environment. Enabling
/// also installs the panic-dump hook (once per process).
pub fn set_enabled(on: bool) {
    init_from_env();
    if on {
        install_panic_hook();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Per-thread ring depth currently in effect.
pub fn depth() -> usize {
    init_from_env();
    DEPTH.load(Ordering::Relaxed)
}

/// Names the current run; [`incident`] dumps to
/// `results/<name>.flight.jsonl`. Binaries call this once at startup.
pub fn set_run_name(name: &str) {
    *lock(&RUN_NAME) = name.to_string();
}

/// The path [`incident`] writes to: `results/<run>.flight.jsonl`, where
/// `<run>` defaults to `"run"` until [`set_run_name`] is called.
pub fn default_path() -> PathBuf {
    let name = lock(&RUN_NAME);
    let stem: &str = if name.is_empty() { "run" } else { &name };
    PathBuf::from("results").join(format!("{stem}.flight.jsonl"))
}

fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            incident("panic");
            prev(info);
        }));
    });
}

/// Captures `event` into the calling thread's ring. Called from
/// [`crate::emit`] when the recorder is enabled; cheap: one clone and a
/// bounded ring rotation, no allocation in steady state.
pub(crate) fn record(event: &Event) {
    let cap = DEPTH.load(Ordering::Relaxed);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let stored = RING
        .try_with(|cell| {
            let ring = cell.get_or_init(|| {
                let ring = Arc::new(Mutex::new(Ring {
                    thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
                    events: VecDeque::with_capacity(cap.min(1024)),
                }));
                lock(registry()).push(Arc::clone(&ring));
                ring
            });
            let mut r = lock(ring);
            while r.events.len() >= cap {
                r.events.pop_front();
            }
            r.events.push_back((seq, event.clone()));
        })
        .is_ok();
    // TLS teardown: drop the capture rather than block — the ring registry
    // keeps already-captured events alive for the dump either way.
    let _ = stored;
}

/// Renders every ring, merged and sorted by capture sequence, as the
/// flight-dump JSONL document (header line first).
pub fn render_dump(reason: &str) -> String {
    let mut all: Vec<(u64, u64, Event)> = Vec::new();
    {
        let regs = lock(registry());
        for ring in regs.iter() {
            let r = lock(ring);
            for (seq, e) in &r.events {
                all.push((*seq, r.thread, e.clone()));
            }
        }
    }
    all.sort_by_key(|(seq, _, _)| *seq);
    let header = Event::new(
        "flight.meta",
        vec![
            ("schema", crate::SCHEMA_VERSION.into()),
            ("reason", reason.into()),
            ("depth", DEPTH.load(Ordering::Relaxed).into()),
            ("events", all.len().into()),
        ],
    );
    let mut out = String::with_capacity(64 * (all.len() + 1));
    out.push_str(&header.to_jsonl());
    out.push('\n');
    for (seq, tid, mut e) in all {
        e.fields.push(("seq".to_string(), seq.into()));
        e.fields.push(("tid".to_string(), tid.into()));
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

/// Dumps every ring to `path` (parent directories created). Works even
/// when capture is disabled — the dump is then just the header line.
///
/// # Errors
///
/// Propagates I/O errors from creating the directory or writing the file.
pub fn dump_to(path: &Path, reason: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, render_dump(reason))
}

/// Records an incident: dumps the rings to [`default_path`] tagged with
/// `reason`. No-op when the recorder is disabled; I/O errors go to stderr
/// (a failing dump must never take down the run it is explaining).
pub fn incident(reason: &str) {
    if !enabled() {
        return;
    }
    let path = default_path();
    if let Err(e) = dump_to(&path, reason) {
        eprintln!("ct-obs: flight dump to {} failed: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // set_enabled flips process state; sibling tests in this file would
    // race each other, so everything lives in one test (the cross-process
    // gating behavior is covered by tests/flight_gating.rs).
    #[test]
    fn rings_capture_and_dump_in_sequence_order() {
        set_enabled(true);
        crate::emit("t.flight.a", vec![("i", 1u64.into())]);
        crate::emit("t.flight.b", vec![("i", 2u64.into())]);
        std::thread::scope(|s| {
            s.spawn(|| crate::emit("t.flight.c", vec![("i", 3u64.into())]));
        });
        let dump = render_dump("unit");
        let mut lines = dump.lines();
        let header = lines.next().unwrap_or_default();
        assert!(header.contains("\"event\":\"flight.meta\""), "{header}");
        assert!(header.contains("\"reason\":\"unit\""), "{header}");
        for line in dump.lines() {
            let doc =
                crate::json::parse(line).unwrap_or_else(|e| panic!("bad dump line {line}: {e}"));
            assert!(doc.get("event").is_some());
        }
        for name in ["t.flight.a", "t.flight.b", "t.flight.c"] {
            assert!(dump.contains(name), "missing {name} in dump");
        }
        // Capture order is preserved: a precedes b (same thread).
        let a = dump.find("t.flight.a").unwrap_or(usize::MAX);
        let b = dump.find("t.flight.b").unwrap_or(0);
        assert!(a < b, "ring order lost");
        // Bounded: a burst longer than the depth keeps only the tail.
        for i in 0..(depth() + 10) {
            crate::emit("t.flight.burst", vec![("i", (i as u64).into())]);
        }
        let events_in_my_ring = RING.with(|cell| cell.get().map(|r| lock(r).events.len()));
        assert!(events_in_my_ring.unwrap_or(0) <= depth());
        set_enabled(false);
    }
}

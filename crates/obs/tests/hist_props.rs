//! Property tests for the histogram determinism contract: merge is
//! commutative, associative, permutation-invariant, and shard-count
//! invariant, and the recorder produces bitwise-identical histogram
//! snapshots at any thread count.

use ct_obs::hist::{bucket_hi, bucket_index, bucket_lo, HistData};
use proptest::prelude::*;

fn build(values: &[u64]) -> HistData {
    let mut h = HistData::default();
    values.iter().for_each(|&v| h.record(v));
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_value_lands_in_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(bucket_lo(i) <= v);
        prop_assert!(v <= bucket_hi(i));
    }

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let (ha, hb) = (build(&a), build(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
        c in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn recording_order_is_irrelevant(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
        rotate in 0usize..200,
    ) {
        let mut permuted = values.clone();
        permuted.rotate_left(rotate % values.len());
        prop_assert_eq!(build(&values), build(&permuted));
    }

    #[test]
    fn sharded_recording_matches_monolithic(
        values in prop::collection::vec(0u64..1_000_000, 1..300),
        shards in 1usize..17,
    ) {
        // Route round-robin across `shards` partial histograms, merge —
        // the result must be bitwise what a single recorder would hold.
        let mut parts = vec![HistData::default(); shards];
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut merged = HistData::default();
        parts.iter().for_each(|p| merged.merge(p));
        prop_assert_eq!(merged, build(&values));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let h = build(&values);
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
        prop_assert!(h.min() <= p50);
        prop_assert_eq!(h.quantile(1.0), h.max());
        prop_assert_eq!(h.count(), values.len() as u64);
    }
}

/// The recorder-level guarantee: the same observations recorded under 1
/// or 4 threads produce bitwise-identical histogram snapshots. Uses its
/// own name per thread-count so concurrent tests cannot interfere.
#[test]
fn snapshots_are_bitwise_identical_across_thread_counts() {
    let values: Vec<u64> = (0..800u64).map(|i| (i * 2654435761) % 50_000).collect();
    let mut result: Vec<HistData> = Vec::new();
    for threads in [1usize, 4] {
        let name = format!("t.hist.threads.{threads}");
        let chunk = values.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in values.chunks(chunk) {
                let name = name.as_str();
                scope.spawn(move || {
                    part.iter().for_each(|&v| ct_obs::hist_record(name, v));
                    ct_obs::drain_thread();
                });
            }
        });
        let snap = ct_obs::snapshot();
        let h = snap
            .hists
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h.clone())
            .expect("histogram recorded");
        result.push(h);
    }
    assert_eq!(result[0], result[1], "1-thread vs 4-thread snapshot drift");
    assert_eq!(result[0], build(&values));
}

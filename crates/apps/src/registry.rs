//! The benchmark registry: every app with its standard workload, behind one
//! uniform interface the experiment harnesses iterate over.

use ct_ir::instr::ProcId;
use ct_ir::program::Program;
use ct_mote::cost::CostModel;
use ct_mote::interp::Mote;

/// One benchmark application.
#[derive(Clone)]
pub struct App {
    /// Short name (stable across experiments and reports).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// NLC source.
    pub source: &'static str,
    /// The procedure whose profile the experiments estimate.
    pub target_proc: &'static str,
    /// Device/workload setup.
    pub configure: fn(&mut Mote),
    /// Optional pre-invocation hook (e.g. packet delivery), given the call
    /// index.
    pub per_call: Option<fn(&mut Mote, usize)>,
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("App").field("name", &self.name).finish()
    }
}

impl App {
    /// Compiles the app's source.
    ///
    /// # Panics
    ///
    /// Panics if a bundled source fails to compile (a bug in this crate).
    pub fn compile(&self) -> Program {
        ct_ir::compile_source(self.source)
            .unwrap_or_else(|e| panic!("bundled app `{}` must compile: {e}", self.name))
    }

    /// Boots a configured mote running this app.
    pub fn boot(&self, cost_model: Box<dyn CostModel>) -> Mote {
        let mut mote = Mote::new(self.compile(), cost_model);
        (self.configure)(&mut mote);
        mote
    }

    /// The target procedure's id within `program`.
    ///
    /// # Panics
    ///
    /// Panics if the target procedure is missing (a bug in this crate).
    pub fn target_id(&self, program: &Program) -> ProcId {
        program
            .proc_id(self.target_proc)
            .unwrap_or_else(|| panic!("app `{}` has procedure `{}`", self.name, self.target_proc))
    }
}

/// All benchmark apps, in the canonical report order.
pub fn all_apps() -> Vec<App> {
    vec![
        App {
            name: "blink",
            description: "timer-driven LED cascade (branch probs 1/2, 1/4, 1/8)",
            source: crate::blink::SOURCE,
            target_proc: crate::blink::TARGET_PROC,
            configure: crate::blink::configure,
            per_call: None,
        },
        App {
            name: "sense",
            description: "ADC threshold alarm over a uniform field",
            source: crate::sense::SOURCE,
            target_proc: crate::sense::TARGET_PROC,
            configure: crate::sense::configure,
            per_call: None,
        },
        App {
            name: "oscilloscope",
            description: "buffered sampling with radio flush every 16 samples",
            source: crate::oscilloscope::SOURCE,
            target_proc: crate::oscilloscope::TARGET_PROC,
            configure: crate::oscilloscope::configure,
            per_call: None,
        },
        App {
            name: "surge",
            description: "multi-hop packet routing with lossy forwarding",
            source: crate::surge::SOURCE,
            target_proc: crate::surge::TARGET_PROC,
            configure: crate::surge::configure,
            per_call: Some(crate::surge::deliver_batch),
        },
        App {
            name: "event_detect",
            description: "smoothed hysteresis alarm over a bursty field",
            source: crate::event_detect::SOURCE,
            target_proc: crate::event_detect::TARGET_PROC,
            configure: crate::event_detect::configure,
            per_call: None,
        },
        App {
            name: "crc",
            description: "CRC-16 over 8-byte packets (64 data-dependent branches)",
            source: crate::crc::SOURCE,
            target_proc: crate::crc::TARGET_PROC,
            configure: crate::crc::configure,
            per_call: None,
        },
        App {
            name: "fir",
            description: "8-tap FIR filter with threshold alarm",
            source: crate::fir::SOURCE,
            target_proc: crate::fir::TARGET_PROC,
            configure: crate::fir::configure,
            per_call: None,
        },
        App {
            name: "sort",
            description: "bubble sort window (non-homogeneous swap branch)",
            source: crate::sort::SOURCE,
            target_proc: crate::sort::TARGET_PROC,
            configure: crate::sort::configure,
            per_call: None,
        },
    ]
}

/// Looks an app up by name.
pub fn app_by_name(name: &str) -> Option<App> {
    all_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_mote::cost::AvrCost;
    use ct_mote::trace::NullProfiler;

    #[test]
    fn all_apps_compile_and_expose_target() {
        for app in all_apps() {
            let p = app.compile();
            let pid = app.target_id(&p);
            assert!(p.proc(pid).cfg.validate().is_ok(), "{}", app.name);
        }
    }

    #[test]
    fn all_targets_are_structured_single_exit() {
        for app in all_apps() {
            let p = app.compile();
            let pid = app.target_id(&p);
            assert!(
                ct_cfg::structure::decompose(&p.proc(pid).cfg).is_ok(),
                "{}",
                app.name
            );
        }
    }

    #[test]
    fn all_apps_run_200_invocations_without_traps() {
        for app in all_apps() {
            let mut mote = app.boot(Box::new(AvrCost));
            let pid = app.target_id(mote.program());
            for i in 0..200 {
                if let Some(hook) = app.per_call {
                    hook(&mut mote, i);
                }
                mote.call(pid, &[], &mut NullProfiler)
                    .unwrap_or_else(|e| panic!("{} trapped: {e}", app.name));
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let apps = all_apps();
        let mut names: Vec<_> = apps.iter().map(|a| a.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), apps.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(app_by_name("sense").is_some());
        assert!(app_by_name("missing").is_none());
    }
}

//! Property-based tests of the baseline profilers: Ball–Larus must always
//! reconstruct ground truth exactly; overheads must account precisely.

use ct_ir::instr::ProcId;
use ct_mote::cost::AvrCost;
use ct_mote::interp::Mote;
use ct_mote::trace::{GroundTruthProfiler, NullProfiler, PairProfiler};
use ct_profilers::ball_larus::{BallLarusProfiler, BlNumbering};
use ct_profilers::edge_counter::{EdgeCounterProfiler, EDGE_INCREMENT_CYCLES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ball–Larus edge reconstruction equals ground truth on random
    /// structured programs under random inputs.
    #[test]
    fn ball_larus_exact_on_generated_programs(seed in 0u64..200) {
        let config = ct_apps::synthetic::GenConfig { decisions: 3, max_depth: 2, loop_share: 0.3 };
        let program = ct_apps::synthetic::random_program(seed, config);
        let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
        mote.devices.adc = Box::new(ct_mote::devices::UniformAdc { lo: 0, hi: 1023 });
        mote.reseed(seed);
        let mut gt = GroundTruthProfiler::new(&program);
        let mut bl = BallLarusProfiler::new(&program);
        for _ in 0..30 {
            let mut pair = PairProfiler { a: &mut gt, b: &mut bl };
            mote.call(ProcId(0), &[], &mut pair).unwrap();
        }
        let cfg = &program.procs[0].cfg;
        if let Some(profile) = bl.edge_profile(ProcId(0), cfg) {
            prop_assert_eq!(profile.counts(), gt.profile(ProcId(0)).counts());
        }
    }

    /// Path numbering assigns every id a unique decodable path.
    #[test]
    fn numbering_ids_decode_uniquely(seed in 0u64..100) {
        let config = ct_apps::synthetic::GenConfig { decisions: 3, max_depth: 2, loop_share: 0.4 };
        let program = ct_apps::synthetic::random_program(seed, config);
        let cfg = &program.procs[0].cfg;
        if let Ok(nb) = BlNumbering::compute(cfg) {
            let mut seen = std::collections::HashSet::new();
            for id in 0..nb.num_paths().min(512) {
                prop_assert!(seen.insert(nb.decode(id)), "duplicate path for id {id}");
            }
        }
    }

    /// Edge counter overhead is exactly increments × traversals.
    #[test]
    fn edge_counter_overhead_exact(seed in 0u64..100) {
        let config = ct_apps::synthetic::GenConfig { decisions: 2, max_depth: 2, loop_share: 0.3 };
        let program = ct_apps::synthetic::random_program(seed, config);

        let mut base = Mote::new(program.clone(), Box::new(AvrCost));
        base.devices.adc = Box::new(ct_mote::devices::UniformAdc { lo: 0, hi: 1023 });
        base.reseed(seed);
        for _ in 0..10 {
            base.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        }

        let mut inst = Mote::new(program.clone(), Box::new(AvrCost));
        inst.devices.adc = Box::new(ct_mote::devices::UniformAdc { lo: 0, hi: 1023 });
        inst.reseed(seed);
        let mut ec = EdgeCounterProfiler::new(&program);
        for _ in 0..10 {
            inst.call(ProcId(0), &[], &mut ec).unwrap();
        }
        let traversals: u64 = ec.profile(ProcId(0)).counts().iter().sum();
        prop_assert_eq!(inst.cycles, base.cycles + traversals * EDGE_INCREMENT_CYCLES);
    }
}

//! Measurement utilities that sit beside the stage chain: profiler
//! overhead runs, frequency derivation, baseline layouts, and the sweep
//! fan-out the experiment binaries share.

use crate::config::RunConfig;
use crate::error::PipelineError;
use crate::stage::{Compile, Deploy, Stage};
use ct_cfg::graph::Cfg;
use ct_cfg::layout::{Layout, PenaltyModel};
use ct_cfg::profile::BranchProbs;
use ct_mote::trace::Profiler;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs the configured workload under an arbitrary profiler (for overhead
/// comparisons), returning cycles consumed. The config's timer and
/// fault plan are irrelevant here — the profiler under test brings its own
/// instrumentation.
///
/// # Errors
///
/// [`PipelineError::Trap`] if the workload traps.
pub fn run_with_profiler(
    config: &RunConfig,
    profiler: &mut dyn Profiler,
) -> Result<u64, PipelineError> {
    run_with_profiler_pmu(config, profiler).map(|(cycles, _)| cycles)
}

/// Like [`run_with_profiler`], but also returns the mote's virtual-PMU
/// snapshot — whose per-procedure cycle attribution *includes* the
/// profiler's instrumentation overhead, making overhead observable in
/// measured mote cycles rather than only as a wall-clock delta.
///
/// # Errors
///
/// [`PipelineError::Trap`] if the workload traps.
pub fn run_with_profiler_pmu(
    config: &RunConfig,
    profiler: &mut dyn Profiler,
) -> Result<(u64, ct_mote::pmu::PmuSnapshot), PipelineError> {
    let compiled = Compile.run(config, ())?;
    let deployed = Deploy::default().run(config, compiled)?;
    let mut mote = deployed.mote;
    let compiled = deployed.compiled;
    let start = mote.cycles;
    for i in 0..config.invocations {
        if let Some(hook) = compiled.per_call {
            hook(&mut mote, i);
        }
        mote.call(compiled.pid, &[], profiler)
            .map_err(|e| PipelineError::Trap(format!("{}: {e}", compiled.name)))?;
    }
    Ok((mote.cycles - start, mote.pmu.snapshot()))
}

/// Expected per-invocation edge traversal frequencies under a probability
/// vector (the placement input derived from an estimate).
///
/// # Errors
///
/// A human-readable reason when the Markov solve fails (exit unreachable
/// under `probs`).
pub fn edge_frequencies(cfg: &Cfg, probs: &BranchProbs) -> Result<Vec<f64>, String> {
    ct_markov::visits::expected_edge_traversals(cfg, probs).map_err(|e| e.to_string())
}

/// A uniformly random valid layout (entry first) — the pessimal baseline
/// for the placement experiments.
pub fn random_layout(cfg: &Cfg, seed: u64) -> Layout {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rest: Vec<_> = cfg.block_ids().skip(1).collect();
    rest.shuffle(&mut rng);
    let mut order = vec![cfg.entry()];
    order.extend(rest);
    match Layout::from_order(cfg, order) {
        Some(layout) => layout,
        None => panic!("shuffled permutation must stay a valid layout"),
    }
}

/// The default penalty model for an MCU.
pub fn penalties(mcu: crate::config::Mcu) -> PenaltyModel {
    mcu.cost_model().penalties()
}

/// Fans an experiment's configuration grid out over scoped threads
/// (`CT_THREADS` to override the worker count), returning one result per
/// cell **in cell order** — so tables assembled from the results are
/// identical to the serial loops this replaces, for any thread count.
///
/// Each cell must be self-contained (boot its own mote, own its seed):
/// pipeline sessions already work that way, which is exactly what makes
/// them safe to run concurrently.
pub fn par_sweep<T, U, F>(cells: Vec<T>, job: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    ct_stats::parallel::par_map(cells, job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mcu;
    use ct_mote::trace::NullProfiler;

    #[test]
    fn random_layout_is_valid_and_seeded() {
        let config = RunConfig::new("sense");
        let compiled = Compile.run(&config, ()).unwrap();
        let cfg = &compiled.program.procs[0].cfg;
        let a = random_layout(cfg, 1);
        let b = random_layout(cfg, 1);
        let c = random_layout(cfg, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.order()[0], cfg.entry());
    }

    #[test]
    fn profiler_runs_consume_cycles() {
        let config = RunConfig::new("blink").invocations(100).seeded(2);
        let cycles = run_with_profiler(&config, &mut NullProfiler).unwrap();
        assert!(cycles > 0);
    }

    #[test]
    fn penalty_models_differ_by_mcu() {
        let _ = penalties(Mcu::Avr);
        let _ = penalties(Mcu::Msp430);
    }
}

//! Profiling hooks: how instrumentation observes a running mote.
//!
//! The interpreter calls a [`Profiler`] at procedure entry/exit and at every
//! edge traversal. Each hook returns the *instrumentation overhead* in cycles
//! it charges to the mote — this is how the overhead comparison (experiment
//! E3) is measured instead of assumed.
//!
//! Two profilers live here because they are intrinsic to the mote:
//! [`GroundTruthProfiler`] (free, omniscient — only a simulator can have it)
//! and [`TimingProfiler`] (Code Tomography's entry/exit timestamps). The
//! *baseline* on-device profilers (edge counters, Ball–Larus, sampling) are
//! in `ct-profilers`.

use crate::timer::VirtualTimer;
use ct_cfg::graph::{BlockId, Cfg};
use ct_cfg::profile::EdgeProfile;
use ct_ir::instr::ProcId;
use ct_ir::program::Program;

/// Observer of a running mote.
///
/// Every hook returns the instrumentation overhead in cycles that the mote
/// must charge for the observation (0 for free observations).
pub trait Profiler {
    /// A procedure activation begins. `cycles` is the mote clock *before*
    /// any instrumentation overhead.
    fn on_proc_enter(&mut self, _proc: ProcId, _cycles: u64) -> u64 {
        0
    }

    /// A procedure activation ends.
    fn on_proc_exit(&mut self, _proc: ProcId, _cycles: u64) -> u64 {
        0
    }

    /// A CFG edge of `proc` is traversed.
    fn on_edge(&mut self, _proc: ProcId, _edge_index: usize) -> u64 {
        0
    }

    /// A basic block of `proc` begins executing. `cycles` is the mote
    /// clock at block entry (sampling profilers key off it).
    fn on_block(&mut self, _proc: ProcId, _block: BlockId, _cycles: u64) -> u64 {
        0
    }
}

/// The do-nothing profiler (uninstrumented baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProfiler;

impl Profiler for NullProfiler {}

/// Omniscient exact edge profiler — the simulator's ground truth. Costs zero
/// cycles because no real instrumentation exists; it is the reference against
/// which estimated profiles are scored.
#[derive(Debug, Clone)]
pub struct GroundTruthProfiler {
    profiles: Vec<EdgeProfile>,
    invocations: Vec<u64>,
}

impl GroundTruthProfiler {
    /// Shapes a profiler for every procedure of `program`.
    pub fn new(program: &Program) -> GroundTruthProfiler {
        GroundTruthProfiler {
            profiles: program
                .procs
                .iter()
                .map(|p| EdgeProfile::zeroed(&p.cfg))
                .collect(),
            invocations: vec![0; program.procs.len()],
        }
    }

    /// The exact edge profile of `proc`.
    pub fn profile(&self, proc: ProcId) -> &EdgeProfile {
        &self.profiles[proc.index()]
    }

    /// Number of activations of `proc`.
    pub fn invocations(&self, proc: ProcId) -> u64 {
        self.invocations[proc.index()]
    }

    /// Ground-truth branch probabilities for `proc`.
    pub fn branch_probs(&self, proc: ProcId, cfg: &Cfg) -> ct_cfg::profile::BranchProbs {
        self.profiles[proc.index()].branch_probs(cfg)
    }
}

impl Profiler for GroundTruthProfiler {
    fn on_proc_enter(&mut self, proc: ProcId, _cycles: u64) -> u64 {
        self.invocations[proc.index()] += 1;
        0
    }

    fn on_edge(&mut self, proc: ProcId, edge_index: usize) -> u64 {
        self.profiles[proc.index()].bump(edge_index);
        0
    }
}

/// Code Tomography's measurement layer: one timer read at every procedure
/// entry and exit. Produces per-procedure *exclusive* durations in ticks
/// (child activations' windows subtracted), which are the estimator's input
/// samples.
#[derive(Debug, Clone)]
pub struct TimingProfiler {
    timer: VirtualTimer,
    /// Cycles charged per timestamp (read timer + store to RAM buffer).
    pub overhead_cycles: u64,
    samples: Vec<Vec<u64>>,
    stack: Vec<Frame>,
}

#[derive(Debug, Clone)]
struct Frame {
    proc: ProcId,
    entry_ticks: u64,
    child_ticks: u64,
}

impl TimingProfiler {
    /// Creates a timing profiler for `program` reading `timer`.
    ///
    /// `overhead_cycles` is charged at every entry and every exit, *outside*
    /// the measured window (so it contaminates the caller, as on real motes
    /// where the timestamp lands in a RAM buffer after the timer latch).
    pub fn new(program: &Program, timer: VirtualTimer, overhead_cycles: u64) -> TimingProfiler {
        TimingProfiler {
            timer,
            overhead_cycles,
            samples: vec![Vec::new(); program.procs.len()],
            stack: Vec::new(),
        }
    }

    /// Exclusive-duration samples (in ticks) collected for `proc`.
    pub fn samples(&self, proc: ProcId) -> &[u64] {
        &self.samples[proc.index()]
    }

    /// Consumes the profiler, returning all per-procedure sample vectors.
    pub fn into_samples(self) -> Vec<Vec<u64>> {
        self.samples
    }

    /// The timer this profiler reads.
    pub fn timer(&self) -> VirtualTimer {
        self.timer
    }
}

impl Profiler for TimingProfiler {
    fn on_proc_enter(&mut self, proc: ProcId, cycles: u64) -> u64 {
        self.stack.push(Frame {
            proc,
            entry_ticks: self.timer.ticks(cycles),
            child_ticks: 0,
        });
        self.overhead_cycles
    }

    fn on_proc_exit(&mut self, proc: ProcId, cycles: u64) -> u64 {
        let frame = self.stack.pop().expect("exit without matching enter");
        debug_assert_eq!(frame.proc, proc, "activation stack corrupted");
        let exit_ticks = self.timer.ticks(cycles);
        let window = exit_ticks - frame.entry_ticks;
        let exclusive = window.saturating_sub(frame.child_ticks);
        self.samples[proc.index()].push(exclusive);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ticks += window;
        }
        self.overhead_cycles
    }
}

/// Runs two profilers side by side (e.g. ground truth + timing) in one run,
/// charging the overhead of both.
#[derive(Debug)]
pub struct PairProfiler<'a, A: Profiler, B: Profiler> {
    /// First profiler.
    pub a: &'a mut A,
    /// Second profiler.
    pub b: &'a mut B,
}

impl<'a, A: Profiler, B: Profiler> Profiler for PairProfiler<'a, A, B> {
    fn on_proc_enter(&mut self, proc: ProcId, cycles: u64) -> u64 {
        self.a.on_proc_enter(proc, cycles) + self.b.on_proc_enter(proc, cycles)
    }

    fn on_proc_exit(&mut self, proc: ProcId, cycles: u64) -> u64 {
        self.a.on_proc_exit(proc, cycles) + self.b.on_proc_exit(proc, cycles)
    }

    fn on_edge(&mut self, proc: ProcId, edge_index: usize) -> u64 {
        self.a.on_edge(proc, edge_index) + self.b.on_edge(proc, edge_index)
    }

    fn on_block(&mut self, proc: ProcId, block: BlockId, cycles: u64) -> u64 {
        self.a.on_block(proc, block, cycles) + self.b.on_block(proc, block, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        ct_ir::compile_source("module M { proc f() { led_toggle(0); } }").unwrap()
    }

    #[test]
    fn ground_truth_counts_edges_and_invocations() {
        let p = ct_ir::compile_source(
            "module M { var a: u8; proc f(x: u8) { if (x > 1) { a = 1; } else { a = 2; } } }",
        )
        .unwrap();
        let mut gt = GroundTruthProfiler::new(&p);
        let pid = ProcId(0);
        gt.on_proc_enter(pid, 0);
        gt.on_edge(pid, 0);
        gt.on_proc_enter(pid, 10);
        gt.on_edge(pid, 1);
        assert_eq!(gt.invocations(pid), 2);
        assert_eq!(gt.profile(pid).count(0), 1);
        assert_eq!(gt.profile(pid).count(1), 1);
    }

    #[test]
    fn timing_profiler_measures_window() {
        let p = program();
        let mut tp = TimingProfiler::new(&p, VirtualTimer::cycle_accurate(), 0);
        let pid = ProcId(0);
        tp.on_proc_enter(pid, 100);
        tp.on_proc_exit(pid, 150);
        assert_eq!(tp.samples(pid), &[50]);
    }

    #[test]
    fn timing_profiler_subtracts_children() {
        let p = ct_ir::compile_source("module M { proc g() {} proc f() { g(); } }").unwrap();
        let mut tp = TimingProfiler::new(&p, VirtualTimer::cycle_accurate(), 0);
        let f = ProcId(1);
        let g = ProcId(0);
        tp.on_proc_enter(f, 0);
        tp.on_proc_enter(g, 20);
        tp.on_proc_exit(g, 35);
        tp.on_proc_exit(f, 60);
        assert_eq!(tp.samples(g), &[15]);
        assert_eq!(tp.samples(f), &[45]); // 60 − 15 child ticks
    }

    #[test]
    fn timing_profiler_quantizes() {
        let p = program();
        let mut tp = TimingProfiler::new(&p, VirtualTimer::new(100), 0);
        let pid = ProcId(0);
        tp.on_proc_enter(pid, 95);
        tp.on_proc_exit(pid, 105); // ticks 0 → 1
        tp.on_proc_enter(pid, 110);
        tp.on_proc_exit(pid, 190); // ticks 1 → 1
        assert_eq!(tp.samples(pid), &[1, 0]);
    }

    #[test]
    fn timing_profiler_charges_overhead() {
        let p = program();
        let mut tp = TimingProfiler::new(&p, VirtualTimer::cycle_accurate(), 8);
        assert_eq!(tp.on_proc_enter(ProcId(0), 0), 8);
        assert_eq!(tp.on_proc_exit(ProcId(0), 10), 8);
    }

    #[test]
    fn null_profiler_is_free() {
        let mut n = NullProfiler;
        assert_eq!(n.on_proc_enter(ProcId(0), 0), 0);
        assert_eq!(n.on_edge(ProcId(0), 0), 0);
    }

    #[test]
    fn pair_profiler_sums_overhead() {
        let p = program();
        let mut gt = GroundTruthProfiler::new(&p);
        let mut tp = TimingProfiler::new(&p, VirtualTimer::cycle_accurate(), 5);
        let mut pair = PairProfiler {
            a: &mut gt,
            b: &mut tp,
        };
        assert_eq!(pair.on_proc_enter(ProcId(0), 0), 5);
        assert_eq!(gt.invocations(ProcId(0)), 1);
    }
}

//! Timing sample containers: what the mote's instrumentation hands the
//! estimator.

use ct_stats::descriptive::Summary;

/// End-to-end timing samples of one procedure: exclusive durations in ticks
//  of a known timer resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSamples {
    ticks: Vec<u64>,
    cycles_per_tick: u64,
}

impl TimingSamples {
    /// Wraps tick samples measured at `cycles_per_tick` resolution.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_tick == 0`.
    pub fn new(ticks: Vec<u64>, cycles_per_tick: u64) -> TimingSamples {
        assert!(cycles_per_tick > 0, "timer resolution must be positive");
        TimingSamples {
            ticks,
            cycles_per_tick,
        }
    }

    /// The raw tick values.
    pub fn ticks(&self) -> &[u64] {
        &self.ticks
    }

    /// Timer resolution in cycles per tick.
    pub fn cycles_per_tick(&self) -> u64 {
        self.cycles_per_tick
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Sample mean converted to cycles (ticks × resolution, plus half a tick
    /// to correct the floor-quantization bias).
    pub fn mean_cycles(&self) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        let s = Summary::of(&self.as_f64());
        s.mean * self.cycles_per_tick as f64 + 0.0
    }

    /// Sample variance in cycles².
    pub fn variance_cycles(&self) -> f64 {
        let s = Summary::of(&self.as_f64());
        s.variance * (self.cycles_per_tick as f64).powi(2)
    }

    /// Distinct tick values with their multiplicities, ascending.
    pub fn counted(&self) -> Vec<(u64, usize)> {
        let mut sorted = self.ticks.clone();
        sorted.sort_unstable();
        let mut out: Vec<(u64, usize)> = Vec::new();
        for t in sorted {
            match out.last_mut() {
                Some((v, n)) if *v == t => *n += 1,
                _ => out.push((t, 1)),
            }
        }
        out
    }

    fn as_f64(&self) -> Vec<f64> {
        self.ticks.iter().map(|&t| t as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_groups_duplicates() {
        let s = TimingSamples::new(vec![3, 1, 3, 3, 2, 1], 1);
        assert_eq!(s.counted(), vec![(1, 2), (2, 1), (3, 3)]);
    }

    #[test]
    fn mean_scales_with_resolution() {
        let s = TimingSamples::new(vec![2, 4], 100);
        assert!((s.mean_cycles() - 300.0).abs() < 1e-12);
    }

    #[test]
    fn variance_scales_quadratically() {
        let s = TimingSamples::new(vec![2, 4], 10);
        // tick variance = 2 → cycles² variance = 200.
        assert!((s.variance_cycles() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_samples_are_harmless() {
        let s = TimingSamples::new(vec![], 10);
        assert!(s.is_empty());
        assert_eq!(s.mean_cycles(), 0.0);
        assert_eq!(s.counted(), vec![]);
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_rejected() {
        TimingSamples::new(vec![1], 0);
    }
}

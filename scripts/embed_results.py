#!/usr/bin/env python3
"""Embed the latest results/*.md tables into EXPERIMENTS.md.

Replaces everything between `<!-- RESULTS -->` and the next `## ` heading
with the concatenated per-experiment result files, in experiment order.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
ORDER = [
    "e1_accuracy", "e2_resolution", "e3_overhead", "e4_placement",
    "e5_speedup", "e6_noise", "e7_estimators", "e8_scalability",
    "e9_pipeline", "e10_unroll_ablation", "e11_model_error", "e12_cross_mcu",
    "e13_faults", "e14_incremental", "e15_chaos", "e16_fleet_scale",
    "e17_estimators",
]


def main() -> None:
    chunks = []
    for name in ORDER:
        p = ROOT / "results" / f"{name}.md"
        if p.exists():
            chunks.append(p.read_text().strip())
        else:
            chunks.append(f"# {name}: results file missing — regenerate with "
                          f"`cargo run --release -p ct-bench --bin {name}`")
    body = "\n\n".join(chunks)

    exp = ROOT / "EXPERIMENTS.md"
    text = exp.read_text()
    pattern = re.compile(r"<!-- RESULTS -->.*?(?=\n## Reading the results)", re.S)
    text = pattern.sub(f"<!-- RESULTS -->\n\n{body}\n", text)
    exp.write_text(text)
    print(f"embedded {len(chunks)} result files into EXPERIMENTS.md")


if __name__ == "__main__":
    main()

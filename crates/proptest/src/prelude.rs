//! The usual `use proptest::prelude::*;` imports.

pub use crate::collection;
pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Namespace mirror of upstream's `prelude::prop` (e.g. `prop::collection`).
pub mod prop {
    pub use crate::collection;
}

//! Static trip-count analysis for counted loops.
//!
//! Detects the classic counted-loop shape —
//!
//! ```text
//! var i: u16 = C0;            // or `i = C0;`
//! while (i < C1) {            // or `<=`
//!     ...                     // i not assigned here
//!     i = i + STEP;           // last statement, STEP a positive constant
//! }
//! ```
//!
//! — and computes the exact iteration count. The estimator uses this the way
//! a profile-guided compiler would: counted loops are *deterministic*, so
//! unrolling them in the duration model removes their (misspecified)
//! geometric approximation entirely and concentrates the likelihood on the
//! data-dependent branches. See `ct_cfg::unroll` and
//! `ct_core::unrolled` for the consumers.

use crate::ast::{BinOp, Expr, ExprKind, LValue, ProcDecl, Stmt};
use crate::token::Span;
use std::collections::HashMap;

/// Trip counts of every detected counted `while`, keyed by the `while`
/// statement's span (unique per statement).
pub fn counted_whiles(proc: &ProcDecl) -> HashMap<Span, u64> {
    let mut out = HashMap::new();
    scan_stmts(&proc.body, &mut out);
    out
}

fn scan_stmts(stmts: &[Stmt], out: &mut HashMap<Span, u64>) {
    for (i, stmt) in stmts.iter().enumerate() {
        match stmt {
            Stmt::While { cond, body, span } => {
                if i > 0 {
                    if let Some(trips) = match_counted(&stmts[i - 1], cond, body) {
                        out.insert(*span, trips);
                    }
                }
                scan_stmts(body, out);
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                scan_stmts(then_blk, out);
                scan_stmts(else_blk, out);
            }
            _ => {}
        }
    }
}

/// Matches the counted pattern; returns the exact trip count.
fn match_counted(prev: &Stmt, cond: &Expr, body: &[Stmt]) -> Option<u64> {
    // Condition: i < C1 or i <= C1.
    let ExprKind::Binary(op, lhs, rhs) = &cond.kind else {
        return None;
    };
    let inclusive = match op {
        BinOp::Lt => false,
        BinOp::Le => true,
        _ => return None,
    };
    let ExprKind::Var(var) = &lhs.kind else {
        return None;
    };
    let ExprKind::Int(c1) = rhs.kind else {
        return None;
    };

    // Initialization immediately before the loop.
    let c0 = match prev {
        Stmt::VarDecl { name, init, .. } if name == var => match init {
            None => 0,
            Some(Expr {
                kind: ExprKind::Int(v),
                ..
            }) => *v,
            _ => return None,
        },
        Stmt::Assign {
            target: LValue::Var(name),
            value,
            ..
        } if name == var => match value.kind {
            ExprKind::Int(v) => v,
            _ => return None,
        },
        _ => return None,
    };

    // Increment: the body's last statement is `i = i + STEP`.
    let Some(Stmt::Assign {
        target: LValue::Var(name),
        value,
        ..
    }) = body.last()
    else {
        return None;
    };
    if name != var {
        return None;
    }
    let ExprKind::Binary(BinOp::Add, il, ir) = &value.kind else {
        return None;
    };
    let ExprKind::Var(iv) = &il.kind else {
        return None;
    };
    let ExprKind::Int(step) = ir.kind else {
        return None;
    };
    if iv != var || step <= 0 {
        return None;
    }

    // The loop variable must not be written anywhere else in the body
    // (the final increment is checked above and excluded here).
    if assigns_var(&body[..body.len() - 1], var) {
        return None;
    }

    // Exact count with guard against wrap-around shenanigans.
    if c0 < 0 || c1 < 0 || c1 > u32::MAX as i64 {
        return None;
    }
    let bound = if inclusive { c1 + 1 } else { c1 };
    if bound <= c0 {
        return Some(0);
    }
    let trips = (bound - c0 + step - 1) / step;
    Some(trips as u64)
}

fn assigns_var(stmts: &[Stmt], var: &str) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign {
            target: LValue::Var(name),
            ..
        } => name == var,
        Stmt::VarDecl { name, .. } => name == var,
        Stmt::If {
            then_blk, else_blk, ..
        } => assigns_var(then_blk, var) || assigns_var(else_blk, var),
        Stmt::While { body, .. } => assigns_var(body, var),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn trips_of(body_src: &str) -> Vec<u64> {
        let m = parse_module(&format!(
            "module T {{ var g: u32; proc f() {{ {body_src} }} }}"
        ))
        .unwrap();
        let mut v: Vec<u64> = counted_whiles(&m.procs[0]).values().copied().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn basic_counted_loop() {
        assert_eq!(
            trips_of("var i: u16 = 0; while (i < 8) { g = g + i; i = i + 1; }"),
            vec![8]
        );
    }

    #[test]
    fn inclusive_bound_and_step() {
        assert_eq!(
            trips_of("var i: u16 = 0; while (i <= 8) { i = i + 1; }"),
            vec![9]
        );
        assert_eq!(
            trips_of("var i: u16 = 0; while (i < 10) { i = i + 3; }"),
            vec![4]
        );
        assert_eq!(
            trips_of("var i: u16 = 2; while (i < 10) { i = i + 2; }"),
            vec![4]
        );
    }

    #[test]
    fn assignment_init_also_matches() {
        assert_eq!(
            trips_of("var i: u16 = 99; i = 0; while (i < 5) { i = i + 1; }"),
            vec![5]
        );
    }

    #[test]
    fn default_zero_init_matches() {
        assert_eq!(
            trips_of("var i: u16; while (i < 3) { i = i + 1; }"),
            vec![3]
        );
    }

    #[test]
    fn zero_trip_loop() {
        assert_eq!(
            trips_of("var i: u16 = 9; while (i < 5) { i = i + 1; }"),
            vec![0]
        );
    }

    #[test]
    fn nested_counted_loops_both_found() {
        let t = trips_of(
            "var i: u16 = 0; while (i < 8) {
                var j: u16 = 0;
                while (j < 8) { g = g + 1; j = j + 1; }
                i = i + 1;
            }",
        );
        assert_eq!(t, vec![8, 8]);
    }

    #[test]
    fn data_dependent_loops_are_not_counted() {
        assert!(trips_of("var i: u16 = 0; while (read_adc() < 500) { i = i + 1; }").is_empty());
        // Bound is a variable, not a constant.
        assert!(
            trips_of("var n: u16 = 8; var i: u16 = 0; while (i < n) { i = i + 1; }").is_empty()
        );
    }

    #[test]
    fn extra_writes_to_loop_var_disqualify() {
        assert!(trips_of(
            "var i: u16 = 0; while (i < 8) { if (g > 3) { i = i + 5; } else { } i = i + 1; }"
        )
        .is_empty());
    }

    #[test]
    fn increment_not_last_disqualifies() {
        assert!(trips_of("var i: u16 = 0; while (i < 8) { i = i + 1; g = g + 1; }").is_empty());
    }

    #[test]
    fn counted_loop_inside_if_found() {
        let t = trips_of("if (g > 1) { var i: u16 = 0; while (i < 4) { i = i + 1; } } else { }");
        assert_eq!(t, vec![4]);
    }
}

//! Flat sparse PMF kernels over integer (cycle-count) support.
//!
//! A PMF is kept in one of two layouts:
//!
//! - the array-of-structs `Vec<(u64, f64)>` sorted by support point with
//!   strictly increasing keys — the representation raw contribution lists use
//!   while the time-expanded dynamic programs in `ct-core` are still merging
//!   frontiers; and
//! - the structure-of-arrays [`Pmf`] (keys `Vec<u64>` + masses `Vec<f64>`) —
//!   the hot-path representation: the convolution inner loop runs over a
//!   contiguous `f64` slice (FMA-able, no interleaved keys polluting the
//!   cache lines), and contiguous-support PMFs skip binary-search slicing
//!   entirely (run detection is O(1) on strictly increasing keys:
//!   `last − first + 1 == len`).
//!
//! The kernels here are the hot primitives of the inference engine:
//! coalescing raw contribution lists, pruning sub-epsilon mass, windowed
//! slicing, and windowed convolution of two PMFs. The SoA kernels reproduce
//! the tuple-based kernels bit-for-bit: same enumeration order, same
//! summation order — only the memory layout differs.

/// One support point: `(value, probability_mass)`.
pub type Entry = (u64, f64);

/// Sorts `entries` by support point and sums duplicate keys left-to-right
/// (stable), leaving a strictly-increasing flat PMF.
///
/// Left-to-right summation over a stable sort reproduces the summation order
/// of inserting the entries into a `BTreeMap` in their original order, which
/// keeps results bit-comparable with the reference implementation.
pub fn coalesce(entries: &mut Vec<Entry>) {
    if entries.len() <= 1 {
        return;
    }
    entries.sort_by_key(|&(d, _)| d);
    let mut w = 0;
    for r in 1..entries.len() {
        if entries[r].0 == entries[w].0 {
            entries[w].1 += entries[r].1;
        } else {
            w += 1;
            entries[w] = entries[r];
        }
    }
    entries.truncate(w + 1);
}

/// Removes entries with mass below `eps`; returns the total (finite) mass
/// removed.
///
/// NaN mass is treated as prunable: `m < eps` is false for NaN, so a
/// poisoned entry would otherwise silently survive every pruning pass and
/// propagate through each subsequent convolution. NaN entries are dropped
/// but excluded from the returned truncation total, which stays finite.
pub fn prune(entries: &mut Vec<Entry>, eps: f64) -> f64 {
    let mut truncated = 0.0;
    entries.retain(|&(_, m)| {
        if m.is_nan() {
            return false;
        }
        if m < eps {
            truncated += m;
            false
        } else {
            true
        }
    });
    truncated
}

/// Total probability mass.
pub fn total_mass(pmf: &[Entry]) -> f64 {
    pmf.iter().map(|&(_, m)| m).sum()
}

/// The sub-slice of `pmf` with support in `[lo, hi]` (both inclusive).
pub fn slice_range(pmf: &[Entry], lo: u64, hi: u64) -> &[Entry] {
    if lo > hi {
        return &[];
    }
    let start = pmf.partition_point(|&(d, _)| d < lo);
    let end = pmf.partition_point(|&(d, _)| d <= hi);
    &pmf[start..end]
}

/// Structure-of-arrays PMF: parallel `keys`/`mass` vectors, keys strictly
/// increasing.
///
/// This is the hot-path layout of the inference engine: the convolution and
/// scoring inner loops traverse the `f64` masses contiguously, and windowing
/// detects contiguous runs of support (`last − first + 1 == len`) to replace
/// binary searches with index arithmetic.
#[derive(Debug, Clone, Default)]
pub struct Pmf {
    keys: Vec<u64>,
    mass: Vec<f64>,
}

impl PartialEq for Pmf {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys && self.mass == other.mass
    }
}

impl Pmf {
    /// The empty PMF.
    pub fn new() -> Pmf {
        Pmf::default()
    }

    /// Builds from entries already sorted with strictly increasing keys
    /// (the invariant `coalesce` establishes).
    pub fn from_sorted(entries: Vec<Entry>) -> Pmf {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let mut keys = Vec::with_capacity(entries.len());
        let mut mass = Vec::with_capacity(entries.len());
        for (d, m) in entries {
            keys.push(d);
            mass.push(m);
        }
        Pmf { keys, mass }
    }

    /// Builds from an arbitrary contribution list, coalescing duplicates
    /// with the same stable summation order as [`coalesce`].
    pub fn from_unsorted(mut entries: Vec<Entry>) -> Pmf {
        coalesce(&mut entries);
        Pmf::from_sorted(entries)
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the PMF has no support.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The support points, ascending.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The masses, parallel to [`Pmf::keys`].
    pub fn masses(&self) -> &[f64] {
        &self.mass
    }

    /// Iterates `(key, mass)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.keys.iter().copied().zip(self.mass.iter().copied())
    }

    /// Materializes the tuple representation (for interop and tests).
    pub fn entries(&self) -> Vec<Entry> {
        self.iter().collect()
    }

    /// Total probability mass.
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// True when the support is one contiguous integer run. O(1) on the
    /// strictly-increasing key invariant.
    pub fn is_contiguous(&self) -> bool {
        match (self.keys.first(), self.keys.last()) {
            (Some(&first), Some(&last)) => last - first + 1 == self.keys.len() as u64,
            _ => true,
        }
    }

    /// The index range `[start, end)` of support inside `[lo, hi]` (both
    /// inclusive). Contiguous-support PMFs resolve the range with pure
    /// index arithmetic; only gapped supports pay for binary searches.
    pub fn window(&self, lo: u64, hi: u64) -> (usize, usize) {
        let n = self.keys.len();
        if lo > hi || n == 0 {
            return (0, 0);
        }
        let first = self.keys[0];
        let last = self.keys[n - 1];
        if lo <= first && hi >= last {
            return (0, n);
        }
        if last - first + 1 == n as u64 {
            let start = lo.saturating_sub(first).min(n as u64) as usize;
            let end = if hi < first {
                0
            } else {
                (hi - first + 1).min(n as u64) as usize
            };
            return (start, end.max(start));
        }
        let start = self.keys.partition_point(|&d| d < lo);
        let end = self.keys.partition_point(|&d| d <= hi);
        (start, end)
    }

    /// Bitwise equality: same keys, same mass bit patterns. This is the
    /// invalidation predicate of the per-edge convolution cache — reused
    /// factors must be indistinguishable from recomputed ones.
    pub fn bits_eq(&self, other: &Pmf) -> bool {
        self.keys == other.keys
            && self.mass.len() == other.mass.len()
            && self
                .mass
                .iter()
                .zip(&other.mass)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Windowed convolution with shift: returns the PMF
/// `h(d) = Σ_t f(t) · g(d − t − shift)` restricted to `d ∈ [lo, hi]`.
///
/// This is the per-edge kernel of the Baum–Welch E-step: with `f` the arrival
/// distribution at an edge's source, `g` the remaining-duration distribution
/// at its target, and `shift` the source block + edge cycle cost, `h(d)` is
/// the joint probability that the procedure runs `d` cycles total *and*
/// crosses the edge (up to the edge probability factor, applied by the
/// caller).
///
/// Strategy: when the window is narrow relative to the number of term pairs,
/// accumulate into a dense window buffer (O(pairs + width)); otherwise
/// collect the in-window terms and coalesce (O(pairs · log pairs)).
pub fn convolve_window(f: &[Entry], g: &[Entry], shift: u64, lo: u64, hi: u64) -> Vec<Entry> {
    if lo > hi || f.is_empty() || g.is_empty() {
        return Vec::new();
    }
    let width = (hi - lo + 1) as usize;
    let pairs = f.len().saturating_mul(g.len());
    if width <= pairs.saturating_mul(4).max(1024) && width <= (1 << 22) {
        convolve_dense(f, g, shift, lo, hi, width)
    } else {
        convolve_sparse(f, g, shift, lo, hi)
    }
}

/// Dense-path windowed convolution: accumulates into a window-sized buffer.
/// `width` must equal `hi - lo + 1`. Exposed so property tests can pit both
/// paths against each other on either side of the selection heuristic in
/// [`convolve_window`].
pub fn convolve_dense(
    f: &[Entry],
    g: &[Entry],
    shift: u64,
    lo: u64,
    hi: u64,
    width: usize,
) -> Vec<Entry> {
    let mut buf = vec![0.0f64; width];
    for &(t, fm) in f {
        let base = t + shift;
        if base > hi {
            continue;
        }
        let s_lo = lo.saturating_sub(base);
        let s_hi = hi - base;
        for &(s, gm) in slice_range(g, s_lo, s_hi) {
            buf[(base + s - lo) as usize] += fm * gm;
        }
    }
    buf.iter()
        .enumerate()
        .filter(|&(_, &m)| m > 0.0)
        .map(|(i, &m)| (lo + i as u64, m))
        .collect()
}

/// Sparse-path windowed convolution: collects in-window terms and coalesces.
/// Exposed so property tests can pit both paths against each other on either
/// side of the selection heuristic in [`convolve_window`].
pub fn convolve_sparse(f: &[Entry], g: &[Entry], shift: u64, lo: u64, hi: u64) -> Vec<Entry> {
    let mut terms: Vec<Entry> = Vec::new();
    for &(t, fm) in f {
        let base = t + shift;
        if base > hi {
            continue;
        }
        let s_lo = lo.saturating_sub(base);
        let s_hi = hi - base;
        for &(s, gm) in slice_range(g, s_lo, s_hi) {
            terms.push((base + s, fm * gm));
        }
    }
    coalesce(&mut terms);
    terms
}

/// SoA windowed convolution: [`convolve_window`] over [`Pmf`] operands,
/// bit-identical results (same path selection, same enumeration and
/// summation order), with two layout advantages on the dense path:
///
/// - the inner accumulation reads the mass array contiguously; and
/// - when the in-window slice of `g` is one contiguous run, the destination
///   offsets advance by 1 per term, so the loop is a pure
///   `buf[off + j] += fm * gm[j]` sweep with no per-term index computation.
pub fn convolve_window_pmf(f: &Pmf, g: &Pmf, shift: u64, lo: u64, hi: u64) -> Pmf {
    if lo > hi || f.is_empty() || g.is_empty() {
        return Pmf::new();
    }
    let width = (hi - lo + 1) as usize;
    let pairs = f.len().saturating_mul(g.len());
    if width <= pairs.saturating_mul(4).max(1024) && width <= (1 << 22) {
        convolve_dense_pmf(f, g, shift, lo, hi, width)
    } else {
        convolve_sparse_pmf(f, g, shift, lo, hi)
    }
}

fn convolve_dense_pmf(f: &Pmf, g: &Pmf, shift: u64, lo: u64, hi: u64, width: usize) -> Pmf {
    let mut buf = vec![0.0f64; width];
    for (i, &t) in f.keys.iter().enumerate() {
        let base = t + shift;
        if base > hi {
            continue;
        }
        let fm = f.mass[i];
        let s_lo = lo.saturating_sub(base);
        let s_hi = hi - base;
        let (a, b) = g.window(s_lo, s_hi);
        if a == b {
            continue;
        }
        let gk = &g.keys[a..b];
        let gm = &g.mass[a..b];
        if gk[gk.len() - 1] - gk[0] + 1 == gk.len() as u64 {
            // Contiguous run: destination indices advance by one per term.
            let off = (base + gk[0] - lo) as usize;
            for (j, &m) in gm.iter().enumerate() {
                buf[off + j] += fm * m;
            }
        } else {
            for (j, &m) in gm.iter().enumerate() {
                buf[(base + gk[j] - lo) as usize] += fm * m;
            }
        }
    }
    let mut keys = Vec::new();
    let mut mass = Vec::new();
    for (i, &m) in buf.iter().enumerate() {
        if m > 0.0 {
            keys.push(lo + i as u64);
            mass.push(m);
        }
    }
    Pmf { keys, mass }
}

fn convolve_sparse_pmf(f: &Pmf, g: &Pmf, shift: u64, lo: u64, hi: u64) -> Pmf {
    let mut terms: Vec<Entry> = Vec::new();
    for (i, &t) in f.keys.iter().enumerate() {
        let base = t + shift;
        if base > hi {
            continue;
        }
        let fm = f.mass[i];
        let s_lo = lo.saturating_sub(base);
        let s_hi = hi - base;
        let (a, b) = g.window(s_lo, s_hi);
        for j in a..b {
            terms.push((base + g.keys[j], fm * g.mass[j]));
        }
    }
    coalesce(&mut terms);
    Pmf::from_sorted(terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_sums_duplicates_in_order() {
        let mut v = vec![(5, 0.25), (3, 0.5), (5, 0.125), (3, 0.1), (7, 0.025)];
        coalesce(&mut v);
        assert_eq!(v, vec![(3, 0.6), (5, 0.375), (7, 0.025)]);
    }

    #[test]
    fn prune_accounts_truncated_mass() {
        let mut v = vec![(1, 0.5), (2, 1e-12), (3, 0.5), (4, 2e-12)];
        let t = prune(&mut v, 1e-9);
        assert_eq!(v, vec![(1, 0.5), (3, 0.5)]);
        assert!((t - 3e-12).abs() < 1e-24);
    }

    #[test]
    fn prune_drops_nan_mass() {
        // `NaN < eps` is false, so NaN used to survive pruning and poison
        // every downstream convolution. It must be dropped, and the
        // truncation total must stay finite (NaN mass is not a mass).
        let mut v = vec![(1, 0.5), (2, f64::NAN), (3, 0.25), (4, 1e-12)];
        let t = prune(&mut v, 1e-9);
        assert_eq!(v, vec![(1, 0.5), (3, 0.25)]);
        assert!(t.is_finite());
        assert!((t - 1e-12).abs() < 1e-24);
    }

    #[test]
    fn slice_range_is_inclusive() {
        let v = vec![(1, 0.1), (3, 0.2), (5, 0.3), (9, 0.4)];
        assert_eq!(slice_range(&v, 3, 5), &[(3, 0.2), (5, 0.3)]);
        assert_eq!(slice_range(&v, 0, 100), &v[..]);
        assert_eq!(slice_range(&v, 6, 8), &[]);
        assert_eq!(slice_range(&v, 7, 2), &[]);
    }

    #[test]
    fn convolution_matches_naive() {
        let f = vec![(0, 0.5), (2, 0.3), (10, 0.2)];
        let g = vec![(1, 0.6), (4, 0.4)];
        let shift = 3;
        // Naive full convolution.
        let mut naive = std::collections::BTreeMap::new();
        for &(t, fm) in &f {
            for &(s, gm) in &g {
                *naive.entry(t + s + shift).or_insert(0.0) += fm * gm;
            }
        }
        for (lo, hi) in [(0u64, 100u64), (4, 9), (8, 8), (0, 0)] {
            let h = convolve_window(&f, &g, shift, lo, hi);
            let want: Vec<Entry> = naive
                .iter()
                .filter(|&(&d, _)| d >= lo && d <= hi)
                .map(|(&d, &m)| (d, m))
                .collect();
            assert_eq!(h.len(), want.len(), "window [{lo},{hi}]");
            for (got, exp) in h.iter().zip(&want) {
                assert_eq!(got.0, exp.0);
                assert!((got.1 - exp.1).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn dense_and_sparse_paths_agree() {
        let f: Vec<Entry> = (0..40).map(|i| (i * 7, 1.0 / 40.0)).collect();
        let g: Vec<Entry> = (0..40).map(|i| (i * 11, 1.0 / 40.0)).collect();
        let (lo, hi) = (50, 500);
        let dense = convolve_dense(&f, &g, 5, lo, hi, (hi - lo + 1) as usize);
        let sparse = convolve_sparse(&f, &g, 5, lo, hi);
        assert_eq!(dense.len(), sparse.len());
        for (a, b) in dense.iter().zip(&sparse) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-15);
        }
    }

    #[test]
    fn empty_inputs_yield_empty() {
        assert!(convolve_window(&[], &[(1, 1.0)], 0, 0, 10).is_empty());
        assert!(convolve_window(&[(1, 1.0)], &[], 0, 0, 10).is_empty());
        assert!(convolve_window(&[(1, 1.0)], &[(1, 1.0)], 0, 5, 4).is_empty());
        assert!(convolve_window_pmf(&Pmf::new(), &Pmf::new(), 0, 0, 10).is_empty());
    }

    #[test]
    fn pmf_window_matches_slice_range() {
        // One gapped and one contiguous support; the SoA window must agree
        // with the tuple slice on both (the contiguous one exercises the
        // run-detection fast path).
        let gapped = vec![(1u64, 0.1), (3, 0.2), (5, 0.3), (9, 0.4)];
        let run: Vec<Entry> = (10u64..30).map(|d| (d, 1.0 / 20.0)).collect();
        for v in [gapped, run] {
            let p = Pmf::from_sorted(v.clone());
            for lo in 0u64..32 {
                for hi in 0u64..32 {
                    let s = slice_range(&v, lo, hi);
                    let (a, b) = p.window(lo, hi);
                    assert_eq!(&p.entries()[a..b], s, "window [{lo},{hi}]");
                }
            }
        }
    }

    #[test]
    fn pmf_contiguity_detection() {
        assert!(Pmf::new().is_contiguous());
        assert!(Pmf::from_sorted(vec![(7, 1.0)]).is_contiguous());
        assert!(Pmf::from_sorted(vec![(7, 0.5), (8, 0.25), (9, 0.25)]).is_contiguous());
        assert!(!Pmf::from_sorted(vec![(7, 0.5), (9, 0.5)]).is_contiguous());
    }

    #[test]
    fn soa_convolution_matches_tuple_kernel_bitwise() {
        let f: Vec<Entry> = (0..40).map(|i| (i * 7, (i as f64 + 1.0).recip())).collect();
        let g: Vec<Entry> = (0..40)
            .map(|i| (i * 11, (2.0 * i as f64 + 1.0).recip()))
            .collect();
        let fp = Pmf::from_sorted(f.clone());
        let gp = Pmf::from_sorted(g.clone());
        for (lo, hi) in [(0u64, 800u64), (50, 500), (120, 121), (700, 100_000)] {
            let tuple = convolve_window(&f, &g, 5, lo, hi);
            let soa = convolve_window_pmf(&fp, &gp, 5, lo, hi);
            assert_eq!(soa.len(), tuple.len(), "window [{lo},{hi}]");
            for ((dk, dm), (tk, tm)) in soa.iter().zip(tuple) {
                assert_eq!(dk, tk);
                assert_eq!(dm.to_bits(), tm.to_bits(), "window [{lo},{hi}] at {dk}");
            }
        }
    }

    #[test]
    fn pmf_roundtrip_and_bits_eq() {
        let raw = vec![(5, 0.25), (3, 0.5), (5, 0.125), (3, 0.1), (7, 0.025)];
        let mut coalesced = raw.clone();
        coalesce(&mut coalesced);
        let p = Pmf::from_unsorted(raw);
        assert_eq!(p.entries(), coalesced);
        assert_eq!(p.len(), 3);
        assert!((p.total_mass() - 1.0).abs() < 1e-12);
        let q = Pmf::from_sorted(p.entries());
        assert!(p.bits_eq(&q));
        let r = Pmf::from_sorted(vec![(3, 0.6), (5, 0.375), (7, 0.026)]);
        assert!(!p.bits_eq(&r));
    }
}

#![warn(missing_docs)]

//! # ct-placement
//!
//! Profile-guided code placement: turning (estimated or measured) edge
//! frequencies into flash block layouts that make hot paths fall through —
//! the downstream optimization Code Tomography feeds.
//!
//! - [`chains`] / [`mod@pettis_hansen`] — bottom-up positioning (Pettis–Hansen,
//!   PLDI 1990).
//! - [`traces`] — greedy trace growing (the ablation alternative).
//! - [`cost_model`] — expected-cost scoring shared with the mote's penalty
//!   arithmetic, plus best-of-candidates selection.
//! - [`polarity`] — per-branch alignment diagnostics.
//! - [`apply`] — whole-program placement entry points.
//!
//! ## Example
//!
//! ```
//! use ct_cfg::builder::diamond;
//! use ct_cfg::layout::PenaltyModel;
//! use ct_placement::{place_procedure, Strategy};
//! use ct_placement::cost_model::expected_cost;
//!
//! let cfg = diamond();
//! // The false arm is hot (90% of executions).
//! let freq = [0.1, 0.9, 0.1, 0.9];
//! let pen = PenaltyModel::avr();
//! let layout = place_procedure(&cfg, &freq, &pen, Strategy::Best);
//! let cost = expected_cost(&cfg, &layout, &freq, &pen);
//! // The hot branch is aligned: ≤10% of decisions mispredict.
//! assert!(cost.misprediction_rate() <= 0.1 + 1e-9);
//! ```

pub mod apply;
pub mod chains;
pub mod cost_model;
pub mod pettis_hansen;
pub mod polarity;
pub mod traces;

pub use apply::{
    place_procedure, place_program, place_with_confidence, Strategy, MIN_PLACEMENT_CONFIDENCE,
};
pub use cost_model::{best_layout, expected_cost, expected_cost_under, ExpectedLayoutCost};
pub use pettis_hansen::{pettis_hansen, pettis_hansen_raw};
pub use polarity::{alignment_rate, branch_alignments, BranchAlignment};
pub use traces::greedy_traces;

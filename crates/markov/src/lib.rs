#![warn(missing_docs)]

//! # ct-markov
//!
//! Discrete-time Markov chain machinery for the Code Tomography program
//! model: procedure executions are absorbing chains over basic blocks, and
//! everything the estimators need — expected visit counts, duration moments,
//! exact duration distributions — reduces to absorbing-chain analysis.
//!
//! - [`chain`] — validated row-stochastic chains.
//! - [`builder`] — assembling the chain of a procedure from its CFG and
//!   branch probabilities.
//! - [`absorbing`] — fundamental matrix, expected visits, absorption
//!   probabilities.
//! - [`visits`] — CFG-level visit counts, edge traversal frequencies and
//!   expected durations.
//! - [`passage`] — mean/variance of the total duration and its exact
//!   integer-support distribution.
//! - [`sample`] — Monte-Carlo trajectories and durations.
//!
//! ## Example
//!
//! ```
//! use ct_cfg::builder::while_loop;
//! use ct_cfg::graph::BlockId;
//! use ct_cfg::profile::BranchProbs;
//! use ct_markov::visits::expected_duration;
//!
//! let cfg = while_loop();
//! let mut probs = BranchProbs::uniform(&cfg, 0.5);
//! probs.set_prob_true(BlockId(1), 0.75); // loop continues 75% of the time
//! // entry=2cy, header=3cy, body=10cy, exit=1cy
//! let d = expected_duration(&cfg, &probs, &[2, 3, 10, 1]).unwrap();
//! // 2 + 4·3 + 3·10 + 1 = 45
//! assert!((d - 45.0).abs() < 1e-9);
//! ```

pub mod absorbing;
pub mod builder;
pub mod chain;
pub mod passage;
pub mod sample;
pub mod visits;

pub use absorbing::AbsorbingAnalysis;
pub use builder::chain_from_cfg;
pub use chain::{ChainError, Dtmc};
pub use passage::{duration_distribution, duration_moments, DurationDistribution, DurationMoments};
pub use sample::{sample_duration, sample_run};

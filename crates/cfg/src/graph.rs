//! Control-flow graph core: blocks, terminators, edges and traversals.
//!
//! A [`Cfg`] is the shared program representation of the workspace. Blocks
//! carry no instruction payload here — `ct-ir` keeps per-block instruction
//! lists in a sidecar indexed by [`BlockId`], and cycle costs likewise travel
//! as a separate `Vec<u64>` sidecar. This keeps the graph reusable for
//! synthetic estimator workloads that have no instructions at all.

use std::error::Error;
use std::fmt;

/// Index of a basic block within its [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block index as a `usize` for container indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional transfer to another block.
    Jump(BlockId),
    /// Two-way conditional branch on the block's final comparison.
    Branch {
        /// Successor when the condition evaluates true.
        on_true: BlockId,
        /// Successor when the condition evaluates false.
        on_false: BlockId,
    },
    /// Procedure return (the absorbing state of the Markov model).
    Return,
}

impl Terminator {
    /// The successors of this terminator, in `[on_true, on_false]` order for
    /// branches.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(t) => vec![t],
            Terminator::Branch { on_true, on_false } => vec![on_true, on_false],
            Terminator::Return => vec![],
        }
    }

    /// True for two-way conditional branches.
    pub fn is_branch(&self) -> bool {
        matches!(self, Terminator::Branch { .. })
    }
}

/// A basic block: a label plus a terminator. Instruction payloads live in
/// `ct-ir`; cycle costs live in cost sidecars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Human-readable label (e.g. `"then"`, `"loop_header"`).
    pub name: String,
    /// How control leaves the block.
    pub term: Terminator,
}

/// Classification of a CFG edge by the machine-level transfer that realizes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// The true side of a conditional branch.
    BranchTrue,
    /// The false side of a conditional branch.
    BranchFalse,
    /// An unconditional jump.
    Jump,
}

/// A directed CFG edge with a stable index.
///
/// Edge indices are assigned by enumerating blocks in id order and, within a
/// branch, the true edge before the false edge. All profile vectors in the
/// workspace are indexed by this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Stable index of this edge within [`Cfg::edges`].
    pub index: usize,
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
    /// Machine-level classification.
    pub kind: EdgeKind,
}

/// Error produced by [`Cfg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// A terminator referenced a block index that does not exist.
    TargetOutOfRange {
        /// The block whose terminator is invalid.
        block: BlockId,
        /// The nonexistent target.
        target: BlockId,
    },
    /// The graph has no blocks.
    Empty,
    /// No block has a `Return` terminator, so the procedure never exits.
    NoExit,
    /// A block is unreachable from the entry.
    Unreachable {
        /// The unreachable block.
        block: BlockId,
    },
    /// A conditional branch has identical successors.
    DegenerateBranch {
        /// The degenerate branch block.
        block: BlockId,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::TargetOutOfRange { block, target } => {
                write!(f, "block {block} targets nonexistent block {target}")
            }
            CfgError::Empty => write!(f, "control-flow graph has no blocks"),
            CfgError::NoExit => write!(f, "control-flow graph has no return block"),
            CfgError::Unreachable { block } => {
                write!(f, "block {block} is unreachable from the entry")
            }
            CfgError::DegenerateBranch { block } => {
                write!(f, "block {block} branches to the same target on both sides")
            }
        }
    }
}

impl Error for CfgError {}

/// A per-procedure control-flow graph.
///
/// The entry block is always [`BlockId`]`(0)`.
///
/// # Examples
///
/// ```
/// use ct_cfg::graph::{Cfg, Terminator, BlockId};
/// let mut cfg = Cfg::new("demo");
/// let entry = cfg.add_block("entry", Terminator::Return);
/// assert_eq!(entry, BlockId(0));
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    name: String,
    blocks: Vec<Block>,
}

impl Cfg {
    /// Creates an empty CFG with the given procedure name.
    pub fn new(name: impl Into<String>) -> Self {
        Cfg {
            name: name.into(),
            blocks: Vec::new(),
        }
    }

    /// The procedure name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a block and returns its id. The first block added is the entry.
    pub fn add_block(&mut self, name: impl Into<String>, term: Terminator) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: name.into(),
            term,
        });
        id
    }

    /// Replaces the terminator of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn set_terminator(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.index()].term = term;
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the graph has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The entry block id.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn entry(&self) -> BlockId {
        assert!(!self.blocks.is_empty(), "empty CFG has no entry");
        BlockId(0)
    }

    /// Borrow of block `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Iterator over `(BlockId, &Block)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// All block ids in id order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(|i| BlockId(i as u32))
    }

    /// Successors of `id`, true edge first for branches.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).term.successors()
    }

    /// Predecessor lists for every block, indexed by block id.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, b) in self.iter() {
            for s in b.term.successors() {
                if s.index() < preds.len() {
                    preds[s.index()].push(id);
                }
            }
        }
        preds
    }

    /// Enumerates edges with stable indices (block id order; within a branch,
    /// true before false).
    pub fn edges(&self) -> Vec<Edge> {
        let mut edges = Vec::new();
        for (id, b) in self.iter() {
            match b.term {
                Terminator::Jump(t) => {
                    edges.push(Edge {
                        index: edges.len(),
                        from: id,
                        to: t,
                        kind: EdgeKind::Jump,
                    });
                }
                Terminator::Branch { on_true, on_false } => {
                    edges.push(Edge {
                        index: edges.len(),
                        from: id,
                        to: on_true,
                        kind: EdgeKind::BranchTrue,
                    });
                    edges.push(Edge {
                        index: edges.len(),
                        from: id,
                        to: on_false,
                        kind: EdgeKind::BranchFalse,
                    });
                }
                Terminator::Return => {}
            }
        }
        edges
    }

    /// Ids of all blocks with a `Return` terminator.
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        self.iter()
            .filter(|(_, b)| matches!(b.term, Terminator::Return))
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all blocks with a conditional branch terminator, in id order.
    pub fn branch_blocks(&self) -> Vec<BlockId> {
        self.iter()
            .filter(|(_, b)| b.term.is_branch())
            .map(|(id, _)| id)
            .collect()
    }

    /// Blocks in reverse postorder from the entry (a topological order for
    /// acyclic graphs; loop headers precede their bodies for reducible ones).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut postorder = Vec::with_capacity(self.blocks.len());
        // Iterative DFS to avoid recursion limits on large synthetic graphs.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry(), 0)];
        visited[self.entry().index()] = true;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            let succs = self.successors(node);
            if *child < succs.len() {
                let next = succs[*child];
                *child += 1;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                postorder.push(node);
                stack.pop();
            }
        }
        postorder.reverse();
        postorder
    }

    /// Set of blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![self.entry()];
        seen[self.entry().index()] = true;
        while let Some(b) = stack.pop() {
            for s in self.successors(b) {
                if s.index() < seen.len() && !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// True when the graph contains no cycles.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm over reachable nodes.
        let preds = self.predecessors();
        let reach = self.reachable();
        let mut indeg: Vec<usize> = preds
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if reach[i] {
                    p.iter().filter(|q| reach[q.index()]).count()
                } else {
                    0
                }
            })
            .collect();
        let mut queue: Vec<BlockId> = self
            .block_ids()
            .filter(|b| reach[b.index()] && indeg[b.index()] == 0)
            .collect();
        let mut removed = 0;
        while let Some(b) = queue.pop() {
            removed += 1;
            for s in self.successors(b) {
                if reach[s.index()] {
                    indeg[s.index()] -= 1;
                    if indeg[s.index()] == 0 {
                        queue.push(s);
                    }
                }
            }
        }
        removed == reach.iter().filter(|&&r| r).count()
    }

    /// Checks the structural invariants of the graph.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: nonempty, all targets in range,
    /// at least one return block, every block reachable, no branch with
    /// identical successors.
    pub fn validate(&self) -> Result<(), CfgError> {
        if self.blocks.is_empty() {
            return Err(CfgError::Empty);
        }
        for (id, b) in self.iter() {
            for t in b.term.successors() {
                if t.index() >= self.blocks.len() {
                    return Err(CfgError::TargetOutOfRange {
                        block: id,
                        target: t,
                    });
                }
            }
            if let Terminator::Branch { on_true, on_false } = b.term {
                if on_true == on_false {
                    return Err(CfgError::DegenerateBranch { block: id });
                }
            }
        }
        if self.exit_blocks().is_empty() {
            return Err(CfgError::NoExit);
        }
        let reach = self.reachable();
        if let Some(i) = reach.iter().position(|&r| !r) {
            return Err(CfgError::Unreachable {
                block: BlockId(i as u32),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::diamond;

    fn loop_cfg() -> Cfg {
        // entry -> header; header -(true)-> body -(jump)-> header; header -(false)-> exit
        let mut cfg = Cfg::new("loop");
        let entry = cfg.add_block("entry", Terminator::Return);
        let header = cfg.add_block("header", Terminator::Return);
        let body = cfg.add_block("body", Terminator::Jump(header));
        let exit = cfg.add_block("exit", Terminator::Return);
        cfg.set_terminator(entry, Terminator::Jump(header));
        cfg.set_terminator(
            header,
            Terminator::Branch {
                on_true: body,
                on_false: exit,
            },
        );
        cfg
    }

    #[test]
    fn diamond_validates() {
        assert!(diamond().validate().is_ok());
    }

    #[test]
    fn diamond_edges_have_stable_order() {
        let cfg = diamond();
        let edges = cfg.edges();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0].kind, EdgeKind::BranchTrue);
        assert_eq!(edges[1].kind, EdgeKind::BranchFalse);
        assert_eq!(edges[0].from, BlockId(0));
        assert_eq!(edges[2].kind, EdgeKind::Jump);
        // Indices are consecutive.
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(e.index, i);
        }
    }

    #[test]
    fn predecessors_are_computed() {
        let cfg = diamond();
        let preds = cfg.predecessors();
        // Join block (id 3) has both arms as predecessors.
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn exit_and_branch_block_queries() {
        let cfg = diamond();
        assert_eq!(cfg.exit_blocks(), vec![BlockId(3)]);
        assert_eq!(cfg.branch_blocks(), vec![BlockId(0)]);
    }

    #[test]
    fn reverse_postorder_topologically_sorts_dag() {
        let cfg = diamond();
        let rpo = cfg.reverse_postorder();
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert_eq!(pos(BlockId(0)), 0);
        assert!(pos(BlockId(1)) < pos(BlockId(3)));
        assert!(pos(BlockId(2)) < pos(BlockId(3)));
    }

    #[test]
    fn acyclic_detection() {
        assert!(diamond().is_acyclic());
        assert!(!loop_cfg().is_acyclic());
    }

    #[test]
    fn loop_cfg_validates() {
        assert!(loop_cfg().validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(Cfg::new("x").validate(), Err(CfgError::Empty));
    }

    #[test]
    fn validate_rejects_out_of_range_target() {
        let mut cfg = Cfg::new("x");
        cfg.add_block("entry", Terminator::Jump(BlockId(9)));
        assert!(matches!(
            cfg.validate(),
            Err(CfgError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_unreachable() {
        let mut cfg = Cfg::new("x");
        cfg.add_block("entry", Terminator::Return);
        cfg.add_block("island", Terminator::Return);
        assert_eq!(
            cfg.validate(),
            Err(CfgError::Unreachable { block: BlockId(1) })
        );
    }

    #[test]
    fn validate_rejects_degenerate_branch() {
        let mut cfg = Cfg::new("x");
        let b1 = BlockId(1);
        cfg.add_block(
            "entry",
            Terminator::Branch {
                on_true: b1,
                on_false: b1,
            },
        );
        cfg.add_block("next", Terminator::Return);
        assert!(matches!(
            cfg.validate(),
            Err(CfgError::DegenerateBranch { .. })
        ));
    }

    #[test]
    fn validate_rejects_no_exit() {
        let mut cfg = Cfg::new("x");
        let e = cfg.add_block("entry", Terminator::Return);
        cfg.set_terminator(e, Terminator::Jump(e));
        assert_eq!(cfg.validate(), Err(CfgError::NoExit));
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(4).to_string(), "b4");
    }

    #[test]
    fn error_display_is_informative() {
        let e = CfgError::Unreachable { block: BlockId(2) };
        assert!(e.to_string().contains("unreachable"));
    }
}

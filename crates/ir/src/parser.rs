//! Recursive-descent parser for NLC.
//!
//! Grammar (EBNF, whitespace/comments elided):
//!
//! ```text
//! module   := "module" IDENT "{" (global | proc)* "}"
//! global   := "var" IDENT ":" TYPE ("[" INT "]")? ("=" INT)? ";"
//! proc     := "proc" IDENT "(" params? ")" ("->" TYPE)? block
//! params   := IDENT ":" TYPE ("," IDENT ":" TYPE)*
//! block    := "{" stmt* "}"
//! stmt     := "var" IDENT ":" TYPE ("=" expr)? ";"
//!           | "if" "(" expr ")" block ("else" block)?
//!           | "while" "(" expr ")" block
//!           | "return" expr? ";"
//!           | IDENT ("[" expr "]")? "=" expr ";"        (assignment)
//!           | expr ";"                                   (call statement)
//! expr     := or
//! or       := and ("||" and)*
//! and      := cmp ("&&" cmp)*
//! cmp      := bitor (("<"|"<="|">"|">="|"=="|"!=") bitor)?
//! bitor    := bitxor ("|" bitxor)*
//! bitxor   := bitand ("^" bitand)*
//! bitand   := shift ("&" shift)*
//! shift    := add (("<<"|">>") add)*
//! add      := mul (("+"|"-") mul)*
//! mul      := unary (("*"|"/"|"%") unary)*
//! unary    := ("-"|"!"|"~") unary | primary
//! primary  := INT | "true" | "false" | IDENT call_or_index? | "(" expr ")"
//! ```

use crate::ast::*;
use crate::error::IrError;
use crate::lexer::tokenize;
use crate::token::{Span, Tok, Token};
use crate::types::Ty;

/// Parses a complete NLC module from source text.
///
/// # Errors
///
/// Returns [`IrError::Lex`] or [`IrError::Parse`] with the offending
/// location.
///
/// # Examples
///
/// ```
/// use ct_ir::parser::parse_module;
/// let m = parse_module("module M { proc f() { return; } }").unwrap();
/// assert_eq!(m.name, "M");
/// assert_eq!(m.procs.len(), 1);
/// ```
pub fn parse_module(src: &str) -> Result<Module, IrError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let module = p.module()?;
    p.expect(Tok::Eof)?;
    Ok(module)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, IrError> {
        if *self.peek() == tok {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> IrError {
        IrError::Parse {
            message: message.into(),
            span: self.peek_span(),
        }
    }

    fn ident(&mut self) -> Result<(String, Span), IrError> {
        let span = self.peek_span();
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn ty(&mut self) -> Result<Ty, IrError> {
        let (name, span) = self.ident()?;
        Ty::from_name(&name).ok_or(IrError::Parse {
            message: format!("unknown type `{name}`"),
            span,
        })
    }

    fn int_literal(&mut self) -> Result<i64, IrError> {
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.err(format!("expected integer literal, found {other}"))),
        }
    }

    fn module(&mut self) -> Result<Module, IrError> {
        self.expect(Tok::Module)?;
        let (name, _) = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut globals = Vec::new();
        let mut procs = Vec::new();
        loop {
            match self.peek() {
                Tok::Var => globals.push(self.global()?),
                Tok::Proc => procs.push(self.proc()?),
                Tok::RBrace => {
                    self.bump();
                    break;
                }
                other => {
                    return Err(self.err(format!(
                        "expected `var`, `proc` or `}}` in module body, found {other}"
                    )))
                }
            }
        }
        Ok(Module {
            name,
            globals,
            procs,
        })
    }

    fn global(&mut self) -> Result<GlobalDecl, IrError> {
        let span = self.peek_span();
        self.expect(Tok::Var)?;
        let (name, _) = self.ident()?;
        self.expect(Tok::Colon)?;
        let ty = self.ty()?;
        let array_len = if self.eat(&Tok::LBracket) {
            let len = self.int_literal()?;
            if len <= 0 || len > u32::MAX as i64 {
                return Err(self.err("array length must be a positive 32-bit integer"));
            }
            self.expect(Tok::RBracket)?;
            Some(len as u32)
        } else {
            None
        };
        let init = if self.eat(&Tok::Assign) {
            if array_len.is_some() {
                return Err(self.err("array globals cannot have initializers"));
            }
            if self.eat(&Tok::True) {
                Some(1)
            } else if self.eat(&Tok::False) {
                Some(0)
            } else {
                let neg = self.eat(&Tok::Minus);
                let v = self.int_literal()?;
                Some(if neg { -v } else { v })
            }
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(GlobalDecl {
            name,
            ty,
            array_len,
            init,
            span,
        })
    }

    fn proc(&mut self) -> Result<ProcDecl, IrError> {
        let span = self.peek_span();
        self.expect(Tok::Proc)?;
        let (name, _) = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let (pname, pspan) = self.ident()?;
                self.expect(Tok::Colon)?;
                let pty = self.ty()?;
                params.push(Param {
                    name: pname,
                    ty: pty,
                    span: pspan,
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        let ret = if self.eat(&Tok::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(ProcDecl {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, IrError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, IrError> {
        let span = self.peek_span();
        match self.peek().clone() {
            Tok::Var => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.ty()?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::VarDecl {
                    name,
                    ty,
                    init,
                    span,
                })
            }
            Tok::If => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_blk = self.block()?;
                let else_blk = if self.eat(&Tok::Else) {
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                    span,
                })
            }
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            Tok::Return => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            Tok::Ident(name) => {
                // Distinguish assignment from a call statement by lookahead.
                let start = self.pos;
                self.bump();
                match self.peek().clone() {
                    Tok::Assign => {
                        self.bump();
                        let value = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Assign {
                            target: LValue::Var(name),
                            value,
                            span,
                        })
                    }
                    Tok::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        if self.eat(&Tok::Assign) {
                            let value = self.expr()?;
                            self.expect(Tok::Semi)?;
                            Ok(Stmt::Assign {
                                target: LValue::Elem(name, Box::new(index)),
                                value,
                                span,
                            })
                        } else {
                            // An element read as an expression statement is
                            // useless; reject it early.
                            Err(self.err("expected `=` after array element in statement"))
                        }
                    }
                    _ => {
                        // Re-parse from the identifier as an expression
                        // statement (a call).
                        self.pos = start;
                        let expr = self.expr()?;
                        if !matches!(expr.kind, ExprKind::Call(..)) {
                            return Err(IrError::Parse {
                                message: "expression statements must be calls".into(),
                                span: expr.span,
                            });
                        }
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Expr { expr, span })
                    }
                }
            }
            other => Err(self.err(format!("expected statement, found {other}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, IrError> {
        self.binary_level(0)
    }

    /// Precedence-climbing over the binary operator tiers.
    fn binary_level(&mut self, level: usize) -> Result<Expr, IrError> {
        // Tiers from loosest to tightest binding.
        const TIERS: &[&[(Tok, BinOp)]] = &[
            &[(Tok::OrOr, BinOp::Or)],
            &[(Tok::AndAnd, BinOp::And)],
            &[
                (Tok::Lt, BinOp::Lt),
                (Tok::Le, BinOp::Le),
                (Tok::Gt, BinOp::Gt),
                (Tok::Ge, BinOp::Ge),
                (Tok::EqEq, BinOp::Eq),
                (Tok::NotEq, BinOp::Ne),
            ],
            &[(Tok::Pipe, BinOp::BitOr)],
            &[(Tok::Caret, BinOp::BitXor)],
            &[(Tok::Amp, BinOp::BitAnd)],
            &[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Shr)],
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
            &[
                (Tok::Star, BinOp::Mul),
                (Tok::Slash, BinOp::Div),
                (Tok::Percent, BinOp::Rem),
            ],
        ];
        if level >= TIERS.len() {
            return self.unary();
        }
        let span = self.peek_span();
        let mut lhs = self.binary_level(level + 1)?;
        'outer: loop {
            for (tok, op) in TIERS[level] {
                if self.peek() == tok {
                    // Comparisons do not chain: `a < b < c` is rejected.
                    if level == 2
                        && matches!(lhs.kind, ExprKind::Binary(op2, ..) if op2.is_comparison())
                    {
                        return Err(self.err("comparison operators cannot be chained"));
                    }
                    self.bump();
                    let rhs = self.binary_level(level + 1)?;
                    lhs = Expr {
                        kind: ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)),
                        span,
                    };
                    continue 'outer;
                }
            }
            break;
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, IrError> {
        let span = self.peek_span();
        let op = match self.peek() {
            Tok::Minus => Some(UnOp::Neg),
            Tok::Bang => Some(UnOp::Not),
            Tok::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(op, Box::new(operand)),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, IrError> {
        let span = self.peek_span();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Int(v),
                    span,
                })
            }
            Tok::True => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Bool(true),
                    span,
                })
            }
            Tok::False => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Bool(false),
                    span,
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                match self.peek() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.eat(&Tok::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&Tok::Comma) {
                                    break;
                                }
                            }
                            self.expect(Tok::RParen)?;
                        }
                        Ok(Expr {
                            kind: ExprKind::Call(name, args),
                            span,
                        })
                    }
                    Tok::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        Ok(Expr {
                            kind: ExprKind::Elem(name, Box::new(index)),
                            span,
                        })
                    }
                    _ => Ok(Expr {
                        kind: ExprKind::Var(name),
                        span,
                    }),
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_expr(src: &str) -> Expr {
        let m = parse_module(&format!("module T {{ proc f() {{ x = {src}; }} }}")).unwrap();
        match &m.procs[0].body[0] {
            Stmt::Assign { value, .. } => value.clone(),
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_empty_module() {
        let m = parse_module("module Empty { }").unwrap();
        assert_eq!(m.name, "Empty");
        assert!(m.globals.is_empty());
        assert!(m.procs.is_empty());
    }

    #[test]
    fn parses_globals() {
        let m = parse_module(
            "module G { var a: u16; var b: u8 = 7; var c: i16 = -3; var buf: u16[8]; }",
        )
        .unwrap();
        assert_eq!(m.globals.len(), 4);
        assert_eq!(m.globals[1].init, Some(7));
        assert_eq!(m.globals[2].init, Some(-3));
        assert_eq!(m.globals[3].array_len, Some(8));
    }

    #[test]
    fn parses_proc_signature() {
        let m =
            parse_module("module P { proc add(a: u16, b: u16) -> u16 { return a + b; } }").unwrap();
        let p = &m.procs[0];
        assert_eq!(p.name, "add");
        assert_eq!(p.params.len(), 2);
        assert_eq!(p.ret, Some(Ty::U16));
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3");
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, ..)));
    }

    #[test]
    fn precedence_comparison_over_logical() {
        let e = parse_expr("a < b && c > d");
        let ExprKind::Binary(BinOp::And, lhs, rhs) = &e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(lhs.kind, ExprKind::Binary(BinOp::Lt, ..)));
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Gt, ..)));
    }

    #[test]
    fn parens_override_precedence() {
        let e = parse_expr("(1 + 2) * 3");
        let ExprKind::Binary(BinOp::Mul, lhs, _) = &e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(lhs.kind, ExprKind::Binary(BinOp::Add, ..)));
    }

    #[test]
    fn chained_comparison_rejected() {
        let r = parse_module("module T { proc f() { x = a < b < c; } }");
        assert!(matches!(r, Err(IrError::Parse { .. })));
    }

    #[test]
    fn unary_operators_nest() {
        let e = parse_expr("-~!x");
        let ExprKind::Unary(UnOp::Neg, inner) = &e.kind else {
            panic!("{e:?}")
        };
        let ExprKind::Unary(UnOp::BitNot, inner2) = &inner.kind else {
            panic!()
        };
        assert!(matches!(inner2.kind, ExprKind::Unary(UnOp::Not, _)));
    }

    #[test]
    fn statements_parse() {
        let m = parse_module(
            "module S { proc f(n: u16) {
                var i: u16 = 0;
                while (i < n) {
                    if (i % 2 == 0) { led_toggle(0); } else { }
                    buf[i] = i * 2;
                    i = i + 1;
                }
                return;
            } }",
        )
        .unwrap();
        assert_eq!(m.procs[0].body.len(), 3);
        let Stmt::While { body, .. } = &m.procs[0].body[1] else {
            panic!()
        };
        assert_eq!(body.len(), 3);
        assert!(matches!(
            &body[1],
            Stmt::Assign {
                target: LValue::Elem(..),
                ..
            }
        ));
    }

    #[test]
    fn call_statement_allowed_other_exprs_rejected() {
        assert!(parse_module("module S { proc f() { g(1, 2); } }").is_ok());
        assert!(matches!(
            parse_module("module S { proc f() { 1 + 2; } }"),
            Err(IrError::Parse { .. })
        ));
    }

    #[test]
    fn missing_semicolon_reports_location() {
        let e = parse_module("module S { proc f() { x = 1 } }").unwrap_err();
        assert!(e.to_string().contains("expected `;`"));
    }

    #[test]
    fn array_initializer_rejected() {
        assert!(parse_module("module S { var b: u8[4] = 1; }").is_err());
    }

    #[test]
    fn call_with_no_args_and_nested_calls() {
        let e = parse_expr("f(g(), h(1, k(2)))");
        let ExprKind::Call(name, args) = &e.kind else {
            panic!()
        };
        assert_eq!(name, "f");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn if_without_else_has_empty_else_block() {
        let m = parse_module("module S { proc f() { if (true) { return; } } }").unwrap();
        let Stmt::If { else_blk, .. } = &m.procs[0].body[0] else {
            panic!()
        };
        assert!(else_blk.is_empty());
    }
}

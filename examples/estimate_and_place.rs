//! The full paper pipeline on a benchmark app: profile by timing → estimate
//! the Markov parameters → feed them to code placement → measure the
//! misprediction reduction on replayed inputs. Each phase is one
//! `ct-pipeline` session call.
//!
//! Run with: `cargo run --example estimate_and_place`

use code_tomography::cfg::layout::Layout;
use code_tomography::pipeline::{RunConfig, Session};
use code_tomography::placement::Strategy;

fn main() {
    let n = 2000;
    // A 1 MHz timer (8 cycles/tick at 8 MHz): coarse enough to be
    // mote-realistic, fine enough to resolve this app's arm-cost
    // differences (see experiment E2 for the full resolution sweep).
    let session = Session::new(
        RunConfig::new("oscilloscope")
            .invocations(n)
            .resolution(8)
            .seeded(4242),
    );

    // --- Phase 1: measure on the original (natural) layout. -------------
    let run = session.collect().expect("runs clean");
    println!(
        "phase 1: profiled {} activations of `{}` by timing alone",
        n,
        session.config().target.name()
    );

    // --- Phase 2: estimate the execution profile from the timings. ------
    let est = session.estimate(&run).expect("estimation succeeds");
    println!(
        "phase 2: estimated {} branch probabilities ({})",
        est.estimate.probs.len(),
        est.estimate.method
    );
    for (i, bb) in est.estimate.probs.blocks().iter().enumerate() {
        println!(
            "    {bb}: est {:.3} / true {:.3}",
            est.estimate.probs.as_slice()[i],
            run.truth.as_slice()[i]
        );
    }

    // --- Phase 3: feed the estimate to the code placement pass. ---------
    // Pettis–Hansen chains hot edges into fall-throughs — the
    // misprediction-oriented strategy the paper's claim is about.
    // (Strategy::Best instead minimizes expected *cycles*, which on AVR
    // penalties sometimes trades extra 1-cycle taken branches for fewer
    // 2-cycle jumps; see experiment E4/E5 for both objectives.)
    let optimized = session
        .place(&run, &est.estimate.probs, Strategy::PettisHansen)
        .expect("frequency derivation");
    println!("phase 3: computed optimized layout {:?}", optimized.order());

    // --- Phase 4: replay identical inputs on both layouts. --------------
    let before = session
        .evaluate(&Layout::natural(run.cfg()))
        .expect("runs clean");
    let after = session.evaluate(&optimized).expect("runs clean");

    println!("phase 4: replayed {} identical activations per layout", n);
    println!(
        "    misprediction rate: {:.4} -> {:.4}",
        before.cost.misprediction_rate(),
        after.cost.misprediction_rate()
    );
    println!(
        "    total cycles:       {} -> {} ({:+.2}%)",
        before.cycles,
        after.cycles,
        (after.cycles as f64 - before.cycles as f64) / before.cycles as f64 * 100.0
    );
    assert!(after.cost.misprediction_rate() <= before.cost.misprediction_rate() + 1e-9);
    assert!(after.cycles <= before.cycles);
    println!("ok: estimated-profile placement reduced taken branches");
}

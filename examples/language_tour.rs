//! NLC language tour: compile a program exercising every language feature,
//! dump the lowered stack-machine IR and the CFG as Graphviz, and show the
//! structural decomposition the duration model builds on.
//!
//! Run with: `cargo run --example language_tour`

use code_tomography::cfg::dot::to_dot;
use code_tomography::cfg::structure::decompose;
use code_tomography::ir::pretty::dump_procedure;

fn main() {
    let source = r#"
        module Tour {
            // Scalars of every type, with initializers.
            var total: u32 = 0;
            var limit: u16 = 0x40;
            var bias: i16 = -5;
            var enabled: bool = true;
            // Fixed-size arrays (zero-initialized).
            var window: u16[4];

            proc leaf(x: u16) -> u16 {
                return (x * 3 + 1) % 97;
            }

            proc work(n: u16) -> u32 {
                var i: u16 = 0;
                var acc: u32 = 0;
                while (i < n) {
                    window[i % 4] = leaf(i);
                    if ((window[i % 4] & 1) != 0 && enabled) {
                        acc = acc + window[i % 4];
                    } else {
                        acc = acc ^ 0xFF;
                    }
                    i = i + 1;
                }
                total = acc + (bias + 5);
                return acc;
            }
        }
    "#;

    let program = code_tomography::ir::compile_source(source).expect("tour compiles");
    println!(
        "== module `{}`: {} globals, {} procs, {} bytes RAM ==\n",
        program.name,
        program.globals.len(),
        program.procs.len(),
        program.ram_bytes(),
    );

    let work = program.proc_id("work").expect("work exists");
    let proc = program.proc(work);

    println!("== lowered IR of `work` ==");
    println!("{}", dump_procedure(proc));

    println!("== CFG (Graphviz) ==");
    println!("{}", to_dot(&proc.cfg));

    println!("== structural decomposition ==");
    let region = decompose(&proc.cfg).expect("NLC output is always structured");
    println!("{region:#?}");
    println!(
        "\n{} decision blocks drive the Markov model: {:?}",
        region.decision_count(),
        region.decision_blocks()
    );

    // Run it to show semantics.
    use code_tomography::mote::cost::AvrCost;
    use code_tomography::mote::interp::Mote;
    use code_tomography::mote::trace::NullProfiler;
    let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
    let result = mote.call(work, &[10], &mut NullProfiler).expect("runs");
    println!("\nwork(10) = {:?} in {} cycles", result, mote.cycles);
    assert!(result.is_some());
}

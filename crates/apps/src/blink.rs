//! Blink: the canonical TinyOS first app — a timer handler driving three
//! LEDs from a counter cascade. Branch frequencies are 1/2, 1/4 and 1/8 by
//! construction, giving the estimators known skewed targets.

use ct_ir::program::Program;
use ct_mote::interp::Mote;

/// NLC source.
pub const SOURCE: &str = r#"
module Blink {
    var counter: u32;

    proc fired() {
        counter = counter + 1;
        if ((counter & 1) != 0) { led_toggle(0); } else { }
        if ((counter & 3) == 0) { led_toggle(1); } else { }
        if ((counter & 7) == 0) { led_toggle(2); } else { }
    }
}
"#;

/// The procedure the experiments profile.
pub const TARGET_PROC: &str = "fired";

/// Compiles the app.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug in this crate).
pub fn program() -> Program {
    ct_ir::compile_source(SOURCE).expect("bundled Blink source compiles")
}

/// Configures devices for the standard workload (none needed).
pub fn configure(_mote: &mut Mote) {}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_ir::instr::ProcId;
    use ct_mote::cost::AvrCost;
    use ct_mote::trace::{GroundTruthProfiler, NullProfiler};

    #[test]
    fn compiles_and_runs() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        for _ in 0..8 {
            mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        }
        // After 8 ticks: LED0 toggled 4×(off), LED1 toggled 2×(off), LED2 1×(on).
        assert!(!mote.devices.leds.state[0]);
        assert!(!mote.devices.leds.state[1]);
        assert!(mote.devices.leds.state[2]);
    }

    #[test]
    fn branch_frequencies_match_design() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        let mut gt = GroundTruthProfiler::new(&p);
        for _ in 0..800 {
            mote.call(ProcId(0), &[], &mut gt).unwrap();
        }
        let cfg = &p.procs[0].cfg;
        let probs = gt.branch_probs(ProcId(0), cfg);
        let expected = [0.5, 0.25, 0.125];
        for (got, want) in probs.as_slice().iter().zip(expected) {
            assert!((got - want).abs() < 0.01, "{:?}", probs);
        }
    }

    #[test]
    fn target_proc_exists_and_is_structured() {
        let p = program();
        let pid = p.proc_id(TARGET_PROC).expect("target exists");
        assert!(ct_cfg::structure::decompose(&p.proc(pid).cfg).is_ok());
    }
}

//! One seeded configuration drives the whole pipeline: what runs, on which
//! MCU calibration, how it is measured, what corrupts the measurement
//! channel, and how the estimate is produced.

use ct_apps::{app_by_name, App};
use ct_cfg::layout::PenaltyModel;
use ct_core::estimator::{EstimateOptions, RobustOptions};
use ct_faults::FaultPlan;
use ct_ir::program::Program;
use ct_mote::cost::{AvrCost, CostModel, Msp430Cost};
use ct_mote::interp::Mote;
use ct_mote::timer::VirtualTimer;

/// Which MCU calibration to run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mcu {
    /// ATmega128-class.
    Avr,
    /// MSP430-class.
    Msp430,
}

impl Mcu {
    /// Boxes the corresponding cost model.
    pub fn cost_model(self) -> Box<dyn CostModel> {
        match self {
            Mcu::Avr => Box::new(AvrCost),
            Mcu::Msp430 => Box::new(Msp430Cost),
        }
    }

    /// The calibration's short name.
    pub fn name(self) -> &'static str {
        match self {
            Mcu::Avr => "avr",
            Mcu::Msp430 => "msp430",
        }
    }
}

/// What the pipeline compiles and runs.
#[derive(Debug, Clone)]
pub enum Target {
    /// A registry app (its own source, configuration and workload hooks).
    App(App),
    /// An already-compiled program (e.g. a generated synthetic one).
    Program {
        /// The program to deploy.
        program: Program,
        /// Index of the procedure to profile.
        proc_index: usize,
        /// Device/workload setup applied at deploy time.
        configure: fn(&mut Mote),
    },
}

impl Target {
    /// The target's display name (app name, or the program's module name).
    pub fn name(&self) -> &str {
        match self {
            Target::App(app) => app.name,
            Target::Program { program, .. } => &program.name,
        }
    }
}

/// Interrupt contamination injected by the mote *inside* measured windows —
/// the measurement-noise knob of the robustness experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contamination {
    /// Probability that an activation is contaminated.
    pub prob: f64,
    /// Cycles stolen by one contamination burst.
    pub cycles: u64,
}

/// Which estimator the `Estimate` stage runs.
#[derive(Debug, Clone)]
pub enum EstimatorChoice {
    /// The repo front door [`ct_core::estimate`] (with the counted-loop
    /// unrolled model tried first when the compiler proved trip counts);
    /// hard errors surface as [`PipelineError`](crate::PipelineError).
    Naive(EstimateOptions),
    /// The graceful-degradation ladder [`ct_core::estimate_robust`]
    /// (full EM → trimmed EM → moments → prior); never fails, carries a
    /// placement-facing confidence.
    Robust(RobustOptions),
}

impl Default for EstimatorChoice {
    fn default() -> EstimatorChoice {
        EstimatorChoice::Naive(EstimateOptions::default())
    }
}

/// Seed-stride between fleet motes (odd, full-period under wrapping
/// multiplication): mote 0 keeps the configured seed exactly, so a
/// one-mote fleet reproduces the single-mote path bitwise.
const MOTE_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Everything one pipeline run depends on. Cheap to clone; every field is
/// honored by the corresponding [`stage`](crate::stage).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// What to compile and run.
    pub target: Target,
    /// MCU calibration.
    pub mcu: Mcu,
    /// Target invocations per run.
    pub invocations: usize,
    /// Measurement timer resolution in cycles per tick.
    pub cycles_per_tick: u64,
    /// Cycles charged per timestamp (instrumentation overhead).
    pub ts_overhead: u64,
    /// Seed driving all nondeterminism (inputs, radio, contamination).
    pub seed: u64,
    /// Interrupt contamination inside measured windows, if any.
    pub contamination: Option<Contamination>,
    /// Measurement-channel fault plan applied by the `Corrupt` stage.
    pub fault: Option<FaultPlan>,
    /// Which estimator the `Estimate` stage runs.
    pub estimator: EstimatorChoice,
    /// Try the counted-loop unrolled model first when trip counts are
    /// proved and no explicit method is forced (the profile-guided-compiler
    /// default). Disable to study the plain estimator in isolation.
    pub unroll_counted: bool,
}

impl RunConfig {
    /// A config for the named registry app with the standard defaults:
    /// AVR calibration, 1000 invocations, cycle-accurate timer, no
    /// instrumentation overhead, seed 0, no faults, naive estimator.
    ///
    /// # Panics
    ///
    /// Panics if no registry app has that name (mirrors the experiment
    /// binaries' contract; use [`RunConfig::for_app`] to avoid the lookup).
    pub fn new(app_name: &str) -> RunConfig {
        let app =
            app_by_name(app_name).unwrap_or_else(|| panic!("no registry app named `{app_name}`"));
        RunConfig::for_app(app)
    }

    /// A config for an already-resolved registry app.
    pub fn for_app(app: App) -> RunConfig {
        RunConfig::for_target(Target::App(app))
    }

    /// A config for an already-compiled program, profiling `proc_index`.
    pub fn for_program(program: Program, proc_index: usize, configure: fn(&mut Mote)) -> RunConfig {
        RunConfig::for_target(Target::Program {
            program,
            proc_index,
            configure,
        })
    }

    /// A config for an arbitrary target.
    pub fn for_target(target: Target) -> RunConfig {
        RunConfig {
            target,
            mcu: Mcu::Avr,
            invocations: 1_000,
            cycles_per_tick: 1,
            ts_overhead: 0,
            seed: 0,
            contamination: None,
            fault: None,
            estimator: EstimatorChoice::default(),
            unroll_counted: true,
        }
    }

    /// Sets the invocation count (builder style).
    pub fn invocations(mut self, n: usize) -> RunConfig {
        self.invocations = n;
        self
    }

    /// Sets the workload seed (builder style).
    pub fn seeded(mut self, seed: u64) -> RunConfig {
        self.seed = seed;
        self
    }

    /// Sets the MCU calibration (builder style).
    pub fn on(mut self, mcu: Mcu) -> RunConfig {
        self.mcu = mcu;
        self
    }

    /// Sets the measurement timer resolution (builder style).
    pub fn resolution(mut self, cycles_per_tick: u64) -> RunConfig {
        self.cycles_per_tick = cycles_per_tick;
        self
    }

    /// Sets the per-timestamp instrumentation overhead (builder style).
    pub fn overhead(mut self, cycles: u64) -> RunConfig {
        self.ts_overhead = cycles;
        self
    }

    /// Enables interrupt contamination (builder style).
    pub fn contaminated(mut self, prob: f64, cycles: u64) -> RunConfig {
        self.contamination = Some(Contamination { prob, cycles });
        self
    }

    /// Sets the measurement-channel fault plan (builder style).
    pub fn faulted(mut self, plan: FaultPlan) -> RunConfig {
        self.fault = Some(plan);
        self
    }

    /// Sets the estimator choice (builder style).
    pub fn estimator(mut self, choice: EstimatorChoice) -> RunConfig {
        self.estimator = choice;
        self
    }

    /// Selects the robust degradation ladder with default policy
    /// (builder style).
    pub fn robust(mut self) -> RunConfig {
        self.estimator = EstimatorChoice::Robust(RobustOptions::default());
        self
    }

    /// Disables the counted-loop unrolled-first path (builder style).
    pub fn no_unroll(mut self) -> RunConfig {
        self.unroll_counted = false;
        self
    }

    /// Applies the process environment ([`EnvConfig`]): `CT_SEED`
    /// overrides the configured seed when set.
    pub fn from_env(self) -> RunConfig {
        let env = EnvConfig::load();
        match env.seed {
            Some(seed) => self.seeded(seed),
            None => self,
        }
    }

    /// The configured measurement timer.
    pub fn timer(&self) -> VirtualTimer {
        VirtualTimer::new(self.cycles_per_tick)
    }

    /// The MCU's layout penalty model.
    pub fn penalties(&self) -> PenaltyModel {
        self.mcu.cost_model().penalties()
    }

    /// The workload seed of fleet mote `index`: mote 0 uses the configured
    /// seed verbatim (so a one-mote fleet equals the single-mote path),
    /// later motes stride through seed space deterministically.
    pub fn mote_seed(&self, index: usize) -> u64 {
        self.seed
            .wrapping_add((index as u64).wrapping_mul(MOTE_SEED_STRIDE))
    }
}

/// Process-environment knobs shared by every experiment binary:
/// `CT_THREADS` (worker count for sweep fan-out), `CT_SEED` (workload seed
/// override), `CT_SMOKE` (tiny grids, no `results/` writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvConfig {
    /// Worker threads the parallel sweeps will use.
    pub threads: usize,
    /// Workload seed override, if `CT_SEED` is set.
    pub seed: Option<u64>,
    /// Smoke mode: shrink grids and skip `results/` writes.
    pub smoke: bool,
}

impl EnvConfig {
    /// Reads `CT_THREADS` / `CT_SEED` / `CT_SMOKE` from the process
    /// environment. Unparsable values fall back to the defaults.
    pub fn load() -> EnvConfig {
        EnvConfig::load_with_smoke_alias(None)
    }

    /// Like [`EnvConfig::load`], additionally honoring a legacy smoke-mode
    /// variable name (e.g. `E13_SMOKE`).
    pub fn load_with_smoke_alias(alias: Option<&str>) -> EnvConfig {
        let flag = |name: &str| std::env::var(name).is_ok_and(|v| v != "0");
        EnvConfig {
            threads: ct_stats::parallel::thread_count(),
            seed: std::env::var("CT_SEED").ok().and_then(|v| v.parse().ok()),
            smoke: flag("CT_SMOKE") || alias.is_some_and(flag),
        }
    }

    /// The configured seed override, or `default`.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Picks the full-size or smoke-size variant of a knob.
    pub fn pick<T>(&self, full: T, smoke: T) -> T {
        if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// One-line configuration header for an experiment's report: which
    /// knobs this run used, so results are attributable.
    pub fn banner(&self) -> String {
        format!(
            "config: threads={} seed={} smoke={}",
            self.threads,
            match self.seed {
                Some(s) => s.to_string(),
                None => "default".to_string(),
            },
            if self.smoke { "on" } else { "off" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_standard_bench_setup() {
        let c = RunConfig::new("sense");
        assert_eq!(c.mcu, Mcu::Avr);
        assert_eq!(c.invocations, 1_000);
        assert_eq!(c.cycles_per_tick, 1);
        assert_eq!(c.seed, 0);
        assert!(c.fault.is_none());
        assert!(c.unroll_counted);
        assert!(matches!(c.estimator, EstimatorChoice::Naive(_)));
    }

    #[test]
    fn builder_composes() {
        let c = RunConfig::new("blink")
            .invocations(42)
            .seeded(7)
            .on(Mcu::Msp430)
            .resolution(8)
            .overhead(4)
            .no_unroll();
        assert_eq!(c.invocations, 42);
        assert_eq!(c.seed, 7);
        assert_eq!(c.mcu, Mcu::Msp430);
        assert_eq!(c.timer().cycles_per_tick(), 8);
        assert_eq!(c.ts_overhead, 4);
        assert!(!c.unroll_counted);
    }

    #[test]
    fn mote_zero_keeps_the_configured_seed() {
        let c = RunConfig::new("sense").seeded(12345);
        assert_eq!(c.mote_seed(0), 12345);
        assert_ne!(c.mote_seed(1), 12345);
        assert_ne!(c.mote_seed(1), c.mote_seed(2));
    }

    #[test]
    #[should_panic(expected = "no registry app named")]
    fn unknown_app_panics_with_context() {
        let _ = RunConfig::new("definitely-not-an-app");
    }

    #[test]
    fn banner_mentions_every_knob() {
        let env = EnvConfig {
            threads: 4,
            seed: Some(9),
            smoke: true,
        };
        let b = env.banner();
        assert!(b.contains("threads=4"));
        assert!(b.contains("seed=9"));
        assert!(b.contains("smoke=on"));
    }
}

//! The event-driven mote OS: run-to-completion timer events and a radio
//! arrival process, TinyOS-style.
//!
//! Sensor programs are event-driven: periodic timers fire handler
//! procedures, packets arrive between events. The scheduler advances the
//! mote's cycle clock to each event's fire time (idle gaps model sleep) and
//! runs the bound procedure to completion, exactly like TinyOS tasks.

use crate::interp::{Mote, TrapError};
use crate::trace::Profiler;
use ct_ir::instr::ProcId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A periodic timer bound to a handler procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerBinding {
    /// Firing period in cycles.
    pub period_cycles: u64,
    /// First firing time in cycles.
    pub phase_cycles: u64,
    /// Handler procedure.
    pub proc: ProcId,
    /// Arguments passed on every firing.
    pub args: Vec<i64>,
}

/// A Poisson-like packet arrival process feeding the radio receive queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxProcess {
    /// Mean cycles between arrivals.
    pub mean_interval_cycles: u64,
    /// Payload range (inclusive).
    pub payload: (u16, u16),
}

/// The mote scheduler.
#[derive(Debug)]
pub struct Scheduler {
    timers: Vec<TimerBinding>,
    next_fire: Vec<u64>,
    rx: Option<RxProcess>,
    next_rx: u64,
    rng: StdRng,
    /// Events executed so far.
    pub events_run: u64,
    /// Events that fired while the CPU was still busy (handler overran its
    /// period).
    pub missed_deadlines: u64,
}

impl Scheduler {
    /// An empty scheduler with a fixed seed.
    pub fn new() -> Scheduler {
        Scheduler {
            timers: Vec::new(),
            next_fire: Vec::new(),
            rx: None,
            next_rx: 0,
            rng: StdRng::seed_from_u64(0x5EED),
            events_run: 0,
            missed_deadlines: 0,
        }
    }

    /// Adds a periodic timer.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn add_timer(&mut self, binding: TimerBinding) -> &mut Scheduler {
        assert!(binding.period_cycles > 0, "timer period must be positive");
        self.next_fire.push(binding.phase_cycles);
        self.timers.push(binding);
        self
    }

    /// Enables a packet arrival process.
    ///
    /// # Panics
    ///
    /// Panics if the mean interval is zero.
    pub fn set_rx(&mut self, rx: RxProcess) -> &mut Scheduler {
        assert!(
            rx.mean_interval_cycles > 0,
            "mean interval must be positive"
        );
        self.next_rx = self.sample_interval(rx.mean_interval_cycles);
        self.rx = Some(rx);
        self
    }

    fn sample_interval(&mut self, mean: u64) -> u64 {
        // Exponential interarrival, floored at 1 cycle.
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        ((-u.ln() * mean as f64) as u64).max(1)
    }

    /// Runs the next `n` timer events.
    ///
    /// # Errors
    ///
    /// Stops at the first [`TrapError`] from a handler.
    ///
    /// # Panics
    ///
    /// Panics if no timers are bound.
    pub fn run_events(
        &mut self,
        mote: &mut Mote,
        n: u64,
        profiler: &mut dyn Profiler,
    ) -> Result<(), TrapError> {
        assert!(!self.timers.is_empty(), "scheduler has no timers bound");
        for _ in 0..n {
            // Earliest-firing timer wins; ties resolve to the lowest index.
            let (idx, &fire) = self
                .next_fire
                .iter()
                .enumerate()
                .min_by_key(|&(i, &t)| (t, i))
                .expect("timers nonempty");

            // Deliver packets that arrived before this event.
            if let Some(rx) = self.rx.clone() {
                while self.next_rx <= fire {
                    let payload = self.rng.gen_range(rx.payload.0..=rx.payload.1);
                    mote.devices.radio.deliver(payload);
                    let dt = self.sample_interval(rx.mean_interval_cycles);
                    self.next_rx += dt;
                }
            }

            if mote.cycles < fire {
                mote.cycles = fire; // the CPU slept until the timer interrupt
            } else {
                self.missed_deadlines += 1;
            }
            let binding = self.timers[idx].clone();
            mote.call(binding.proc, &binding.args, profiler)?;
            self.next_fire[idx] = fire + binding.period_cycles;
            self.events_run += 1;
        }
        Ok(())
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AvrCost;
    use crate::trace::NullProfiler;

    fn boot(src: &str) -> Mote {
        Mote::new(ct_ir::compile_source(src).unwrap(), Box::new(AvrCost))
    }

    #[test]
    fn timer_fires_periodically() {
        let mut mote = boot("module M { var n: u32; proc tick() { n = n + 1; } }");
        let mut sched = Scheduler::new();
        sched.add_timer(TimerBinding {
            period_cycles: 10_000,
            phase_cycles: 10_000,
            proc: ProcId(0),
            args: vec![],
        });
        sched.run_events(&mut mote, 5, &mut NullProfiler).unwrap();
        assert_eq!(sched.events_run, 5);
        let n = mote.globals.load(ct_ir::instr::GlobalId(0));
        assert_eq!(n, 5);
        // Clock advanced to at least the 5th fire time.
        assert!(mote.cycles >= 50_000);
    }

    #[test]
    fn idle_time_advances_clock_to_fire_time() {
        let mut mote = boot("module M { proc tick() { led_toggle(0); } }");
        let mut sched = Scheduler::new();
        sched.add_timer(TimerBinding {
            period_cycles: 1_000_000,
            phase_cycles: 1_000_000,
            proc: ProcId(0),
            args: vec![],
        });
        sched.run_events(&mut mote, 1, &mut NullProfiler).unwrap();
        assert!(mote.cycles >= 1_000_000);
        assert_eq!(sched.missed_deadlines, 0);
    }

    #[test]
    fn overrunning_handler_misses_deadlines() {
        // Busy handler (long loop) with a tiny period.
        let mut mote =
            boot("module M { proc busy() { var i: u16 = 0; while (i < 1000) { i = i + 1; } } }");
        let mut sched = Scheduler::new();
        sched.add_timer(TimerBinding {
            period_cycles: 10,
            phase_cycles: 10,
            proc: ProcId(0),
            args: vec![],
        });
        sched.run_events(&mut mote, 5, &mut NullProfiler).unwrap();
        assert!(sched.missed_deadlines >= 4, "{}", sched.missed_deadlines);
    }

    #[test]
    fn two_timers_interleave() {
        let mut mote = boot(
            "module M { var a: u32; var b: u32; proc pa() { a = a + 1; } proc pb() { b = b + 1; } }",
        );
        let mut sched = Scheduler::new();
        sched
            .add_timer(TimerBinding {
                period_cycles: 10_000,
                phase_cycles: 10_000,
                proc: ProcId(0),
                args: vec![],
            })
            .add_timer(TimerBinding {
                period_cycles: 20_000,
                phase_cycles: 20_000,
                proc: ProcId(1),
                args: vec![],
            });
        sched.run_events(&mut mote, 9, &mut NullProfiler).unwrap();
        let a = mote.globals.load(ct_ir::instr::GlobalId(0));
        let b = mote.globals.load(ct_ir::instr::GlobalId(1));
        assert_eq!(a, 6);
        assert_eq!(b, 3);
    }

    #[test]
    fn rx_process_delivers_packets() {
        let mut mote = boot(
            "module M { var got: u32; proc poll() {
                while (recv_avail()) { var v: u16 = recv_msg(); got = got + 1; }
            } }",
        );
        let mut sched = Scheduler::new();
        sched.add_timer(TimerBinding {
            period_cycles: 100_000,
            phase_cycles: 100_000,
            proc: ProcId(0),
            args: vec![],
        });
        sched.set_rx(RxProcess {
            mean_interval_cycles: 10_000,
            payload: (1, 100),
        });
        sched.run_events(&mut mote, 20, &mut NullProfiler).unwrap();
        let got = mote.globals.load(ct_ir::instr::GlobalId(0));
        // ~10 packets arrive per period on average.
        assert!(got > 50, "{got}");
    }

    #[test]
    #[should_panic(expected = "no timers bound")]
    fn running_without_timers_panics() {
        let mut mote = boot("module M { proc f() {} }");
        Scheduler::new()
            .run_events(&mut mote, 1, &mut NullProfiler)
            .unwrap();
    }
}

//! Dense row-major matrix of `f64`.
//!
//! This is deliberately a small, allocation-straightforward matrix type: the
//! estimation problems in Code Tomography involve matrices with at most a few
//! hundred rows (one per basic block or path), so clarity wins over BLAS-style
//! tuning.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use ct_stats::matrix::Matrix;
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix { rows, cols, data }
    }

    /// Builds a column vector (an `n × 1` matrix) from a slice.
    pub fn column(v: &[f64]) -> Self {
        Matrix::from_vec(v.len(), 1, v.to_vec())
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn diag(d: &[f64]) -> Self {
        let mut m = Matrix::zeros(d.len(), d.len());
        for (i, &x) in d.iter().enumerate() {
            m[(i, i)] = x;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must match column count");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            out[i] = acc;
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Scales every entry by `s`, returning a new matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|x| x * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// True when the two matrices have the same shape and all entries differ by
    /// at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in add"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in sub"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in mul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_zero_entries() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_swaps_dimensions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_with_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = a.mul_vec(&[1.0, -1.0]);
        assert_eq!(v, vec![-1.0, -1.0]);
    }

    #[test]
    fn add_sub_are_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
    }

    #[test]
    fn frobenius_norm_of_unit_axis() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn diag_builds_diagonal() {
        let m = Matrix::diag(&[1.0, 2.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 2.0);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Matrix::from_rows(&[&[1.0]]);
        let b = Matrix::from_rows(&[&[1.0 + 1e-9]]);
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}

#![warn(missing_docs)]

//! # ct-faults
//!
//! Composable, seeded fault models for the measurement channel between a
//! mote's timestamp instrumentation and the Code Tomography estimator.
//!
//! The estimator consumes [`ct_core::TimingSamples`] — per-activation tick
//! counts recovered by pairing entry/exit timestamp records that crossed a
//! low-power radio link or a flash log. Real deployments corrupt that channel
//! in characteristic ways: oscillators drift, records are lost or
//! retransmitted, batches truncate mid-record, counters stick at all-ones,
//! firmware misreports the timer prescaler. Each of those is modeled here as
//! a [`FaultModel`] that rewrites a tick stream, with two regimes per model:
//!
//! - **plausible damage** — corrupted values that still look like durations
//!   (a merged window, a skewed tick), which *mislead* an estimator; and
//! - **catastrophic records** — what naive timestamp pairing yields when a
//!   record is half-written or subtracted in the wrong order: all-ones bus
//!   reads and wrapped differences, which *break* a pipeline that does not
//!   validate its inputs.
//!
//! Every model is driven by an explicit seed through [`FaultPlan`] /
//! [`FaultChain`], so a corrupted stream is a pure function of
//! `(plan, input)` — bitwise reproducible across runs, machines, and thread
//! counts.
//!
//! ## Example
//!
//! ```
//! use ct_core::TimingSamples;
//! use ct_faults::{FaultKind, FaultPlan};
//!
//! let clean = TimingSamples::new(vec![115; 70], 1);
//! let plan = FaultPlan::single(FaultKind::RecordLoss, 0.3, 42);
//! let dirty = plan.build().apply(&clean);
//! assert_ne!(clean, dirty);
//! // Same plan, same input: bitwise identical.
//! assert_eq!(dirty, plan.build().apply(&clean));
//! // Zero rate: identity.
//! let zero = FaultPlan::single(FaultKind::RecordLoss, 0.0, 42);
//! assert_eq!(clean, zero.build().apply(&clean));
//! ```

pub mod model;
pub mod mote;
pub mod plan;

pub use model::{
    ClockDrift, Duplication, FaultModel, MisreportedResolution, RecordLoss, Reordering, StuckAt,
    TruncatedBatch,
};
pub use mote::{MoteFaultKind, MoteFaultOutcome, MoteFaultPlan, MAX_STRAGGLER_DELAY};
pub use plan::{FaultChain, FaultPlan};

use std::fmt;

/// The fault taxonomy: every channel defect the robustness experiments
/// sweep, with a canonical rate-parameterized model per kind (see
/// [`FaultKind::model`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// Oscillator skew plus per-sample jitter: durations systematically
    /// overcounted, occasionally wrapped by a timer-register glitch.
    ClockDrift,
    /// Lost exit timestamps: adjacent activation windows merge (with idle
    /// gap); a loss at the batch tail leaves a half-paired garbage record.
    RecordLoss,
    /// Link-layer retransmission: records duplicated, biased toward long
    /// activations (radio contention), occasionally half-written.
    Duplication,
    /// Out-of-order delivery: swapped records, and entry/exit pairs
    /// subtracted in the wrong order (wrapping to huge values).
    Reordering,
    /// A batch cut off mid-transfer: the tail is gone and the boundary
    /// record is half-written.
    TruncatedBatch,
    /// Stuck-at counters and interrupt-latency spikes: all-ones registers
    /// and large finite outliers.
    StuckAt,
    /// Firmware reports the wrong timer prescaler: every tick is mis-scaled
    /// on conversion to cycles.
    MisreportedResolution,
}

impl FaultKind {
    /// Every fault kind, in taxonomy order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::ClockDrift,
        FaultKind::RecordLoss,
        FaultKind::Duplication,
        FaultKind::Reordering,
        FaultKind::TruncatedBatch,
        FaultKind::StuckAt,
        FaultKind::MisreportedResolution,
    ];

    /// The canonical model for this kind at fault rate `rate` (clamped into
    /// `[0, 1]`). This is the mapping the robustness experiments sweep; rate
    /// `0` is always the identity.
    pub fn model(self, rate: f64) -> Box<dyn FaultModel> {
        match self {
            FaultKind::ClockDrift => Box::new(ClockDrift::new(rate)),
            FaultKind::RecordLoss => Box::new(RecordLoss::new(rate)),
            FaultKind::Duplication => Box::new(Duplication::new(rate)),
            FaultKind::Reordering => Box::new(Reordering::new(rate)),
            FaultKind::TruncatedBatch => Box::new(TruncatedBatch::new(rate)),
            FaultKind::StuckAt => Box::new(StuckAt::new(rate)),
            FaultKind::MisreportedResolution => Box::new(MisreportedResolution::new(rate)),
        }
    }

    /// Stable machine-readable name (used in experiment CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ClockDrift => "clock-drift",
            FaultKind::RecordLoss => "record-loss",
            FaultKind::Duplication => "duplication",
            FaultKind::Reordering => "reordering",
            FaultKind::TruncatedBatch => "truncated-batch",
            FaultKind::StuckAt => "stuck-at",
            FaultKind::MisreportedResolution => "misreported-resolution",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_distinct_names() {
        let mut names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        for k in FaultKind::ALL {
            assert_eq!(k.to_string(), k.name());
        }
    }
}

//! `ct-obs-report` — fold a JSONL trace stream into a stage/phase time
//! breakdown.
//!
//! Usage: `ct-obs-report [TRACE.jsonl]` (reads stdin when no path is
//! given). Exits non-zero if the stream contains malformed lines, so it
//! doubles as a schema validator in CI.

use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let input = match args.next() {
        Some(flag) if flag == "-h" || flag == "--help" => {
            eprintln!("usage: ct-obs-report [TRACE.jsonl]   (stdin when omitted)");
            return ExitCode::SUCCESS;
        }
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ct-obs-report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("ct-obs-report: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
    };
    let report = ct_obs::Report::from_jsonl(&input);
    print!("{}", report.render());
    if report.malformed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "ct-obs-report: {} malformed line(s) in stream",
            report.malformed.len()
        );
        ExitCode::FAILURE
    }
}

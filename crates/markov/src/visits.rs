//! CFG-level expected visit counts and edge traversal frequencies.
//!
//! These connect the Markov model back to profile vocabulary: the expected
//! edge traversals per invocation are exactly what a profile-guided code
//! placement pass consumes.

use crate::absorbing::AbsorbingAnalysis;
use crate::builder::chain_from_cfg;
use crate::chain::ChainError;
use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;

/// Expected number of visits to each block per invocation, under the Markov
/// model with parameters `probs`.
///
/// # Errors
///
/// Propagates [`ChainError`] (e.g. a loop with continuation probability 1
/// never reaches the exit).
pub fn expected_visits(cfg: &Cfg, probs: &BranchProbs) -> Result<Vec<f64>, ChainError> {
    let chain = chain_from_cfg(cfg, probs)?;
    let analysis = AbsorbingAnalysis::new(&chain)?;
    let mut visits = analysis.expected_visits(cfg.entry().index(), cfg.len());
    // The return block is visited exactly once per invocation; the absorbing
    // analysis reports transient visits only.
    for exit in cfg.exit_blocks() {
        visits[exit.index()] = 1.0 * absorption_share(&analysis, cfg, exit.index());
    }
    Ok(visits)
}

fn absorption_share(analysis: &AbsorbingAnalysis, cfg: &Cfg, exit: usize) -> f64 {
    let probs = analysis.absorption_probs(cfg.entry().index());
    analysis
        .absorbing()
        .iter()
        .position(|&s| s == exit)
        .map(|i| probs[i])
        .unwrap_or(0.0)
}

/// Expected traversal count of each edge per invocation (indexed by
/// [`Cfg::edges`] order): visits of the source times the edge's conditional
/// probability.
///
/// # Errors
///
/// Propagates [`ChainError`].
pub fn expected_edge_traversals(cfg: &Cfg, probs: &BranchProbs) -> Result<Vec<f64>, ChainError> {
    let visits = expected_visits(cfg, probs)?;
    let edge_probs = probs.edge_probs(cfg);
    Ok(cfg
        .edges()
        .iter()
        .map(|e| visits[e.from.index()] * edge_probs[e.index])
        .collect())
}

/// Expected end-to-end duration per invocation: `Σ_b visits(b) · cost(b)`.
///
/// # Errors
///
/// Propagates [`ChainError`].
///
/// # Panics
///
/// Panics if `costs.len() != cfg.len()`.
pub fn expected_duration(cfg: &Cfg, probs: &BranchProbs, costs: &[u64]) -> Result<f64, ChainError> {
    assert_eq!(costs.len(), cfg.len(), "one cost per block required");
    let visits = expected_visits(cfg, probs)?;
    Ok(visits.iter().zip(costs).map(|(v, &c)| v * c as f64).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::builder::{diamond, while_loop};
    use ct_cfg::graph::BlockId;

    #[test]
    fn diamond_visits() {
        let cfg = diamond();
        let probs = BranchProbs::from_vec(&cfg, vec![0.8]);
        let v = expected_visits(&cfg, &probs).unwrap();
        assert!((v[0] - 1.0).abs() < 1e-9);
        assert!((v[1] - 0.8).abs() < 1e-9);
        assert!((v[2] - 0.2).abs() < 1e-9);
        assert!((v[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loop_visits_are_geometric() {
        let cfg = while_loop();
        let mut probs = BranchProbs::uniform(&cfg, 0.5);
        probs.set_prob_true(BlockId(1), 0.75); // 3 expected body iterations
        let v = expected_visits(&cfg, &probs).unwrap();
        assert!(
            (v[1] - 4.0).abs() < 1e-9,
            "header visited 1/(1-q) times: {v:?}"
        );
        assert!(
            (v[2] - 3.0).abs() < 1e-9,
            "body visited q/(1-q) times: {v:?}"
        );
        assert!((v[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn edge_traversals_match_flow() {
        let cfg = diamond();
        let probs = BranchProbs::from_vec(&cfg, vec![0.8]);
        let e = expected_edge_traversals(&cfg, &probs).unwrap();
        // edges: cond→then (0.8), cond→else (0.2), then→join (0.8), else→join (0.2)
        assert!((e[0] - 0.8).abs() < 1e-9);
        assert!((e[1] - 0.2).abs() < 1e-9);
        assert!((e[2] - 0.8).abs() < 1e-9);
        assert!((e[3] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn expected_duration_weights_costs() {
        let cfg = diamond();
        let probs = BranchProbs::from_vec(&cfg, vec![0.5]);
        let d = expected_duration(&cfg, &probs, &[10, 100, 200, 1]).unwrap();
        assert!((d - (10.0 + 150.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn infinite_loop_is_an_error() {
        let cfg = while_loop();
        let mut probs = BranchProbs::uniform(&cfg, 0.5);
        probs.set_prob_true(BlockId(1), 1.0);
        assert!(expected_visits(&cfg, &probs).is_err());
    }
}

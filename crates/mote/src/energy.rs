//! Mote energy accounting.
//!
//! The reason sensor-network work cares about cycles at all is energy: motes
//! run on batteries, and every saved cycle is CPU-active time the node spends
//! asleep instead. This module converts a run's observable activity — cycles,
//! ADC samples, radio transmissions — into charge (µC), using
//! datasheet-order-of-magnitude constants for the two MCU classes.

use crate::devices::Devices;

/// Electrical model of one mote platform.
///
/// Charge is reported in microcoulombs (µC): multiply by the supply voltage
/// for energy in µJ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// CPU active-mode charge per cycle (µC). At 8 MHz and ~8 mA active
    /// current, one cycle ≈ 1e-6 µC… scaled here to µC per megacycle for
    /// numeric sanity: this field is µC per 1e6 cycles.
    pub cpu_uc_per_mcycle: f64,
    /// Charge per ADC conversion (µC).
    pub adc_uc_per_sample: f64,
    /// Charge per radio packet transmission (µC).
    pub radio_uc_per_tx: f64,
}

impl EnergyModel {
    /// MicaZ-class (ATmega128 + CC2420): 8 mA active at 8 MHz → 1000 µC per
    /// megacycle; ADC conversion ≈ 2 µC; one short packet TX ≈ 30 µC.
    pub fn micaz() -> EnergyModel {
        EnergyModel {
            cpu_uc_per_mcycle: 1000.0,
            adc_uc_per_sample: 2.0,
            radio_uc_per_tx: 30.0,
        }
    }

    /// TelosB-class (MSP430 + CC2420): lower active current (~2 mA at 8 MHz)
    /// → 250 µC per megacycle, same radio.
    pub fn telosb() -> EnergyModel {
        EnergyModel {
            cpu_uc_per_mcycle: 250.0,
            adc_uc_per_sample: 1.5,
            radio_uc_per_tx: 30.0,
        }
    }

    /// Charge consumed by a run with the given activity counts.
    pub fn charge_uc(&self, cycles: u64, adc_samples: u64, radio_tx: u64) -> f64 {
        self.cpu_uc_per_mcycle * cycles as f64 / 1e6
            + self.adc_uc_per_sample * adc_samples as f64
            + self.radio_uc_per_tx * radio_tx as f64
    }

    /// Charge consumed by a mote's devices plus `cycles` of CPU activity.
    pub fn charge_of(&self, cycles: u64, devices: &Devices) -> f64 {
        self.charge_uc(cycles, devices.adc_samples, devices.radio.sent.len() as u64)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::micaz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AvrCost;
    use crate::interp::Mote;
    use crate::trace::NullProfiler;
    use ct_ir::instr::ProcId;

    #[test]
    fn charge_components_add_up() {
        let m = EnergyModel::micaz();
        let c = m.charge_uc(2_000_000, 10, 3);
        assert!((c - (2000.0 + 20.0 + 90.0)).abs() < 1e-9);
    }

    #[test]
    fn telosb_cpu_is_cheaper() {
        let cycles = 8_000_000;
        let micaz = EnergyModel::micaz().charge_uc(cycles, 0, 0);
        let telosb = EnergyModel::telosb().charge_uc(cycles, 0, 0);
        assert!(telosb < micaz / 3.0);
    }

    #[test]
    fn device_activity_is_counted() {
        let program = ct_ir::compile_source(
            "module M { proc f() { var v: u16 = read_adc(); var ok: bool = send_msg(v); } }",
        )
        .unwrap();
        let mut mote = Mote::new(program, Box::new(AvrCost));
        for _ in 0..5 {
            mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        }
        assert_eq!(mote.devices.adc_samples, 5);
        let model = EnergyModel::micaz();
        let with_radio = model.charge_of(mote.cycles, &mote.devices);
        // CPU-only charge must be strictly less.
        let cpu_only = model.charge_uc(mote.cycles, 0, 0);
        assert!(with_radio > cpu_only);
    }

    #[test]
    fn fewer_cycles_means_less_charge() {
        let m = EnergyModel::default();
        assert!(m.charge_uc(1_000_000, 0, 0) < m.charge_uc(1_100_000, 0, 0));
    }
}

//! Linear system solvers: LU decomposition with partial pivoting and
//! Householder QR least squares.
//!
//! The absorbing-chain analysis in `ct-markov` solves `(I - Q) x = b` systems
//! with LU; the method-of-moments estimator in `ct-core` uses QR least squares
//! for its Gauss–Newton steps.

use crate::matrix::Matrix;
use std::error::Error;
use std::fmt;

/// Error returned when a linear solve cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (a pivot underflowed) at the given elimination step.
    Singular {
        /// The elimination step whose pivot underflowed.
        step: usize,
    },
    /// The system is rank-deficient in a least-squares solve.
    RankDeficient {
        /// The detected rank.
        rank: usize,
        /// The number of columns (full rank would equal this).
        cols: usize,
    },
    /// Dimensions of the operands do not match.
    DimensionMismatch {
        /// The expected dimension.
        expected: usize,
        /// The dimension that was provided.
        got: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular { step } => {
                write!(f, "matrix is singular at elimination step {step}")
            }
            SolveError::RankDeficient { rank, cols } => {
                write!(
                    f,
                    "least-squares system is rank deficient ({rank} < {cols})"
                )
            }
            SolveError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl Error for SolveError {}

/// An LU factorization with partial pivoting, `P A = L U`.
///
/// # Examples
///
/// ```
/// use ct_stats::matrix::Matrix;
/// use ct_stats::solve::Lu;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Parity of the permutation, used for the determinant sign.
    sign: f64,
}

/// Pivot threshold below which a matrix is treated as singular.
const PIVOT_EPS: f64 = 1e-12;

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a pivot column has no entry with
    /// absolute value above `1e-12`, and [`SolveError::DimensionMismatch`] if
    /// the matrix is not square.
    pub fn factor(a: &Matrix) -> Result<Lu, SolveError> {
        if a.rows() != a.cols() {
            return Err(SolveError::DimensionMismatch {
                expected: a.rows(),
                got: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivot: find the largest |entry| in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_EPS {
                return Err(SolveError::Singular { step: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] when `b.len()` differs from
    /// the matrix dimension.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(SolveError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        // Forward substitution with permuted b (unit lower-triangular L).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution with U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] when `B` has a different row
    /// count than `A`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, SolveError> {
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(SolveError::DimensionMismatch {
                expected: n,
                got: b.rows(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Returns the determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Returns the inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the underlying solves.
    pub fn inverse(&self) -> Result<Matrix, SolveError> {
        self.solve_matrix(&Matrix::identity(self.lu.rows()))
    }
}

/// Solves the dense linear least-squares problem `min ||A x - b||₂` using
/// Householder QR.
///
/// Requires `A` to have full column rank and at least as many rows as columns.
///
/// # Errors
///
/// Returns [`SolveError::RankDeficient`] when a diagonal of `R` underflows,
/// and [`SolveError::DimensionMismatch`] for shape errors.
///
/// # Examples
///
/// ```
/// use ct_stats::matrix::Matrix;
/// use ct_stats::solve::lstsq;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Fit y = 2x + 1 through three exact points.
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]]);
/// let x = lstsq(&a, &[1.0, 3.0, 5.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-10);
/// assert!((x[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let m = a.rows();
    let n = a.cols();
    if b.len() != m {
        return Err(SolveError::DimensionMismatch {
            expected: m,
            got: b.len(),
        });
    }
    if m < n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            got: m,
        });
    }
    let mut r = a.clone();
    let mut qtb = b.to_vec();

    for k in 0..n {
        // Householder vector for column k below the diagonal.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < PIVOT_EPS {
            return Err(SolveError::RankDeficient { rank: k, cols: n });
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < PIVOT_EPS * PIVOT_EPS {
            // Column already in triangular form.
            r[(k, k)] = alpha;
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing columns of R and to qtb.
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r[(i, j)];
            }
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                r[(i, j)] -= scale * v[i - k];
            }
        }
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * qtb[i];
        }
        let scale = 2.0 * dot / vnorm2;
        for i in k..m {
            qtb[i] -= scale * v[i - k];
        }
    }

    // Back substitution with the upper-triangular R.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = qtb[i];
        for j in (i + 1)..n {
            acc -= r[(i, j)] * x[j];
        }
        if r[(i, i)].abs() < PIVOT_EPS {
            return Err(SolveError::RankDeficient { rank: i, cols: n });
        }
        x[i] = acc / r[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn lu_solves_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[10.0, 12.0]).unwrap();
        assert_vec_close(&x, &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn lu_solves_system_needing_pivot() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_vec_close(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(SolveError::Singular { .. })));
    }

    #[test]
    fn lu_det_matches_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-10);
    }

    #[test]
    fn lu_inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = &a * &inv;
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn lu_solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0]]);
        let x = Lu::factor(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(x.approx_eq(&Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]), 1e-12));
    }

    #[test]
    fn lu_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn lu_rejects_wrong_rhs_length() {
        let a = Matrix::identity(2);
        let lu = Lu::factor(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn lstsq_exact_square_system() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = lstsq(&a, &[5.0, 11.0]).unwrap();
        assert_vec_close(&x, &[1.0, 2.0], 1e-10);
    }

    #[test]
    fn lstsq_overdetermined_regression() {
        // y = 1.5x - 2 with symmetric residuals: least squares recovers the line.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
        let b = [-2.0 + 0.1, -0.5 - 0.1, 1.0 + 0.1, 2.5 - 0.1];
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.5).abs() < 0.05);
        assert!((x[1] + 2.0).abs() < 0.15);
    }

    #[test]
    fn lstsq_detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        assert!(matches!(
            lstsq(&a, &[1.0, 1.0, 1.0]),
            Err(SolveError::RankDeficient { .. })
        ));
    }

    #[test]
    fn lstsq_rejects_underdetermined() {
        let a = Matrix::zeros(1, 2);
        assert!(matches!(
            lstsq(&a, &[1.0]),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_error_display_is_informative() {
        let e = SolveError::Singular { step: 3 };
        assert!(e.to_string().contains("singular"));
        let e = SolveError::RankDeficient { rank: 1, cols: 2 };
        assert!(e.to_string().contains("rank deficient"));
    }
}

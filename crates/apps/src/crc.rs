//! Crc: CRC-16/Modbus over an 8-byte packet — the compute-bound kernel.
//! The inner bit-test branch is taken with probability ≈ ½ on random data
//! and executes 64 times per packet, making this the deepest time-expanded
//! estimation target among the apps.

use ct_ir::program::Program;
use ct_mote::devices::UniformAdc;
use ct_mote::interp::Mote;

/// NLC source.
pub const SOURCE: &str = r#"
module Crc {
    var crc: u16;
    var bad: u32;

    proc packet_check() {
        crc = 0xFFFF;
        var i: u16 = 0;
        while (i < 8) {
            var byte: u16 = read_adc() & 255;
            crc = crc ^ byte;
            var b: u16 = 0;
            while (b < 8) {
                if ((crc & 1) != 0) {
                    crc = (crc >> 1) ^ 0xA001;
                } else {
                    crc = crc >> 1;
                }
                b = b + 1;
            }
            i = i + 1;
        }
        if ((crc & 255) < 8) { bad = bad + 1; } else { }
    }
}
"#;

/// The procedure the experiments profile.
pub const TARGET_PROC: &str = "packet_check";

/// Compiles the app.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug in this crate).
pub fn program() -> Program {
    ct_ir::compile_source(SOURCE).expect("bundled Crc source compiles")
}

/// Standard workload: uniformly random packet bytes.
pub fn configure(mote: &mut Mote) {
    mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
}

/// Reference CRC-16/Modbus over `data` (for functional validation).
pub fn crc16_reference(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= byte as u16;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xA001;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_ir::instr::ProcId;
    use ct_mote::cost::AvrCost;
    use ct_mote::devices::TraceAdc;
    use ct_mote::trace::{GroundTruthProfiler, NullProfiler};

    #[test]
    fn matches_reference_crc() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        let data: Vec<u8> = vec![0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0];
        mote.devices.adc = Box::new(TraceAdc::new(data.iter().map(|&b| b as u16).collect()));
        mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        let got = mote.globals.load(p.global_id("crc").unwrap()) as u16;
        assert_eq!(got, crc16_reference(&data));
    }

    #[test]
    fn bit_branch_probability_is_half() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        let mut gt = GroundTruthProfiler::new(&p);
        for _ in 0..200 {
            mote.call(ProcId(0), &[], &mut gt).unwrap();
        }
        let cfg = &p.procs[0].cfg;
        let probs = gt.branch_probs(ProcId(0), cfg);
        // Find the bit-test branch: the one with probability nearest 0.5
        // whose block sits inside the inner loop. Simpler: exactly one
        // branch has p in (0.4, 0.6).
        let near_half = probs
            .as_slice()
            .iter()
            .filter(|p| (0.4..0.6).contains(*p))
            .count();
        assert!(near_half >= 1, "{:?}", probs);
    }

    #[test]
    fn loop_counts_are_exact() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        let mut gt = GroundTruthProfiler::new(&p);
        mote.call(ProcId(0), &[], &mut gt).unwrap();
        // The inner loop body executes exactly 64 times per packet:
        // its true+false decision executes 72 times (64 continues + 8 exits).
        let cfg = &p.procs[0].cfg;
        let visits = gt.profile(ProcId(0)).block_visits(cfg, 1);
        assert_eq!(*visits.iter().max().unwrap(), 72);
    }
}

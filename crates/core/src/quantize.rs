//! The quantization likelihood kernel: probability of observing a tick count
//! given a true cycle duration.
//!
//! A procedure whose activation starts at a uniformly random timer phase
//! `φ ∈ [0, cpt)` and runs for `d` cycles is observed as
//! `⌊(φ+d)/cpt⌋ − ⌊φ/cpt⌋` ticks, which equals `⌊d/cpt⌋` with probability
//! `1 − (d mod cpt)/cpt` and `⌊d/cpt⌋ + 1` otherwise. This two-point kernel
//! is what lets the estimator use coarse timers *exactly* instead of
//! pretending ticks are cycles.

/// Probability of observing `ticks` given a true duration of `d` cycles on a
/// timer with `cpt` cycles per tick, under a uniformly random start phase.
///
/// # Panics
///
/// Panics if `cpt == 0`.
pub fn tick_likelihood(ticks: u64, d: u64, cpt: u64) -> f64 {
    assert!(cpt > 0, "cycles per tick must be positive");
    let base = d / cpt;
    let frac = (d % cpt) as f64 / cpt as f64;
    if ticks == base {
        1.0 - frac
    } else if Some(ticks) == base.checked_add(1) {
        frac
    } else {
        0.0
    }
}

/// Why a duration window could not be formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowError {
    /// The timer resolution is zero cycles per tick: every window formula
    /// collapses (the saturating chain would yield the inverted pair
    /// `(1, 0)`), and no tick count maps to any duration.
    ZeroResolution,
    /// The saturating arithmetic inverted the fence (`lo > hi`): `ticks` is
    /// so close to the top of the counter that `(ticks+1)·cpt − 1` clamps
    /// below `(ticks−1)·cpt + 1`. Such a tick is a corrupted record, never
    /// a real duration — no PMF has support there.
    DegenerateWindow {
        /// The offending tick count.
        ticks: u64,
        /// The resolution it was evaluated at.
        cpt: u64,
    },
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::ZeroResolution => {
                write!(f, "cycles per tick is zero; no duration window exists")
            }
            WindowError::DegenerateWindow { ticks, cpt } => write!(
                f,
                "duration window for {ticks} ticks at {cpt} cycles/tick is degenerate \
                 (saturated arithmetic inverted the fence)"
            ),
        }
    }
}

impl std::error::Error for WindowError {}

/// The saturating fence chain shared by both window entry points.
fn raw_window(ticks: u64, cpt: u64) -> (u64, u64) {
    let lo = ticks
        .saturating_sub(1)
        .saturating_mul(cpt)
        .saturating_add(u64::from(ticks > 0));
    let hi = ticks
        .saturating_add(1)
        .saturating_mul(cpt)
        .saturating_sub(1);
    (lo, hi)
}

/// The inclusive range of cycle durations that could produce `ticks` with
/// nonzero probability: `[(ticks−1)·cpt + 1, (ticks+1)·cpt − 1]`, clipped at
/// zero — or a typed error when no such range exists.
///
/// # Errors
///
/// [`WindowError::ZeroResolution`] when `cpt == 0`;
/// [`WindowError::DegenerateWindow`] when saturation inverts the fence
/// (tick values near the top of the counter — corrupted records).
pub fn try_duration_window(ticks: u64, cpt: u64) -> Result<(u64, u64), WindowError> {
    if cpt == 0 {
        return Err(WindowError::ZeroResolution);
    }
    let (lo, hi) = raw_window(ticks, cpt);
    if lo > hi {
        return Err(WindowError::DegenerateWindow { ticks, cpt });
    }
    Ok((lo, hi))
}

/// Infallible form of [`try_duration_window`] for callers that have already
/// validated their ticks (the estimators validate samples up front).
///
/// Saturates at `u64::MAX` for tick values near the top of the counter
/// (corrupted records), where no real duration PMF has support anyway — the
/// degenerate inverted pair makes the sample score zero instead of tripping
/// an arithmetic overflow.
///
/// # Panics
///
/// Panics if `cpt == 0`.
pub fn duration_window(ticks: u64, cpt: u64) -> (u64, u64) {
    assert!(cpt > 0, "cycles per tick must be positive");
    raw_window(ticks, cpt)
}

/// Expected observed ticks for duration `d`: `d / cpt` exactly (the kernel is
/// unbiased in expectation).
pub fn expected_ticks(d: u64, cpt: u64) -> f64 {
    assert!(cpt > 0, "cycles per tick must be positive");
    d as f64 / cpt as f64
}

/// Probability of observing `ticks` under a duration PMF (sorted flat
/// `(cycles, mass)` pairs): `Σ_d p(d) · tick_likelihood(ticks, d, cpt)`.
///
/// Only the support inside [`duration_window`] is visited, so scoring is
/// O(log |pmf| + window) regardless of the PMF's full support size.
pub fn pmf_tick_score(pmf: &[(u64, f64)], ticks: u64, cpt: u64) -> f64 {
    match try_duration_window(ticks, cpt) {
        Ok((lo, hi)) => ct_stats::pmf::slice_range(pmf, lo, hi)
            .iter()
            .map(|&(d, m)| m * tick_likelihood(ticks, d, cpt))
            .sum(),
        // Corrupted tick: no duration produces it, the sample scores zero.
        Err(WindowError::DegenerateWindow { .. }) => 0.0,
        Err(WindowError::ZeroResolution) => panic!("cycles per tick must be positive"),
    }
}

/// [`pmf_tick_score`] over the structure-of-arrays [`ct_stats::pmf::Pmf`]:
/// same windowing, same left-to-right summation order (bit-identical), but
/// the window is resolved with run detection (contiguous-support PMFs skip
/// the binary searches) and the masses stream from a contiguous slice.
pub fn pmf_tick_score_soa(pmf: &ct_stats::pmf::Pmf, ticks: u64, cpt: u64) -> f64 {
    match try_duration_window(ticks, cpt) {
        Ok((lo, hi)) => {
            let (a, b) = pmf.window(lo, hi);
            pmf.keys()[a..b]
                .iter()
                .zip(&pmf.masses()[a..b])
                .map(|(&d, &m)| m * tick_likelihood(ticks, d, cpt))
                .sum()
        }
        // Corrupted tick: no duration produces it, the sample scores zero.
        Err(WindowError::DegenerateWindow { .. }) => 0.0,
        Err(WindowError::ZeroResolution) => panic!("cycles per tick must be positive"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_is_deterministic() {
        assert_eq!(tick_likelihood(3, 300, 100), 1.0);
        assert_eq!(tick_likelihood(4, 300, 100), 0.0);
        assert_eq!(tick_likelihood(2, 300, 100), 0.0);
    }

    #[test]
    fn kernel_sums_to_one() {
        for d in [0u64, 1, 99, 100, 101, 250, 999] {
            let total: f64 = (0..20).map(|t| tick_likelihood(t, d, 100)).sum();
            assert!((total - 1.0).abs() < 1e-12, "d={d}");
        }
    }

    #[test]
    fn kernel_is_unbiased() {
        let cpt = 100;
        for d in [37u64, 150, 249, 980] {
            let mean: f64 = (0..20).map(|t| t as f64 * tick_likelihood(t, d, cpt)).sum();
            assert!((mean - expected_ticks(d, cpt)).abs() < 1e-12, "d={d}");
        }
    }

    #[test]
    fn fractional_part_splits_mass() {
        // d = 250, cpt = 100: 2 ticks w.p. 0.5, 3 ticks w.p. 0.5.
        assert!((tick_likelihood(2, 250, 100) - 0.5).abs() < 1e-12);
        assert!((tick_likelihood(3, 250, 100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cycle_accurate_timer_is_exact() {
        assert_eq!(tick_likelihood(57, 57, 1), 1.0);
        assert_eq!(tick_likelihood(56, 57, 1), 0.0);
    }

    #[test]
    fn window_covers_support() {
        let cpt = 100;
        for ticks in [0u64, 1, 5] {
            let (lo, hi) = duration_window(ticks, cpt);
            // Everything inside the window has positive likelihood...
            for d in lo..=hi {
                assert!(tick_likelihood(ticks, d, cpt) > 0.0, "ticks={ticks} d={d}");
            }
            // ...and the boundary just outside has zero.
            if lo > 0 {
                assert_eq!(tick_likelihood(ticks, lo - 1, cpt), 0.0);
            }
            assert_eq!(tick_likelihood(ticks, hi + 1, cpt), 0.0);
        }
    }

    #[test]
    fn zero_duration_is_zero_ticks() {
        assert_eq!(tick_likelihood(0, 0, 244), 1.0);
        assert_eq!(duration_window(0, 244), (0, 243));
    }

    #[test]
    fn extreme_ticks_saturate_instead_of_overflowing() {
        // A stuck-at counter reports ticks near u64::MAX; the window must
        // saturate and the score must be zero, not a panic.
        // Both bounds saturate; the window degenerates to empty (lo > hi),
        // which `slice_range` treats as zero support.
        let (lo, hi) = duration_window(u64::MAX, 244);
        assert_eq!(lo, u64::MAX);
        assert_eq!(hi, u64::MAX - 1);
        assert_eq!(tick_likelihood(u64::MAX, u64::MAX, 1), 1.0);
        let pmf = vec![(116u64, 1.0)];
        assert_eq!(pmf_tick_score(&pmf, u64::MAX, 244), 0.0);
    }

    #[test]
    fn try_window_boundaries() {
        // Zero ticks is a real observation: durations shorter than one tick.
        assert_eq!(try_duration_window(0, 244), Ok((0, 243)));
        // Cycle-accurate timer: width-1 windows everywhere reasonable.
        assert_eq!(try_duration_window(7, 1), Ok((7, 7)));
        // Zero resolution is a typed error, not a degenerate interval.
        assert_eq!(try_duration_window(0, 0), Err(WindowError::ZeroResolution));
        assert_eq!(
            try_duration_window(u64::MAX, 0),
            Err(WindowError::ZeroResolution)
        );
        // Ticks at the top of the counter invert the saturated fence.
        assert_eq!(
            try_duration_window(u64::MAX, 244),
            Err(WindowError::DegenerateWindow {
                ticks: u64::MAX,
                cpt: 244
            })
        );
        assert_eq!(
            try_duration_window(u64::MAX, 1),
            Err(WindowError::DegenerateWindow {
                ticks: u64::MAX,
                cpt: 1
            })
        );
        // The largest non-degenerate tick at cpt = 1 sits one below the top.
        assert_eq!(
            try_duration_window(u64::MAX - 1, 1),
            Ok((u64::MAX - 1, u64::MAX - 1))
        );
        // Every Ok window agrees with the infallible form.
        for (ticks, cpt) in [(0u64, 244u64), (7, 1), (5, 100), (u64::MAX - 1, 1)] {
            assert_eq!(
                try_duration_window(ticks, cpt),
                Ok(duration_window(ticks, cpt))
            );
        }
    }

    #[test]
    fn window_error_display() {
        assert!(WindowError::ZeroResolution.to_string().contains("zero"));
        let e = WindowError::DegenerateWindow {
            ticks: u64::MAX,
            cpt: 8,
        };
        assert!(e.to_string().contains("degenerate"));
    }

    #[test]
    fn soa_score_matches_slice_score_bitwise() {
        let entries = vec![(250u64, 0.5), (310u64, 0.5), (311u64, 0.125)];
        let pmf = ct_stats::pmf::Pmf::from_sorted(entries.clone());
        for ticks in 0..10 {
            let slice = pmf_tick_score(&entries, ticks, 100);
            let soa = pmf_tick_score_soa(&pmf, ticks, 100);
            assert_eq!(slice.to_bits(), soa.to_bits(), "ticks={ticks}");
        }
        assert_eq!(pmf_tick_score_soa(&pmf, u64::MAX, 244), 0.0);
    }

    #[test]
    fn pmf_score_matches_pointwise_sum() {
        // d = 250 and d = 310 under cpt = 100, observed tick 3:
        // 0.5·0.5 (from 250) + 0.5·0.9 (from 310) = 0.7.
        let pmf = vec![(250u64, 0.5), (310u64, 0.5)];
        assert!((pmf_tick_score(&pmf, 3, 100) - 0.7).abs() < 1e-12);
        // Out-of-window support contributes nothing.
        assert_eq!(pmf_tick_score(&pmf, 9, 100), 0.0);
    }
}

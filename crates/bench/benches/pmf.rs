//! Criterion microbenchmarks: windowed-convolution kernels — the tuple
//! (`Vec<(u64, f64)>`) reference layout vs the structure-of-arrays [`Pmf`]
//! layout the E-step runs on, on dense (contiguous-support) and sparse
//! (strided-support) operands.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_stats::pmf::{self, Pmf};
use std::hint::black_box;

/// A normalized PMF with `len` support points starting at `base`, strided by
/// `stride`, with deterministically varied masses.
fn synth(base: u64, stride: u64, len: usize) -> Vec<(u64, f64)> {
    let raw: Vec<(u64, f64)> = (0..len)
        .map(|i| (base + i as u64 * stride, 1.0 + ((i * 37) % 11) as f64))
        .collect();
    let total: f64 = raw.iter().map(|&(_, m)| m).sum();
    raw.into_iter().map(|(k, m)| (k, m / total)).collect()
}

fn bench_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf");
    let cases = [
        ("dense", synth(40, 1, 512), synth(100, 1, 512)),
        ("sparse", synth(40, 97, 512), synth(100, 89, 512)),
    ];
    for (name, f, g) in &cases {
        let shift = 25u64;
        // A window clipping the middle of the product support, like the
        // E-step's per-observation duration windows.
        let lo = f[len_q(f, 1)].0 + g[len_q(g, 1)].0 + shift;
        let hi = f[len_q(f, 3)].0 + g[len_q(g, 3)].0 + shift;
        let (fp, gp) = (Pmf::from_sorted(f.clone()), Pmf::from_sorted(g.clone()));
        group.bench_function(format!("convolve-tuple/{name}"), |b| {
            b.iter(|| pmf::convolve_window(black_box(f), black_box(g), shift, lo, hi));
        });
        group.bench_function(format!("convolve-soa/{name}"), |b| {
            b.iter(|| pmf::convolve_window_pmf(black_box(&fp), black_box(&gp), shift, lo, hi));
        });
    }
    group.finish();
}

/// Index of the q-th quartile point of a support list.
fn len_q(p: &[(u64, f64)], q: usize) -> usize {
    (p.len() * q / 4).min(p.len() - 1)
}

criterion_group!(benches, bench_convolution);
criterion_main!(benches);

//! E8 — Estimation cost vs program size (Figure).
//!
//! Claim evaluated: the estimator scales to realistic procedure sizes, and
//! the automatic EM→moments fallback engages where the time-expanded support
//! explodes (deep diamond chains widen the duration support exponentially).

use ct_apps::synthetic::{diamond_chain_problem, random_program, GenConfig};
use ct_bench::{f4, write_result, Mcu, Table};
use ct_core::accuracy::compare;
use ct_core::estimator::{estimate, EstimateOptions};
use ct_core::samples::TimingSamples;
use ct_mote::timer::VirtualTimer;
use ct_mote::trace::{GroundTruthProfiler, PairProfiler, TimingProfiler};
use std::time::Instant;

fn main() {
    let n = 2_000;
    let mut table = Table::new(vec![
        "problem",
        "blocks",
        "branches",
        "static paths",
        "method",
        "wmae",
        "time ms",
    ]);

    // Part 1: generated structured programs of growing decision count,
    // executed on the mote (real ground truth, real timing samples).
    // Each cell is self-contained (own program, mote, seed) — fan them out.
    let part1 = ct_bench::par_sweep(vec![2usize, 4, 6, 8, 10, 12], |decisions| {
        let program = random_program(
            8_000 + decisions as u64,
            GenConfig {
                decisions,
                max_depth: 3,
                loop_share: 0.25,
            },
        );
        let mut mote = ct_mote::interp::Mote::new(program.clone(), Mcu::Avr.cost_model());
        mote.devices.adc = Box::new(ct_mote::devices::UniformAdc { lo: 0, hi: 1023 });
        mote.reseed(42);
        let pid = ct_ir::instr::ProcId(0);
        let mut gt = GroundTruthProfiler::new(&program);
        let mut tp = TimingProfiler::new(&program, VirtualTimer::cycle_accurate(), 0);
        for _ in 0..n {
            let mut pair = PairProfiler {
                a: &mut gt,
                b: &mut tp,
            };
            mote.call(pid, &[], &mut pair)
                .expect("generated programs run");
        }
        let cfg = &program.procs[0].cfg;
        let samples = TimingSamples::new(tp.samples(pid).to_vec(), 1);
        let bc = mote.static_block_costs(pid).to_vec();
        let ec = mote.static_edge_costs(pid).to_vec();

        let start = Instant::now();
        let est = estimate(cfg, &bc, &ec, &samples, EstimateOptions::default())
            .expect("estimation succeeds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let truth = gt.branch_probs(pid, cfg);
        let acc = compare(cfg, &est.probs, &truth, gt.profile(pid), n as u64);
        let paths = if cfg.is_acyclic() {
            ct_cfg::paths::count_paths(cfg).to_string()
        } else {
            "∞ (loops)".into()
        };
        eprintln!("e8: generated_d{decisions} done");
        vec![
            format!("generated_d{decisions}"),
            cfg.len().to_string(),
            truth.len().to_string(),
            paths,
            est.method.to_string(),
            f4(acc.weighted_mae),
            format!("{elapsed:.2}"),
        ]
    });
    for row in part1 {
        table.row(row);
    }

    // Part 2: diamond chains of growing width with synthetic exact samples —
    // shows the EM→moments fallback point.
    let part2 = ct_bench::par_sweep(vec![2usize, 4, 6, 8, 10, 12], |k| {
        let (cfg, bc, ec, truth) = diamond_chain_problem(k, 900 + k as u64);
        let chain = ct_markov::chain_from_cfg(&cfg, &truth).expect("valid chain");
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9_000);
        let edges = cfg.edges();
        let ticks: Vec<u64> = (0..n)
            .map(|_| {
                let run =
                    ct_markov::sample_run(&chain, cfg.entry().index(), &mut rng, 100_000).unwrap();
                let mut d: u64 = run.iter().map(|&b| bc[b]).sum();
                for w in run.windows(2) {
                    let e = edges
                        .iter()
                        .find(|e| e.from.index() == w[0] && e.to.index() == w[1])
                        .unwrap();
                    d += ec[e.index];
                }
                d
            })
            .collect();
        let samples = TimingSamples::new(ticks, 1);

        let start = Instant::now();
        let est = estimate(&cfg, &bc, &ec, &samples, EstimateOptions::default())
            .expect("estimation succeeds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let acc = ct_core::accuracy::compare_unweighted(&est.probs, &truth);
        eprintln!("e8: diamond_chain_{k} done");
        vec![
            format!("diamond_chain_{k}"),
            cfg.len().to_string(),
            k.to_string(),
            (1u64 << k).to_string(),
            est.method.to_string(),
            f4(acc.mae),
            format!("{elapsed:.2}"),
        ]
    });
    for row in part2 {
        table.row(row);
    }

    let out = format!(
        "# E8 — Estimation cost and accuracy vs program size\n\n\
         {n} samples per problem; cycle-accurate timer. Generated programs run on the\n\
         mote; diamond chains use exact synthetic samples. `method` shows where the\n\
         automatic EM→moments fallback engages.\n\n{}",
        table.to_markdown()
    );
    println!("{out}");
    write_result("e8_scalability.md", &out);
}

//! Human-readable estimation reports.

use crate::accuracy::AccuracyReport;
use crate::estimator::{Estimate, RobustEstimate};
use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;
use std::fmt::Write as _;

/// Renders a per-branch comparison table (markdown) of estimated vs true
/// probabilities.
///
/// # Panics
///
/// Panics if the vectors do not match.
pub fn branch_table(cfg: &Cfg, estimated: &BranchProbs, truth: &BranchProbs) -> String {
    assert_eq!(estimated.len(), truth.len(), "branch count mismatch");
    let mut out = String::new();
    let _ = writeln!(out, "| branch | block | estimated | true | abs error |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (i, &bb) in truth.blocks().iter().enumerate() {
        let e = estimated.as_slice()[i];
        let t = truth.as_slice()[i];
        let _ = writeln!(
            out,
            "| {} | {} ({}) | {:.4} | {:.4} | {:.4} |",
            i,
            bb,
            cfg.block(bb).name,
            e,
            t,
            (e - t).abs()
        );
    }
    out
}

/// One-line summary of an estimate and its accuracy.
pub fn summary_line(name: &str, est: &Estimate, acc: &AccuracyReport) -> String {
    format!(
        "{name}: method={} iters={} branches={} mae={:.4} wmae={:.4} max={:.4}{}",
        est.method,
        est.iterations,
        acc.n_branches,
        acc.mae,
        acc.weighted_mae,
        acc.max_err,
        if est.unexplained > 0 {
            format!(" unexplained={}", est.unexplained)
        } else {
            String::new()
        }
    )
}

/// One-line summary of a degradation-ladder estimate: the accepted rung and
/// confidence, then the regular estimate summary, then the rejection reasons
/// of every stronger rung so logs show *why* the answer degraded.
pub fn robust_summary_line(name: &str, r: &RobustEstimate, acc: &AccuracyReport) -> String {
    let mut line = format!(
        "{} [rung={} confidence={:.2}{}]",
        summary_line(name, &r.estimate, acc),
        r.rung,
        r.confidence,
        if r.trimmed > 0 {
            format!(" trimmed={}", r.trimmed)
        } else {
            String::new()
        }
    );
    for a in r.attempts.iter().filter(|a| !a.accepted) {
        let _ = write!(line, " !{}: {}", a.rung, a.detail);
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{Method, Rung, RungAttempt};
    use ct_cfg::builder::diamond;

    #[test]
    fn table_contains_rows() {
        let cfg = diamond();
        let t = BranchProbs::from_vec(&cfg, vec![0.7]);
        let e = BranchProbs::from_vec(&cfg, vec![0.65]);
        let s = branch_table(&cfg, &e, &t);
        assert!(s.contains("0.6500"));
        assert!(s.contains("0.7000"));
        assert!(s.contains("cond"));
    }

    #[test]
    fn summary_line_mentions_method() {
        let cfg = diamond();
        let est = Estimate {
            probs: BranchProbs::uniform(&cfg, 0.5),
            method: Method::Em,
            iterations: 7,
            converged: true,
            final_delta: 1e-7,
            loglik: Some(-12.0),
            unexplained: 2,
        };
        let acc = AccuracyReport {
            mae: 0.01,
            ..Default::default()
        };
        let line = summary_line("sense", &est, &acc);
        assert!(line.contains("method=em"));
        assert!(line.contains("unexplained=2"));
    }

    #[test]
    fn robust_summary_mentions_rung_and_rejections() {
        let cfg = diamond();
        let r = RobustEstimate {
            estimate: Estimate {
                probs: BranchProbs::uniform(&cfg, 0.5),
                method: Method::Em,
                iterations: 5,
                converged: true,
                final_delta: 1e-7,
                loglik: Some(-10.0),
                unexplained: 0,
            },
            rung: Rung::TrimmedEm,
            confidence: 0.63,
            trimmed: 20,
            attempts: vec![
                RungAttempt {
                    rung: Rung::FullEm,
                    accepted: false,
                    detail: "tick value overflows".into(),
                },
                RungAttempt {
                    rung: Rung::TrimmedEm,
                    accepted: true,
                    detail: "converged".into(),
                },
            ],
        };
        let acc = AccuracyReport::default();
        let line = robust_summary_line("sense", &r, &acc);
        assert!(line.contains("rung=trimmed-em"));
        assert!(line.contains("confidence=0.63"));
        assert!(line.contains("trimmed=20"));
        assert!(line.contains("!full-em: tick value overflows"));
        assert!(!line.contains("!trimmed-em"));
    }
}

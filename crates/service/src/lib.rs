//! Long-running sharded estimation service: bounded-queue ingest, periodic
//! deterministic tree reduction, and a request/response front door.
//!
//! This crate restructures "call [`IncrementalEm`](ct_core::IncrementalEm)
//! in a loop" into a service with three tiers:
//!
//! 1. **Ingest** — K [`Shard`] accumulators, each owning a
//!    [`SuffStats`](ct_core::stream::SuffStats) delta and a
//!    [`BatchTag`](ct_core::stream::BatchTag) dedup ledger. In the
//!    threaded [`EstimationService`], each shard lives behind a bounded
//!    `sync_channel`; a full queue is **explicit backpressure** (blocking
//!    send, or a typed [`IngestError::QueueFull`] in non-blocking mode) —
//!    the service sheds latency, never batches.
//! 2. **Reduce** — the [`ReduceTier`] periodically harvests shard deltas
//!    and tree-reduces them into a generation-stamped global accumulator.
//!    Because the tree reduction and the cumulative merge are exact
//!    integer folds, the reduced statistics are **bitwise identical to
//!    the monolithic fold at any shard count, thread count, queue depth,
//!    or reduce cadence**.
//! 3. **Front door** — [`EstimateRequest`] / [`EstimateResponse`]: serve
//!    an estimate from the latest reduced generation (EM runs at most
//!    once per generation, warm-started), stamped with confidence and
//!    staleness. `Drain` and `Snapshot` control verbs reuse the
//!    checkpoint format in [`checkpoint`].
//!
//! Two deployment shapes share all of this logic:
//!
//! * [`ServiceCore`] — single-threaded, caller-driven; with
//!   [`ServiceConfig::pinned`] it reproduces the pre-service streaming
//!   loop bitwise, which is how `ct-pipeline`'s `Fleet` stays pinned while
//!   running on the service underneath.
//! * [`EstimationService`] — the threaded deployment: shard workers behind
//!   bounded queues, a polling coordinator, crash-tolerant checkpoints at
//!   reduce boundaries.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod reduce;
pub mod service;
pub mod shard;

pub use api::{EstimateRequest, EstimateResponse, IngestError, ServiceError};
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointEstimate, CheckpointPolicy};
pub use config::ServiceConfig;
pub use engine::ServiceCore;
pub use reduce::ReduceTier;
pub use service::{EstimationService, IngestHandle};
pub use shard::{route, Shard, ShardHarvest};

//! Property-based tests of placement: validity, determinism and
//! never-worse-than-natural guarantees of the `Best` strategy.

use ct_cfg::builder::{diamond, diamond_chain, nested_loops, while_loop};
use ct_cfg::graph::Cfg;
use ct_cfg::layout::{Layout, PenaltyModel};
use ct_placement::cost_model::expected_cost;
use ct_placement::{
    alignment_rate, greedy_traces, pettis_hansen, place_procedure, Strategy as PlacementStrategy,
};
use proptest::prelude::*;

fn check_valid(cfg: &Cfg, layout: &Layout) -> Result<(), TestCaseError> {
    prop_assert_eq!(layout.order().len(), cfg.len());
    prop_assert_eq!(layout.order()[0], cfg.entry());
    let mut seen: Vec<_> = layout.order().to_vec();
    seen.sort();
    seen.dedup();
    prop_assert_eq!(seen.len(), cfg.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both algorithms always emit valid layouts on assorted shapes.
    #[test]
    fn layouts_always_valid(shape in 0usize..4, w in proptest::collection::vec(0.0f64..100.0, 32)) {
        let cfg = match shape {
            0 => diamond(),
            1 => while_loop(),
            2 => nested_loops(),
            _ => diamond_chain(3),
        };
        let weights: Vec<f64> = (0..cfg.edges().len()).map(|i| w[i % w.len()]).collect();
        check_valid(&cfg, &pettis_hansen(&cfg, &weights))?;
        check_valid(&cfg, &greedy_traces(&cfg, &weights, 0.5))?;
    }

    /// `Strategy::Best` never scores worse than the natural layout.
    #[test]
    fn best_never_loses(w in proptest::collection::vec(0.0f64..100.0, 32)) {
        for cfg in [diamond(), while_loop(), diamond_chain(2)] {
            let weights: Vec<f64> = (0..cfg.edges().len()).map(|i| w[i % w.len()]).collect();
            let pen = PenaltyModel::avr();
            let best = place_procedure(&cfg, &weights, &pen, PlacementStrategy::Best);
            let c_best = expected_cost(&cfg, &best, &weights, &pen).extra_cycles;
            let c_nat =
                expected_cost(&cfg, &Layout::natural(&cfg), &weights, &pen).extra_cycles;
            prop_assert!(c_best <= c_nat + 1e-9, "{c_best} vs {c_nat}");
        }
    }

    /// Pettis–Hansen fully aligns a single skewed branch.
    #[test]
    fn ph_aligns_single_branch(hot in 60.0f64..100.0, cold in 0.0f64..40.0) {
        let cfg = diamond();
        // then-arm hot.
        let weights = [hot, cold, hot, cold];
        let l = pettis_hansen(&cfg, &weights);
        prop_assert_eq!(alignment_rate(&cfg, &l, &weights), 1.0);
        // else-arm hot.
        let weights = [cold, hot, cold, hot];
        let l = pettis_hansen(&cfg, &weights);
        prop_assert_eq!(alignment_rate(&cfg, &l, &weights), 1.0);
    }

    /// Placement is scale-invariant: multiplying all weights by a constant
    /// yields the same layout.
    #[test]
    fn ph_scale_invariant(w in proptest::collection::vec(0.1f64..10.0, 4), k in 1.0f64..50.0) {
        let cfg = diamond();
        let scaled: Vec<f64> = w.iter().map(|x| x * k).collect();
        prop_assert_eq!(pettis_hansen(&cfg, &w), pettis_hansen(&cfg, &scaled));
    }

    /// Expected-cost mispredictions shrink (or stay) after Best placement,
    /// for flow-consistent diamond weights.
    #[test]
    fn best_does_not_increase_mispredictions(t in 0.0f64..100.0, f in 0.0f64..100.0) {
        let cfg = diamond();
        let weights = [t, f, t, f];
        let pen = PenaltyModel::msp430();
        let best = place_procedure(&cfg, &weights, &pen, PlacementStrategy::Best);
        let nat = Layout::natural(&cfg);
        let m_best = expected_cost(&cfg, &best, &weights, &pen).misprediction_rate();
        let m_nat = expected_cost(&cfg, &nat, &weights, &pen).misprediction_rate();
        prop_assert!(m_best <= m_nat + 1e-9, "{m_best} vs {m_nat}");
    }
}

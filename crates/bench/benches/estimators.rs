//! Criterion microbenchmarks: estimator throughput (EM vs moments vs flow)
//! on a fixed synthetic problem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_apps::synthetic::diamond_chain_problem;
use ct_core::em::EmOptions;
use ct_core::estimator::{estimate, EstimateOptions, Method};
use ct_core::samples::TimingSamples;
use ct_core::stream::SuffStats;
use ct_core::IncrementalEm;
use ct_markov::chain_from_cfg;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_estimators(c: &mut Criterion) {
    let (cfg, bc, ec, truth) = diamond_chain_problem(3, 11);
    let chain = chain_from_cfg(&cfg, &truth).unwrap();
    let edges = cfg.edges();
    let mut rng = StdRng::seed_from_u64(5);
    let ticks: Vec<u64> = (0..1000)
        .map(|_| {
            let run = ct_markov::sample_run(&chain, 0, &mut rng, 100_000).unwrap();
            let mut d: u64 = run.iter().map(|&b| bc[b]).sum();
            for w in run.windows(2) {
                let e = edges
                    .iter()
                    .find(|e| e.from.index() == w[0] && e.to.index() == w[1])
                    .unwrap();
                d += ec[e.index];
            }
            d
        })
        .collect();
    let samples = TimingSamples::new(ticks, 1);

    let mut group = c.benchmark_group("estimators");
    for method in [Method::Em, Method::Moments, Method::FlowMean] {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.to_string()),
            &method,
            |b, &method| {
                let opts = EstimateOptions {
                    method: Some(method),
                    ..Default::default()
                };
                b.iter(|| estimate(black_box(&cfg), &bc, &ec, black_box(&samples), opts).unwrap());
            },
        );
    }
    // Streaming path: the same 1000 samples arriving as 10 batches of 100,
    // re-estimated after each. One iteration = one full 10-batch replay, so
    // amortized µs/batch is mean_ns / 10 / 1000.
    let deltas: Vec<SuffStats> = samples
        .ticks()
        .chunks(100)
        .map(|c| {
            let mut s = SuffStats::new(1);
            for &t in c {
                s.push(t);
            }
            s
        })
        .collect();
    group.bench_function("em-incremental-10x100", |b| {
        b.iter(|| {
            let mut inc = IncrementalEm::new(1, EmOptions::default());
            for d in black_box(&deltas) {
                inc.ingest(d).unwrap();
                inc.reestimate(black_box(&cfg), &bc, &ec).unwrap();
            }
            inc.last().unwrap().probs.clone()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);

//! The abstract mote instruction set NLC lowers to.
//!
//! Blocks hold flat instruction lists over an operand stack. Every
//! instruction has a *fixed* cycle cost under a given MCU cost model (defined
//! in `ct-mote`), which is what makes per-block static costs — the backbone
//! of Code Tomography's duration model — well defined.

use crate::ast::{BinOp, UnOp};
use crate::types::Ty;
use std::fmt;

/// Index of a module-level variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// The id as a container index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a procedure within its [`crate::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The id as a container index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Mote hardware operations exposed to NLC as builtin calls.
///
/// These are where nondeterministic inputs enter the program: `read_adc` and
/// `recv_*` draw from the input streams configured on the simulated mote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `read_adc() -> u16`: sample the sensor ADC.
    ReadAdc,
    /// `led_set(which: u8, on: u8)`: drive an LED.
    LedSet,
    /// `led_toggle(which: u8)`: toggle an LED.
    LedToggle,
    /// `send_msg(payload: u16) -> bool`: transmit a radio packet; returns
    /// channel success.
    SendMsg,
    /// `recv_avail() -> bool`: is a received packet pending?
    RecvAvail,
    /// `recv_msg() -> u16`: dequeue a received packet payload (0 if none).
    RecvMsg,
    /// `node_id() -> u16`: this mote's identifier.
    NodeId,
}

/// Argument/result kind for intrinsic signature checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValKind {
    /// Any integer type.
    Int,
    /// Boolean.
    Bool,
}

impl Intrinsic {
    /// Looks up an intrinsic by its NLC name.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "read_adc" => Intrinsic::ReadAdc,
            "led_set" => Intrinsic::LedSet,
            "led_toggle" => Intrinsic::LedToggle,
            "send_msg" => Intrinsic::SendMsg,
            "recv_avail" => Intrinsic::RecvAvail,
            "recv_msg" => Intrinsic::RecvMsg,
            "node_id" => Intrinsic::NodeId,
            _ => return None,
        })
    }

    /// The NLC-visible name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::ReadAdc => "read_adc",
            Intrinsic::LedSet => "led_set",
            Intrinsic::LedToggle => "led_toggle",
            Intrinsic::SendMsg => "send_msg",
            Intrinsic::RecvAvail => "recv_avail",
            Intrinsic::RecvMsg => "recv_msg",
            Intrinsic::NodeId => "node_id",
        }
    }

    /// Parameter kinds.
    pub fn params(self) -> &'static [ValKind] {
        match self {
            Intrinsic::ReadAdc | Intrinsic::RecvAvail | Intrinsic::RecvMsg | Intrinsic::NodeId => {
                &[]
            }
            Intrinsic::LedToggle | Intrinsic::SendMsg => &[ValKind::Int],
            Intrinsic::LedSet => &[ValKind::Int, ValKind::Int],
        }
    }

    /// Result kind, if the intrinsic produces a value.
    pub fn result(self) -> Option<ValKind> {
        match self {
            Intrinsic::ReadAdc | Intrinsic::RecvMsg | Intrinsic::NodeId => Some(ValKind::Int),
            Intrinsic::SendMsg | Intrinsic::RecvAvail => Some(ValKind::Bool),
            Intrinsic::LedSet | Intrinsic::LedToggle => None,
        }
    }
}

/// One stack-machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Push a constant.
    PushConst(i64),
    /// Push local slot `n` (parameters occupy the first slots).
    LoadLocal(u16),
    /// Pop into local slot `n`.
    StoreLocal(u16),
    /// Push global scalar.
    LoadGlobal(GlobalId),
    /// Pop into global scalar.
    StoreGlobal(GlobalId),
    /// Pop an index; push `global[index]`. Traps when out of bounds.
    LoadElem(GlobalId),
    /// Pop a value, pop an index; store into `global[index]`. Traps when out
    /// of bounds.
    StoreElem(GlobalId),
    /// Apply a unary operator to the stack top.
    Unary(UnOp),
    /// Pop rhs, pop lhs, push `lhs op rhs`. Division/remainder trap on zero.
    Binary(BinOp),
    /// Wrap the stack top into a type's value range.
    Cast(Ty),
    /// Call a procedure; arguments are on the stack (last on top); the result
    /// (if any) is pushed.
    Call(ProcId),
    /// Invoke a mote hardware intrinsic.
    Intrinsic(Intrinsic),
    /// Discard the stack top.
    Pop,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::PushConst(v) => write!(f, "push {v}"),
            Instr::LoadLocal(n) => write!(f, "ldloc {n}"),
            Instr::StoreLocal(n) => write!(f, "stloc {n}"),
            Instr::LoadGlobal(g) => write!(f, "ldglob g{}", g.0),
            Instr::StoreGlobal(g) => write!(f, "stglob g{}", g.0),
            Instr::LoadElem(g) => write!(f, "ldelem g{}", g.0),
            Instr::StoreElem(g) => write!(f, "stelem g{}", g.0),
            Instr::Unary(op) => write!(f, "un {op:?}"),
            Instr::Binary(op) => write!(f, "bin {op:?}"),
            Instr::Cast(ty) => write!(f, "cast {ty}"),
            Instr::Call(p) => write!(f, "call p{}", p.0),
            Instr::Intrinsic(i) => write!(f, "intr {}", i.name()),
            Instr::Pop => write!(f, "pop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_names_round_trip() {
        for i in [
            Intrinsic::ReadAdc,
            Intrinsic::LedSet,
            Intrinsic::LedToggle,
            Intrinsic::SendMsg,
            Intrinsic::RecvAvail,
            Intrinsic::RecvMsg,
            Intrinsic::NodeId,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
        assert_eq!(Intrinsic::from_name("sleep"), None);
    }

    #[test]
    fn intrinsic_signatures() {
        assert_eq!(Intrinsic::ReadAdc.params().len(), 0);
        assert_eq!(Intrinsic::ReadAdc.result(), Some(ValKind::Int));
        assert_eq!(Intrinsic::LedSet.params().len(), 2);
        assert_eq!(Intrinsic::LedSet.result(), None);
        assert_eq!(Intrinsic::SendMsg.result(), Some(ValKind::Bool));
    }

    #[test]
    fn instr_display() {
        assert_eq!(Instr::PushConst(3).to_string(), "push 3");
        assert_eq!(Instr::Call(ProcId(2)).to_string(), "call p2");
        assert_eq!(
            Instr::Intrinsic(Intrinsic::ReadAdc).to_string(),
            "intr read_adc"
        );
    }
}

//! Per-edge convolution cache for the Baum–Welch E-step.
//!
//! The E-step computes one windowed convolution `h_e = f(u) ⊛ g(v)` per CFG
//! edge per EM iteration. Across iterations (and, in incremental estimation,
//! across batches) most factor PMFs stabilize: a block far from the branch
//! whose parameter moved keeps a bitwise-identical arrival or
//! remaining-duration distribution, and once EM warm-starts a new batch from
//! the previous optimum the *entire* table is unchanged. This cache lets
//! those edges reuse the previous convolution instead of recomputing it.
//!
//! Keying is by **version**, not by content: the caller version-stamps each
//! block's forward/backward PMF (bumping the stamp whenever the PMF changes
//! bitwise — see `EStepCache` in `ct-core`) and the cache compares
//! `(f_version, g_version, shift, window)`. A hit therefore returns a PMF
//! that is bit-identical to what recomputation would produce, so cached and
//! uncached runs are indistinguishable — the determinism contracts
//! (thread-count, traced==untraced, cache on==off) hold by construction.
//!
//! The `CT_CONV_CACHE` environment knob (`0` disables) exists for A/B
//! benchmarking and debugging; disabled, every lookup recomputes and counts
//! as a miss.

use crate::pmf::Pmf;

/// Cache key: version stamps of the two factor PMFs plus the convolution
/// geometry. Equal keys guarantee a bitwise-equal convolution result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvKey {
    /// Version stamp of the source block's arrival PMF `f(u)`.
    pub f_version: u64,
    /// Version stamp of the target block's remaining-duration PMF `g(v)`.
    pub g_version: u64,
    /// The convolution shift (source block cost + edge cost).
    pub shift: u64,
    /// Window lower bound (inclusive).
    pub lo: u64,
    /// Window upper bound (inclusive).
    pub hi: u64,
}

/// One cached convolution per edge slot, plus hit/miss accounting.
#[derive(Debug, Clone, Default)]
pub struct ConvCache {
    enabled: bool,
    slots: Vec<Option<(ConvKey, Pmf)>>,
    hits: u64,
    misses: u64,
}

/// Whether `CT_CONV_CACHE` leaves the cache enabled (anything but `"0"`).
pub fn cache_enabled_from_env() -> bool {
    std::env::var("CT_CONV_CACHE").map_or(true, |v| v != "0")
}

impl ConvCache {
    /// A cache with `edges` empty slots, honoring `CT_CONV_CACHE`.
    pub fn new(edges: usize) -> ConvCache {
        ConvCache::with_enabled(edges, cache_enabled_from_env())
    }

    /// A cache with the enable switch forced (for A/B tests).
    pub fn with_enabled(edges: usize, enabled: bool) -> ConvCache {
        ConvCache {
            enabled,
            slots: vec![None; edges],
            hits: 0,
            misses: 0,
        }
    }

    /// True when lookups may return cached results.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Grows the slot table to at least `edges` entries.
    pub fn ensure_edges(&mut self, edges: usize) {
        if self.slots.len() < edges {
            self.slots.resize(edges, None);
        }
    }

    /// Returns the convolution for `edge` under `key`, computing (and
    /// storing) it via `compute` on a miss. Disabled caches always compute.
    pub fn get_or_compute(
        &mut self,
        edge: usize,
        key: ConvKey,
        compute: impl FnOnce() -> Pmf,
    ) -> &Pmf {
        self.ensure_edges(edge + 1);
        let slot = &mut self.slots[edge];
        let hit = self.enabled && matches!(slot, Some((k, _)) if *k == key);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            *slot = Some((key, compute()));
        }
        match slot {
            Some((_, h)) => h,
            // `slot` was filled on the miss path just above.
            None => unreachable!("cache slot filled on miss"),
        }
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that recomputed (including every lookup when disabled).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmf::convolve_window_pmf;

    fn key(f_version: u64, g_version: u64) -> ConvKey {
        ConvKey {
            f_version,
            g_version,
            shift: 3,
            lo: 0,
            hi: 100,
        }
    }

    fn conv() -> Pmf {
        let f = Pmf::from_sorted(vec![(0, 0.5), (2, 0.5)]);
        let g = Pmf::from_sorted(vec![(1, 0.6), (4, 0.4)]);
        convolve_window_pmf(&f, &g, 3, 0, 100)
    }

    #[test]
    fn hit_returns_identical_pmf_without_recompute() {
        let mut c = ConvCache::with_enabled(2, true);
        let mut computes = 0;
        let first = c
            .get_or_compute(0, key(1, 1), || {
                computes += 1;
                conv()
            })
            .clone();
        let second = c
            .get_or_compute(0, key(1, 1), || {
                computes += 1;
                conv()
            })
            .clone();
        assert_eq!(computes, 1);
        assert!(first.bits_eq(&second));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn version_bump_invalidates() {
        let mut c = ConvCache::with_enabled(1, true);
        c.get_or_compute(0, key(1, 1), conv);
        c.get_or_compute(0, key(2, 1), conv);
        c.get_or_compute(0, key(2, 2), conv);
        assert_eq!((c.hits(), c.misses()), (0, 3));
    }

    #[test]
    fn window_change_invalidates() {
        let mut c = ConvCache::with_enabled(1, true);
        c.get_or_compute(0, key(1, 1), conv);
        let wider = ConvKey {
            hi: 200,
            ..key(1, 1)
        };
        c.get_or_compute(0, wider, conv);
        assert_eq!((c.hits(), c.misses()), (0, 2));
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let mut c = ConvCache::with_enabled(1, false);
        let mut computes = 0;
        for _ in 0..3 {
            c.get_or_compute(0, key(1, 1), || {
                computes += 1;
                conv()
            });
        }
        assert_eq!(computes, 3);
        assert_eq!((c.hits(), c.misses()), (0, 3));
    }

    #[test]
    fn slots_grow_on_demand() {
        let mut c = ConvCache::with_enabled(0, true);
        c.get_or_compute(5, key(1, 1), conv);
        c.get_or_compute(5, key(1, 1), conv);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }
}

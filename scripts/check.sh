#!/usr/bin/env bash
# Lint gate: formatting and clippy across the whole workspace, warnings as
# errors. Run before pushing; CI runs the same two commands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (unwrap audit: every library crate) =="
# Estimation, fault-injection, observability, mote-interpreter, numeric
# substrate (convolution cache), pipeline (checkpoint decode, fleet
# ingestion), app corpus, NLC front end, the sharded estimation service,
# and the graph/profiling substrate (CFG, Markov chains, placement,
# profilers) must not panic on data: surface any unwrap()/expect() as
# warnings so reviewers see every remaining site.
cargo clippy -p ct-core -p ct-faults -p ct-obs -p ct-mote -p ct-stats -p ct-pipeline \
    -p ct-apps -p ct-ir -p ct-service \
    -p ct-cfg -p ct-markov -p ct-placement -p ct-profilers \
    --all-targets -- \
    -W clippy::unwrap_used -W clippy::expect_used

echo "== cargo doc (deny warnings) =="
# ct-pipeline carries #![deny(missing_docs)]; keep the whole workspace's
# rustdoc clean (broken intra-doc links, missing docs) as well. The vendored
# dependency shims (rand, proptest, criterion) are not ours to document.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet \
    --exclude rand --exclude proptest --exclude criterion

echo "== merge property tests (streaming ingestion fast path) =="
cargo test --release -p ct-pipeline --test merge_props --quiet

echo "== e13 smoke sweep (fault-injection pipeline end to end) =="
cargo build --release -p ct-bench --bin e13_faults
E13_SMOKE=1 ./target/release/e13_faults > /dev/null

echo "== e17 smoke sweep (per-rung estimator race incl. the GNT backend) =="
# e17 enforces its own claims by exit status on the full grid; the smoke
# run still exercises every rung (EM, trimmed EM, GNT, moments, prior)
# plus both ladder variants end to end.
cargo build --release -p ct-bench --bin e17_estimators
CT_SMOKE=1 ./target/release/e17_estimators > /dev/null

echo "== e15 smoke grid (chaos harness: crash/duplicate/straggler recovery) =="
# e15 enforces its own claims by exit status: checkpoint-cycled recovery is
# bitwise exact, duplicates never change results, >= 80% coverage stays
# within tolerance of full coverage.
cargo build --release -p ct-bench --bin e15_chaos
# The injected mote crashes must also cut a flight-recorder incident dump
# (reason mote_crash) when the recorder is on.
rm -f results/e15_chaos.flight.jsonl
CT_SMOKE=1 CT_FLIGHT_RECORDER=1 ./target/release/e15_chaos > /dev/null
test -s results/e15_chaos.flight.jsonl
grep -q '"reason":"mote_crash"' results/e15_chaos.flight.jsonl
rm -f results/e15_chaos.flight.jsonl

echo "== checkpoint round-trip smoke (snapshot -> corrupt -> typed rejection) =="
cargo build --release -p ct-bench --bin ckpt_smoke
./target/release/ckpt_smoke > /dev/null

echo "== flight recorder smoke (checksum rejection cuts an incident dump) =="
# With CT_FLIGHT_RECORDER on, the corrupt-snapshot rejection inside
# ckpt_smoke must cut results/ckpt_smoke.flight.jsonl: schema-valid JSONL
# whose ring tail contains the warn.ckpt_rejected event (the binary
# self-asserts both; we re-check the file exists and clean it up).
rm -f results/ckpt_smoke.flight.jsonl
CT_FLIGHT_RECORDER=1 ./target/release/ckpt_smoke > /dev/null
test -s results/ckpt_smoke.flight.jsonl
grep -q 'warn.ckpt_rejected' results/ckpt_smoke.flight.jsonl
rm -f results/ckpt_smoke.flight.jsonl

echo "== bench smoke (fast-mode kernels + BENCH_fb.json trajectory gate) =="
# The convolution kernels must run clean at tiny budgets, the trajectory
# must parse with the bench_fb/2 schema, and the newest recorded
# estimators/em mean must stay within 15% of the best recorded run.
cargo build --release -p ct-bench --bin bench_guard
# Capture before grepping: `grep -q` exits at first match and the resulting
# SIGPIPE aborts the still-printing bench under pipefail.
pmf_out=$(CT_BENCH_WARMUP_MS=20 CT_BENCH_MEASURE_MS=50 \
    cargo bench -p ct-bench --bench pmf 2>&1)
grep -q '^bench: pmf/convolve-soa' <<< "$pmf_out"
./target/release/bench_guard validate BENCH_fb.json
./target/release/bench_guard check BENCH_fb.json

echo "== BENCH_ingest.json trajectory gate (service/ingest) =="
# The service ingest trajectory (appended by scripts/bench_ingest.sh) must
# parse with the bench_ingest/1 schema and its newest service/ingest mean
# must stay within 15% of the best recorded run.
./target/release/bench_guard validate BENCH_ingest.json
./target/release/bench_guard check BENCH_ingest.json

echo "== trace smoke (observability on == observability off) =="
# A traced e1 run must produce valid JSONL (ct-obs-report parses it) and
# byte-identical stdout versus the untraced run — observer effect zero.
cargo build --release -p ct-bench --bin e1_accuracy
cargo build --release -p ct-obs --bin ct-obs-report
trace_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir"' EXIT
CT_SMOKE=1 ./target/release/e1_accuracy > "$trace_dir/plain.out" 2> /dev/null
CT_SMOKE=1 CT_TRACE_JSON="$trace_dir/trace.jsonl" \
    ./target/release/e1_accuracy > "$trace_dir/traced.out" 2> /dev/null
diff "$trace_dir/plain.out" "$trace_dir/traced.out"
./target/release/ct-obs-report "$trace_dir/trace.jsonl" > /dev/null

echo "== PMU golden smoke (counters thread-insensitive, e4 gate holds) =="
# e4 enforces measured-after <= measured-before itself (exit 1 on any
# regression); running it twice at different thread counts and diffing the
# manifests pins the virtual PMU's determinism contract end to end.
cargo build --release -p ct-bench --bin e4_placement
cargo build --release -p ct-obs --bin ct-obs-diff
CT_SMOKE=1 CT_THREADS=1 CT_MANIFEST="$trace_dir/e4_t1.json" \
    ./target/release/e4_placement > /dev/null 2> /dev/null
CT_SMOKE=1 CT_THREADS=4 CT_MANIFEST="$trace_dir/e4_t4.json" \
    ./target/release/e4_placement > /dev/null 2> /dev/null
./target/release/ct-obs-diff "$trace_dir/e4_t1.json" "$trace_dir/e4_t4.json"

echo "== e16 smoke (sharded service: bitwise vs monolithic, backpressure) =="
# e16 enforces its own claims by exit status: every shard count serves the
# monolithic reference bitwise, dedup drops every duplicate, and the
# forced-backpressure cell blocks without deadlock or loss. Running it at
# two thread counts and diffing the manifests pins the service's
# determinism contract (volatile svc.* load metrics diff as notes only).
cargo build --release -p ct-bench --bin e16_fleet_scale
CT_SMOKE=1 CT_THREADS=1 CT_MANIFEST="$trace_dir/e16_t1.json" \
    ./target/release/e16_fleet_scale > /dev/null 2> /dev/null
CT_SMOKE=1 CT_THREADS=4 CT_MANIFEST="$trace_dir/e16_t4.json" \
    ./target/release/e16_fleet_scale > /dev/null 2> /dev/null
./target/release/ct-obs-diff "$trace_dir/e16_t1.json" "$trace_dir/e16_t4.json"

echo "== ct-obs-top (service breakdown renders from a fresh e16 manifest) =="
cargo build --release -p ct-obs --bin ct-obs-top
./target/release/ct-obs-top "$trace_dir/e16_t4.json" > /dev/null

echo "== e18 smoke (telemetry on == off bitwise, overhead gate, flight dump) =="
# e18 enforces its own claims by exit status: telemetry-on serves bitwise
# the telemetry-off and monolithic estimates, best-of-N overhead stays
# under the bound, latency histograms are populated, and the Dump verb +
# metrics pump emit schema-valid JSONL. Diffing two thread counts extends
# the determinism contract to the new histogram manifest section
# (volatile *_ns / queue_depth histograms diff as notes only).
cargo build --release -p ct-bench --bin e18_telemetry
CT_SMOKE=1 CT_THREADS=1 CT_MANIFEST="$trace_dir/e18_t1.json" \
    ./target/release/e18_telemetry > /dev/null 2> /dev/null
CT_SMOKE=1 CT_THREADS=4 CT_MANIFEST="$trace_dir/e18_t4.json" \
    ./target/release/e18_telemetry > /dev/null 2> /dev/null
./target/release/ct-obs-diff "$trace_dir/e18_t1.json" "$trace_dir/e18_t4.json"
./target/release/ct-obs-top "$trace_dir/e18_t4.json" > /dev/null

echo "== ct-obs-diff self-test (must flag a known-divergent pair) =="
sed 's/"pmu.cycles": \([0-9]*\)/"pmu.cycles": 1/' "$trace_dir/e4_t1.json" \
    > "$trace_dir/e4_bad.json"
if ./target/release/ct-obs-diff "$trace_dir/e4_t1.json" "$trace_dir/e4_bad.json" \
    > /dev/null; then
    echo "ct-obs-diff failed to flag a divergent manifest" >&2
    exit 1
fi

echo "== OK =="

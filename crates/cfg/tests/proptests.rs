//! Property-based tests over CFG analyses using randomly generated
//! structured graphs.

use ct_cfg::builder::{diamond_chain, linear};
use ct_cfg::dominators::Dominators;
use ct_cfg::graph::{BlockId, Cfg, Terminator};
use ct_cfg::layout::{Layout, PenaltyModel};
use ct_cfg::loops::{is_reducible, LoopForest};
use ct_cfg::paths::{count_paths, enumerate_paths};
use ct_cfg::profile::EdgeProfile;
use ct_cfg::structure::decompose;
use proptest::prelude::*;

/// Generates a random structured CFG by interpreting a byte script as nested
/// if/while constructs (mirrors NLC lowering shapes).
fn structured_cfg(script: &[u8]) -> Cfg {
    #[derive(Clone, Copy)]
    enum Item {
        Straight,
        IfElse,
        Loop,
    }
    let items: Vec<Item> = script
        .iter()
        .map(|b| match b % 3 {
            0 => Item::Straight,
            1 => Item::IfElse,
            _ => Item::Loop,
        })
        .collect();

    let mut cfg = Cfg::new("generated");
    let entry = cfg.add_block("entry", Terminator::Return);
    let mut cur = entry;
    for (i, item) in items.iter().enumerate() {
        match item {
            Item::Straight => {
                let b = cfg.add_block(format!("s{i}"), Terminator::Return);
                cfg.set_terminator(cur, Terminator::Jump(b));
                cur = b;
            }
            Item::IfElse => {
                let join = cfg.add_block(format!("join{i}"), Terminator::Return);
                let t = cfg.add_block(format!("then{i}"), Terminator::Jump(join));
                let e = cfg.add_block(format!("else{i}"), Terminator::Jump(join));
                cfg.set_terminator(
                    cur,
                    Terminator::Branch {
                        on_true: t,
                        on_false: e,
                    },
                );
                cur = join;
            }
            Item::Loop => {
                let header = cfg.add_block(format!("head{i}"), Terminator::Return);
                let body = cfg.add_block(format!("body{i}"), Terminator::Jump(header));
                let exit = cfg.add_block(format!("exit{i}"), Terminator::Return);
                cfg.set_terminator(cur, Terminator::Jump(header));
                cfg.set_terminator(
                    header,
                    Terminator::Branch {
                        on_true: body,
                        on_false: exit,
                    },
                );
                cur = exit;
            }
        }
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated structured graphs validate, are reducible, and decompose.
    #[test]
    fn structured_graphs_decompose(script in proptest::collection::vec(0u8..=255, 0..12)) {
        let cfg = structured_cfg(&script);
        prop_assert!(cfg.validate().is_ok());
        prop_assert!(is_reducible(&cfg));
        prop_assert!(decompose(&cfg).is_ok());
    }

    /// The dominator of every block's predecessors set includes the idom.
    #[test]
    fn idom_dominates_block(script in proptest::collection::vec(0u8..=255, 0..10)) {
        let cfg = structured_cfg(&script);
        let dom = Dominators::compute(&cfg);
        for b in cfg.block_ids() {
            if let Some(d) = dom.idom(b) {
                prop_assert!(dom.dominates(d, b));
            }
        }
    }

    /// Loop headers dominate their bodies; depth never exceeds loop count.
    #[test]
    fn loop_invariants(script in proptest::collection::vec(0u8..=255, 0..10)) {
        let cfg = structured_cfg(&script);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg);
        for l in forest.loops() {
            for &b in &l.body {
                prop_assert!(dom.dominates(l.header, b));
            }
        }
        for b in cfg.block_ids() {
            prop_assert!(forest.depth_of(b) <= forest.len());
        }
    }

    /// Path enumeration agrees with path counting on DAGs.
    #[test]
    fn path_count_consistency(k in 1usize..8) {
        let cfg = diamond_chain(k);
        let n = count_paths(&cfg);
        let paths = enumerate_paths(&cfg, 1 << 12).unwrap();
        prop_assert_eq!(paths.len() as u64, n);
    }

    /// Any valid layout's evaluated branch executions partition the total:
    /// taken + not-taken = all conditional traversals.
    #[test]
    fn layout_cost_partitions_branches(
        counts in proptest::collection::vec(0u64..1000, 4),
        swap in any::<bool>(),
    ) {
        let cfg = ct_cfg::builder::diamond();
        // Make the counts flow-consistent: then/else arm counts mirror the
        // branch edges.
        let prof = EdgeProfile::from_counts(&cfg, vec![counts[0], counts[1], counts[0], counts[1]]);
        let layout = if swap {
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(2), BlockId(1), BlockId(3)]).unwrap()
        } else {
            Layout::natural(&cfg)
        };
        let cost = layout.evaluate(&cfg, &prof, &PenaltyModel::avr());
        prop_assert_eq!(cost.branches_taken + cost.branches_not_taken, counts[0] + counts[1]);
    }

    /// Linear graphs always have exactly one path and zero layout cost in
    /// natural order.
    #[test]
    fn linear_is_free(n in 1usize..30) {
        let cfg = linear(n);
        prop_assert_eq!(count_paths(&cfg), 1);
        let counts = vec![1u64; cfg.edges().len()];
        let prof = EdgeProfile::from_counts(&cfg, counts);
        let cost = Layout::natural(&cfg).evaluate(&cfg, &prof, &PenaltyModel::avr());
        prop_assert_eq!(cost.extra_cycles, 0);
    }
}

#!/usr/bin/env bash
# Benchmarks the inference engine and appends one timestamped run to the
# BENCH_fb.json trajectory at the repo root.
#
# BENCH_fb.json is an append-only history (schema bench_fb/2, maintained by
# the ct-bench `bench_guard` tool): every run of this script adds an entry,
# and scripts/check.sh fails when the newest `estimators/em` mean regresses
# >15% against the best recorded run. Legacy single-snapshot files are
# migrated into the first history entry automatically.
#
# Runs the estimator, convolution-kernel, and mote-simulator Criterion
# suites plus a wall-clock timing of the full e1_accuracy sweep — the
# end-to-end number the estimation hot path is judged by. CT_THREADS is
# recorded so single-core vs parallel runs are distinguishable.
#
# Usage: scripts/bench_fb.sh            # defaults
#        CT_THREADS=1 scripts/bench_fb.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_fb.json
THREADS="${CT_THREADS:-$(nproc 2>/dev/null || echo 1)}"

# Keep the microbench budgets modest; override via env for longer runs.
export CT_BENCH_WARMUP_MS="${CT_BENCH_WARMUP_MS:-200}"
export CT_BENCH_MEASURE_MS="${CT_BENCH_MEASURE_MS:-500}"

echo "== building (release) =="
cargo build --release -p ct-bench >/dev/null

bench_lines=""
for suite in estimators pmf mote_sim; do
    echo "== cargo bench: $suite =="
    # The vendored criterion shim prints: "bench: <label> ... <mean_ns> ns/iter (<N> iters)"
    out=$(cargo bench -p ct-bench --bench "$suite" 2>&1 | grep '^bench:' || true)
    echo "$out"
    bench_lines+="$out"$'\n'
done

echo "== timing e1_accuracy (full sweep) =="
start_ns=$(date +%s%N)
cargo run --release -q -p ct-bench --bin e1_accuracy >/dev/null
end_ns=$(date +%s%N)
e1_ms=$(( (end_ns - start_ns) / 1000000 ))
echo "e1_accuracy: ${e1_ms} ms (CT_THREADS=${THREADS})"

echo "== appending to $OUT trajectory =="
printf '%s' "$bench_lines" | \
    ./target/release/bench_guard append "$OUT" "$THREADS" "$e1_ms"
./target/release/bench_guard validate "$OUT"
./target/release/bench_guard check "$OUT"

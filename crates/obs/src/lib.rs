//! Observability for Code Tomography: spans, counters, a trace event
//! stream, and per-run manifests.
//!
//! The crate is dependency-free and built around one discipline: every
//! aggregate merges commutatively and associatively (the `SuffStats`
//! rule), so the *content* a run records is identical at any `CT_THREADS`
//! — only wall/CPU timing values differ. See [`recorder`] for the full
//! determinism contract.
//!
//! Quick tour:
//!
//! ```
//! use ct_obs::{Counter, Span};
//!
//! {
//!     let _stage = Span::enter("stage.estimate");
//!     Counter::new("em.restarts").incr();
//!     ct_obs::emit("em.restart", vec![("restart", 0u64.into())]);
//! } // span recorded on drop
//! let snap = ct_obs::snapshot();
//! assert!(snap.spans.iter().any(|(name, _)| name == "stage.estimate"));
//! ```
//!
//! Telemetry v2 adds three pieces on the same discipline: log-bucketed
//! [`hist`] histograms (deterministic merge, p50/p90/p99/max), a [`flight`]
//! recorder (bounded per-thread rings of recent events, dumped on
//! panic/incident for post-mortems), and a [`metrics`] exposition pipeline
//! (periodic JSONL samples plus Prometheus text via `CT_METRICS_PATH`).
//!
//! Sinks: [`flush_env_sinks`] honours `CT_TRACE` (human table on stderr),
//! `CT_TRACE_JSON=path` (JSONL stream), and `CT_METRICS_PATH=path`
//! (Prometheus text exposition); [`write_manifest`] emits the
//! reproducibility manifest written next to results artifacts;
//! the `ct-obs-report` binary folds a JSONL stream into a stage/phase
//! breakdown via [`Report`]; the `ct-obs-diff` binary compares two
//! manifests for deterministic-content agreement via [`diff_manifests`]
//! (the PMU drift gate in check.sh); the `ct-obs-top` binary renders a
//! service-centric percentile breakdown from a manifest.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod event;
pub mod flight;
pub mod hist;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod recorder;
pub mod report;

/// Version of the JSONL/manifest schema emitted by this crate. Bump when
/// the shape of existing lines changes (adding new event kinds is fine).
pub const SCHEMA_VERSION: u64 = 1;

pub use diff::{diff_manifests, DiffReport};
pub use event::{Event, Value, VOLATILE_FIELDS};
pub use hist::{is_volatile_hist_name, HistData};
pub use manifest::{git_rev, write_manifest};
pub use metrics::{render_prometheus, MetricsPump};
pub use recorder::{
    counter_add, drain_thread, emit, flush_env_sinks, hist_record, render_jsonl, render_table,
    reset, set_stream_enabled, snapshot, stream_enabled, write_jsonl, Counter, Gauge, Hist,
    Snapshot, Span, SpanAgg,
};
pub use report::Report;

//! Incremental EM over streaming sufficient statistics.
//!
//! The fleet path delivers samples as [`SuffStats`] deltas — one per radio
//! batch per mote — not as a monolithic vector. Re-running cold EM after
//! every batch would pay the full restart fan-out each time; this module
//! keeps an [`IncrementalEm`] accumulator per estimation target that:
//!
//! - folds each delta into the running [`SuffStats`] (exact, order-insensitive
//!   merge — see [`crate::stream`]);
//! - **warm-starts** each re-estimation from the previous optimum, so EM
//!   converges in a handful of sweeps per batch instead of a full run; and
//! - carries one [`EStepCache`] across batches: the warm start rebuilds the
//!   previous forward/backward tables bitwise, so the edges whose observation
//!   windows did not change turn their windowed convolutions into cache hits.
//!
//! ## Convergence contract
//!
//! Each [`IncrementalEm::reestimate`] call runs full EM (same `EmOptions`,
//! same tolerance) on the statistics of **all** samples ingested so far — the
//! warm start changes the starting point, never the objective, so every
//! per-batch estimate is a genuine EM fixed point (up to `tol`) for its
//! cumulative sample set. The sequence of estimates is deterministic given
//! the batch sequence, independent of `CT_THREADS`, and identical with the
//! convolution cache on or off.

use crate::em::{estimate_em_cached, EmOptions, EmResult};
use crate::fb::{EStepCache, FbError};
use crate::stream::SuffStats;
use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;

/// Streaming EM state for one estimation target (one procedure's CFG).
///
/// Feed batches with [`IncrementalEm::ingest`]; re-estimate at any cadence
/// with [`IncrementalEm::reestimate`].
#[derive(Debug, Clone)]
pub struct IncrementalEm {
    stats: SuffStats,
    last: Option<EmResult>,
    cache: EStepCache,
    opts: EmOptions,
    batches: u64,
}

impl IncrementalEm {
    /// Empty state at `cycles_per_tick` timer resolution.
    pub fn new(cycles_per_tick: u64, opts: EmOptions) -> IncrementalEm {
        IncrementalEm {
            stats: SuffStats::new(cycles_per_tick),
            last: None,
            cache: EStepCache::new(),
            opts,
            batches: 0,
        }
    }

    /// Rebuilds streaming state from a checkpoint: the cumulative
    /// statistics, the estimate the interrupted run last produced (the next
    /// warm start), and the ingested-batch count.
    ///
    /// The convolution cache intentionally starts empty — it is a pure
    /// performance artifact (cache on/off is bitwise identical), so a
    /// restored accumulator's subsequent re-estimations are bitwise
    /// identical to the uninterrupted run's: same statistics, same warm
    /// start, same objective.
    pub fn restore(
        stats: SuffStats,
        last: Option<EmResult>,
        batches: u64,
        opts: EmOptions,
    ) -> IncrementalEm {
        IncrementalEm {
            stats,
            last,
            cache: EStepCache::new(),
            opts,
            batches,
        }
    }

    /// Folds one batch's statistics into the cumulative stream.
    ///
    /// # Errors
    ///
    /// [`FbError::Shape`] when the delta's timer resolution differs from the
    /// accumulator's (incommensurable ticks).
    pub fn ingest(&mut self, delta: &SuffStats) -> Result<(), FbError> {
        self.ingest_counted(delta, 1)
    }

    /// Folds a pre-reduced delta covering `batches` original batches into
    /// the cumulative stream — the reduce-tier entry point. A generation's
    /// tree-reduced shard deltas arrive as one [`SuffStats`], but the batch
    /// count must advance by the number of distinct batches that generation
    /// absorbed, so checkpoint cadence and the `em.incremental` audit trail
    /// stay denominated in batches (deterministic) rather than reduce
    /// rounds (a scheduling artifact). `ingest(delta)` is exactly
    /// `ingest_counted(delta, 1)`.
    ///
    /// # Errors
    ///
    /// [`FbError::Shape`] when the delta's timer resolution differs from the
    /// accumulator's (incommensurable ticks).
    pub fn ingest_counted(&mut self, delta: &SuffStats, batches: u64) -> Result<(), FbError> {
        self.stats
            .merge(delta)
            .map_err(|e| FbError::Shape(e.to_string()))?;
        self.batches += batches;
        Ok(())
    }

    /// Re-estimates over everything ingested so far, warm-starting from the
    /// previous optimum (uniform ½ on the first call).
    ///
    /// Emits one `em.incremental` event per call and bumps the
    /// `em.incremental.batches` counter; cache effectiveness is reported by
    /// the underlying [`estimate_em_cached`] run (`em.cache.*`).
    ///
    /// # Errors
    ///
    /// Propagates [`FbError`] from the dynamic programs.
    pub fn reestimate(
        &mut self,
        cfg: &Cfg,
        block_costs: &[u64],
        edge_costs: &[u64],
    ) -> Result<&EmResult, FbError> {
        let warm = self.last.is_some();
        let init = match &self.last {
            Some(r) => r.probs.clone(),
            None => BranchProbs::uniform(cfg, 0.5),
        };
        let r = estimate_em_cached(
            cfg,
            block_costs,
            edge_costs,
            &self.stats,
            init,
            self.opts,
            &mut self.cache,
        )?;
        ct_obs::Counter::new("em.incremental.batches").incr();
        ct_obs::emit(
            "em.incremental",
            vec![
                ("batches", self.batches.into()),
                (
                    "samples",
                    (crate::samples::DurationSamples::len(&self.stats)).into(),
                ),
                ("iterations", r.iterations.into()),
                ("converged", r.converged.into()),
                ("loglik", r.loglik.into()),
                ("warm", warm.into()),
            ],
        );
        self.last = Some(r);
        // Just assigned above.
        Ok(self.last.as_ref().expect("estimate stored"))
    }

    /// The cumulative statistics of every ingested batch.
    pub fn stats(&self) -> &SuffStats {
        &self.stats
    }

    /// The most recent estimate, if [`IncrementalEm::reestimate`] has run.
    pub fn last(&self) -> Option<&EmResult> {
        self.last.as_ref()
    }

    /// Number of batches ingested.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Convolution-cache hits accumulated across all re-estimations.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Convolution-cache misses accumulated across all re-estimations.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }
}

/// Folds a sequence of [`SuffStats`] batches through an [`IncrementalEm`],
/// re-estimating after every batch, and returns the final estimate.
///
/// This is the batch-granularity streaming path the fleet service uses: the
/// amortized per-batch cost is a few warm EM sweeps plus the cache-missed
/// convolutions, not a cold restart fan-out.
///
/// # Errors
///
/// [`FbError::Shape`] for an empty batch list or mismatched resolutions;
/// otherwise propagates [`FbError`] from the dynamic programs.
pub fn estimate_em_incremental(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    batches: &[SuffStats],
    opts: EmOptions,
) -> Result<EmResult, FbError> {
    let first = batches
        .first()
        .ok_or_else(|| FbError::Shape("no batches to estimate from".into()))?;
    let mut inc = IncrementalEm::new(
        crate::samples::DurationSamples::cycles_per_tick(first),
        opts,
    );
    for b in batches {
        inc.ingest(b)?;
        inc.reestimate(cfg, block_costs, edge_costs)?;
    }
    // The loop ran at least once (batches is non-empty), so `last` is set.
    Ok(inc.last.expect("at least one re-estimation ran"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::estimate_em;
    use crate::samples::TimingSamples;
    use ct_cfg::builder::diamond;

    fn mixture_ticks(n_fast: usize, n_slow: usize) -> Vec<u64> {
        let mut t = vec![115u64; n_fast];
        t.extend(vec![215u64; n_slow]);
        t
    }

    fn batch_of(ticks: &[u64]) -> SuffStats {
        let mut s = SuffStats::new(1);
        for &t in ticks {
            s.push(t);
        }
        s
    }

    #[test]
    fn incremental_matches_monolithic_estimate() {
        let cfg = diamond();
        let bc = [10u64, 100, 200, 5];
        let ec = [0u64; 4];
        let ticks = mixture_ticks(700, 300);
        let batches: Vec<SuffStats> = ticks.chunks(100).map(batch_of).collect();
        let inc = estimate_em_incremental(&cfg, &bc, &ec, &batches, EmOptions::default()).unwrap();
        let mono = estimate_em(
            &cfg,
            &bc,
            &ec,
            &TimingSamples::new(ticks, 1),
            EmOptions::default(),
        )
        .unwrap();
        // Warm starts move the path EM takes, not the optimum it finds.
        assert!(
            (inc.probs.as_slice()[0] - mono.probs.as_slice()[0]).abs() < 1e-3,
            "incremental {} vs monolithic {}",
            inc.probs.as_slice()[0],
            mono.probs.as_slice()[0]
        );
    }

    #[test]
    fn incremental_runs_are_bitwise_reproducible() {
        let cfg = diamond();
        let bc = [10u64, 100, 200, 5];
        let ec = [0u64; 4];
        let ticks = mixture_ticks(90, 60);
        let batches: Vec<SuffStats> = ticks.chunks(30).map(batch_of).collect();
        let a = estimate_em_incremental(&cfg, &bc, &ec, &batches, EmOptions::default()).unwrap();
        let b = estimate_em_incremental(&cfg, &bc, &ec, &batches, EmOptions::default()).unwrap();
        assert_eq!(
            a.probs.as_slice()[0].to_bits(),
            b.probs.as_slice()[0].to_bits()
        );
        assert_eq!(a.loglik.to_bits(), b.loglik.to_bits());
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn warm_reestimation_converges_faster_and_hits_the_cache() {
        let cfg = diamond();
        let bc = [10u64, 100, 200, 5];
        let ec = [0u64; 4];
        let mut inc = IncrementalEm::new(1, EmOptions::default());
        inc.ingest(&batch_of(&mixture_ticks(400, 150))).unwrap();
        let cold_iters = inc.reestimate(&cfg, &bc, &ec).unwrap().iterations;
        // A small delta barely moves the optimum: the warm start lands near
        // the fixed point and the rebuilt tables replay cached convolutions.
        inc.ingest(&batch_of(&mixture_ticks(8, 3))).unwrap();
        let h0 = inc.cache_hits();
        let warm_iters = inc.reestimate(&cfg, &bc, &ec).unwrap().iterations;
        assert!(
            warm_iters <= cold_iters,
            "warm {warm_iters} vs cold {cold_iters}"
        );
        assert!(inc.cache_hits() > h0, "warm re-estimation missed the cache");
        assert_eq!(inc.batches(), 2);
    }

    #[test]
    fn restored_state_reestimates_bitwise_like_the_uninterrupted_run() {
        let cfg = diamond();
        let bc = [10u64, 100, 200, 5];
        let ec = [0u64; 4];
        let batches: Vec<SuffStats> = [
            mixture_ticks(80, 40),
            mixture_ticks(50, 70),
            mixture_ticks(90, 20),
        ]
        .iter()
        .map(|t| batch_of(t))
        .collect();

        // Uninterrupted: ingest+reestimate all three batches.
        let mut full = IncrementalEm::new(1, EmOptions::default());
        for b in &batches {
            full.ingest(b).unwrap();
            full.reestimate(&cfg, &bc, &ec).unwrap();
        }

        // Interrupted after batch 2, state carried over, batch 3 resumed.
        let mut head = IncrementalEm::new(1, EmOptions::default());
        for b in &batches[..2] {
            head.ingest(b).unwrap();
            head.reestimate(&cfg, &bc, &ec).unwrap();
        }
        let mut resumed = IncrementalEm::restore(
            head.stats().clone(),
            head.last().cloned(),
            head.batches(),
            EmOptions::default(),
        );
        resumed.ingest(&batches[2]).unwrap();
        resumed.reestimate(&cfg, &bc, &ec).unwrap();

        assert_eq!(resumed.batches(), full.batches());
        assert_eq!(resumed.stats(), full.stats());
        let (a, b) = (resumed.last().unwrap(), full.last().unwrap());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.loglik.to_bits(), b.loglik.to_bits());
        for (x, y) in a.probs.as_slice().iter().zip(b.probs.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn counted_ingest_of_a_reduced_delta_matches_per_batch_ingest() {
        let cfg = diamond();
        let bc = [10u64, 100, 200, 5];
        let ec = [0u64; 4];
        let parts: Vec<SuffStats> = [
            mixture_ticks(80, 40),
            mixture_ticks(50, 70),
            mixture_ticks(90, 20),
        ]
        .iter()
        .map(|t| batch_of(t))
        .collect();

        let mut per_batch = IncrementalEm::new(1, EmOptions::default());
        for p in &parts {
            per_batch.ingest(p).unwrap();
        }
        let reduced = SuffStats::tree_reduce(1, parts).unwrap();
        let mut counted = IncrementalEm::new(1, EmOptions::default());
        counted.ingest_counted(&reduced, 3).unwrap();

        assert_eq!(counted.batches(), per_batch.batches());
        assert_eq!(counted.stats(), per_batch.stats());
        let a = counted.reestimate(&cfg, &bc, &ec).unwrap().clone();
        let b = per_batch.reestimate(&cfg, &bc, &ec).unwrap().clone();
        assert_eq!(a.loglik.to_bits(), b.loglik.to_bits());
        for (x, y) in a.probs.as_slice().iter().zip(b.probs.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn rejects_mismatched_resolution_and_empty_batch_list() {
        let cfg = diamond();
        let bc = [10u64, 100, 200, 5];
        let ec = [0u64; 4];
        let mut inc = IncrementalEm::new(1, EmOptions::default());
        assert!(matches!(
            inc.ingest(&SuffStats::new(8)),
            Err(FbError::Shape(_))
        ));
        assert!(matches!(
            estimate_em_incremental(&cfg, &bc, &ec, &[], EmOptions::default()),
            Err(FbError::Shape(_))
        ));
    }
}

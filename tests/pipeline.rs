//! Cross-crate integration tests: the full Code Tomography pipeline from NLC
//! source to measured placement improvement.

use code_tomography::cfg::layout::Layout;
use code_tomography::core::accuracy::compare;
use code_tomography::core::estimator::{estimate, EstimateOptions, Method};
use code_tomography::core::samples::TimingSamples;
use code_tomography::markov;
use code_tomography::mote::cost::{AvrCost, CostModel, Msp430Cost};
use code_tomography::mote::interp::Mote;
use code_tomography::mote::timer::VirtualTimer;
use code_tomography::mote::trace::{GroundTruthProfiler, PairProfiler, TimingProfiler};
use code_tomography::placement::{place_procedure, Strategy};
use ct_ir::instr::ProcId;

/// Profiles `app` and returns (cfg, block costs, edge costs, samples, truth
/// profiler, mote).
fn profile_app(
    name: &str,
    n: usize,
    cpt: u64,
    seed: u64,
) -> (
    code_tomography::apps::App,
    Mote,
    GroundTruthProfiler,
    TimingSamples,
) {
    let app = code_tomography::apps::app_by_name(name).expect("app exists");
    let mut mote = app.boot(Box::new(AvrCost));
    mote.reseed(seed);
    let program = mote.program().clone();
    let pid = app.target_id(&program);
    let timer = VirtualTimer::new(cpt);
    let mut gt = GroundTruthProfiler::new(&program);
    let mut tp = TimingProfiler::new(&program, timer, 0);
    for i in 0..n {
        if let Some(hook) = app.per_call {
            hook(&mut mote, i);
        }
        let mut pair = PairProfiler {
            a: &mut gt,
            b: &mut tp,
        };
        mote.call(pid, &[], &mut pair).expect("app runs");
    }
    let samples = TimingSamples::new(tp.samples(pid).to_vec(), cpt);
    (app, mote, gt, samples)
}

#[test]
fn timing_only_estimation_is_accurate_on_sense() {
    let (app, mote, gt, samples) = profile_app("sense", 3000, 1, 11);
    let pid = app.target_id(mote.program());
    let cfg = &mote.program().procs[pid.index()].cfg;
    let est = estimate(
        cfg,
        mote.static_block_costs(pid),
        mote.static_edge_costs(pid),
        &samples,
        EstimateOptions::default(),
    )
    .unwrap();
    let truth = gt.branch_probs(pid, cfg);
    let acc = compare(cfg, &est.probs, &truth, gt.profile(pid), 3000);
    assert!(acc.weighted_mae < 0.01, "wmae {}", acc.weighted_mae);
    assert_eq!(est.method, Method::Em);
}

#[test]
fn estimation_survives_the_32khz_timer_on_oscilloscope() {
    // Oscilloscope's flush loop dominates durations, so even the coarse
    // crystal identifies the flush probability and loop count.
    let (app, mote, gt, samples) = profile_app("oscilloscope", 3200, 244, 12);
    let pid = app.target_id(mote.program());
    let cfg = &mote.program().procs[pid.index()].cfg;
    let est = estimate(
        cfg,
        mote.static_block_costs(pid),
        mote.static_edge_costs(pid),
        &samples,
        EstimateOptions::default(),
    )
    .unwrap();
    let truth = gt.branch_probs(pid, cfg);
    // The flush branch (first) must be recovered well; the sub-tick send
    // failure branch may not be (that is E2's finding, not a bug).
    let flush_err = (est.probs.as_slice()[0] - truth.as_slice()[0]).abs();
    assert!(flush_err < 0.02, "flush err {flush_err}");
}

#[test]
fn estimated_placement_recovers_most_of_true_placement_gain() {
    let (app, mote, gt, samples) = profile_app("sense", 3000, 8, 13);
    let pid = app.target_id(mote.program());
    let program = mote.program().clone();
    let cfg = program.procs[pid.index()].cfg.clone();
    let est = estimate(
        &cfg,
        mote.static_block_costs(pid),
        mote.static_edge_costs(pid),
        &samples,
        EstimateOptions::default(),
    )
    .unwrap();
    let pen = AvrCost.penalties();

    let freq_est = markov::visits::expected_edge_traversals(&cfg, &est.probs).unwrap();
    let truth = gt.branch_probs(pid, &cfg);
    let freq_true = markov::visits::expected_edge_traversals(&cfg, &truth).unwrap();

    let replay = |layout: Layout| {
        let mut mote = app.boot(Box::new(AvrCost));
        mote.reseed(13);
        mote.set_layout(pid, layout.clone());
        let mut gt = GroundTruthProfiler::new(&program);
        for _ in 0..3000 {
            mote.call(pid, &[], &mut gt).expect("runs");
        }
        layout.evaluate(&cfg, gt.profile(pid), &pen).extra_cycles
    };

    let natural = replay(Layout::natural(&cfg));
    let from_true = replay(place_procedure(&cfg, &freq_true, &pen, Strategy::Best));
    let from_est = replay(place_procedure(&cfg, &freq_est, &pen, Strategy::Best));

    assert!(from_true <= natural, "true-profile placement must not hurt");
    assert!(
        from_est <= natural,
        "estimated-profile placement must not hurt"
    );
    // The estimated profile captures ≥ 90% of the achievable saving.
    let saving_true = natural - from_true;
    let saving_est = natural - from_est;
    if saving_true > 0 {
        assert!(
            saving_est as f64 >= 0.9 * saving_true as f64,
            "captured only {saving_est}/{saving_true}"
        );
    }
}

#[test]
fn ball_larus_equals_ground_truth_on_every_app() {
    use ct_profilers::ball_larus::BallLarusProfiler;
    for app in code_tomography::apps::all_apps() {
        let mut mote = app.boot(Box::new(AvrCost));
        mote.reseed(14);
        let program = mote.program().clone();
        let pid = app.target_id(&program);
        let mut gt = GroundTruthProfiler::new(&program);
        let mut bl = BallLarusProfiler::new(&program);
        for i in 0..150 {
            if let Some(hook) = app.per_call {
                hook(&mut mote, i);
            }
            let mut pair = PairProfiler {
                a: &mut gt,
                b: &mut bl,
            };
            mote.call(pid, &[], &mut pair).expect("runs");
        }
        let cfg = &program.procs[pid.index()].cfg;
        if let Some(profile) = bl.edge_profile(pid, cfg) {
            assert_eq!(
                profile.counts(),
                gt.profile(pid).counts(),
                "Ball-Larus disagrees with ground truth on {}",
                app.name
            );
        }
    }
}

#[test]
fn expected_visits_match_observed_frequencies() {
    // Markov theory vs simulation: expected visit counts from the true
    // branch probabilities must match observed per-invocation averages.
    let (app, mote, gt, _) = profile_app("blink", 4000, 1, 15);
    let pid = app.target_id(mote.program());
    let cfg = &mote.program().procs[pid.index()].cfg;
    let truth = gt.branch_probs(pid, cfg);
    let expected = markov::visits::expected_visits(cfg, &truth).unwrap();
    let observed = gt.profile(pid).block_visits(cfg, 4000);
    for (b, (&e, &o)) in expected.iter().zip(&observed).enumerate() {
        let per_call = o as f64 / 4000.0;
        assert!(
            (e - per_call).abs() < 0.05,
            "block {b}: expected {e}, observed {per_call}"
        );
    }
}

#[test]
fn msp430_model_pipeline_works_too() {
    let app = code_tomography::apps::app_by_name("sense").unwrap();
    let mut mote = app.boot(Box::new(Msp430Cost));
    mote.reseed(16);
    let program = mote.program().clone();
    let pid = app.target_id(&program);
    let mut gt = GroundTruthProfiler::new(&program);
    let mut tp = TimingProfiler::new(&program, VirtualTimer::cycle_accurate(), 0);
    for _ in 0..2000 {
        let mut pair = PairProfiler {
            a: &mut gt,
            b: &mut tp,
        };
        mote.call(pid, &[], &mut pair).unwrap();
    }
    let cfg = &program.procs[pid.index()].cfg;
    let samples = TimingSamples::new(tp.samples(pid).to_vec(), 1);
    let est = estimate(
        cfg,
        mote.static_block_costs(pid),
        mote.static_edge_costs(pid),
        &samples,
        EstimateOptions::default(),
    )
    .unwrap();
    let truth = gt.branch_probs(pid, cfg);
    let acc = compare(cfg, &est.probs, &truth, gt.profile(pid), 2000);
    assert!(acc.weighted_mae < 0.01, "wmae {}", acc.weighted_mae);
}

#[test]
fn estimation_is_deterministic_given_samples() {
    let (app, mote, _, samples) = profile_app("event_detect", 1000, 8, 17);
    let pid = app.target_id(mote.program());
    let cfg = &mote.program().procs[pid.index()].cfg;
    let run = || {
        estimate(
            cfg,
            mote.static_block_costs(pid),
            mote.static_edge_costs(pid),
            &samples,
            EstimateOptions::default(),
        )
        .unwrap()
        .probs
    };
    assert_eq!(run(), run());
}

#[test]
fn proc_ids_used_in_tests_are_stable() {
    // Guard against registry reordering silently breaking seeds/expectations.
    let app = code_tomography::apps::app_by_name("sense").unwrap();
    let p = app.compile();
    assert_eq!(app.target_id(&p), ProcId(0));
}

//! E9 — Full pipeline case study (Table): the headline per-app summary.
//!
//! For every benchmark app: estimation accuracy, tomography's runtime
//! overhead vs edge counters, misprediction rate before/after
//! estimated-profile placement, and the end-to-end cycle saving.

use ct_bench::{
    edge_frequencies, estimate_run, f2, f4, penalties, replay_with_layout, run_app,
    run_with_profiler, write_result, Mcu, Table,
};
use ct_cfg::layout::Layout;
use ct_core::estimator::EstimateOptions;
use ct_mote::timer::VirtualTimer;
use ct_mote::trace::{NullProfiler, TimingProfiler};
use ct_placement::{place_procedure, Strategy};
use ct_profilers::edge_counter::EdgeCounterProfiler;
use ct_profilers::overhead::tomography;

fn main() {
    let n = 3_000;
    let mcu = Mcu::Avr;
    let pen = penalties(mcu);
    let seed = 9_900;
    let mut table = Table::new(vec![
        "app",
        "wmae",
        "tomo +%",
        "counters +%",
        "mispred before",
        "mispred after",
        "cycles saved %",
    ]);

    for app in ct_apps::all_apps() {
        // Estimation on the realistic coarse timer.
        let run = run_app(&app, mcu, n, VirtualTimer::mhz1_at_8mhz(), 0, seed);
        let (est, acc) = estimate_run(&run, EstimateOptions::default());
        let cfg = run.cfg().clone();

        // Overheads.
        let program = app.compile();
        let base = run_with_profiler(&app, mcu, n, seed, &mut NullProfiler);
        let mut tp = TimingProfiler::new(
            &program,
            VirtualTimer::khz32_at_8mhz(),
            tomography::TIMESTAMP_CYCLES,
        );
        let tomo = run_with_profiler(&app, mcu, n, seed, &mut tp);
        let mut ec = EdgeCounterProfiler::new(&program);
        let counters = run_with_profiler(&app, mcu, n, seed, &mut ec);
        let pct = |c: u64| (c as f64 - base as f64) / base as f64 * 100.0;

        // Placement from the estimate; replay on identical inputs.
        let freq_est = edge_frequencies(&cfg, &est.probs);
        let optimized = place_procedure(&cfg, &freq_est, &pen, Strategy::Best);
        let (cost_before, cycles_before) =
            replay_with_layout(&app, mcu, Layout::natural(&cfg), n, seed);
        let (cost_after, cycles_after) = replay_with_layout(&app, mcu, optimized, n, seed);
        let saved = (cycles_before as f64 - cycles_after as f64) / cycles_before as f64 * 100.0;

        table.row(vec![
            app.name.to_string(),
            f4(acc.weighted_mae),
            f2(pct(tomo)),
            f2(pct(counters)),
            f4(cost_before.misprediction_rate()),
            f4(cost_after.misprediction_rate()),
            f2(saved),
        ]);
        eprintln!("e9: {} done", app.name);
    }

    let out = format!(
        "# E9 — Full pipeline per app: estimate → place → measure\n\n\
         {n} invocations; 1 MHz measurement timer (tomography overhead measured at 32 kHz); AVR cost model; placement =\n\
         best-of strategies driven by the *estimated* profile; before/after measured\n\
         on identical replayed inputs (seed {seed}).\n\n{}",
        table.to_markdown()
    );
    println!("{out}");
    write_result("e9_pipeline.md", &out);
}

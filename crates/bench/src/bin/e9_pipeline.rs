//! E9 — Full pipeline case study (Table): the headline per-app summary.
//!
//! For every benchmark app: estimation accuracy, tomography's runtime
//! overhead vs edge counters, misprediction rate before/after
//! estimated-profile placement, and the end-to-end cycle saving.

use ct_bench::{f2, f4, write_result, Table};
use ct_cfg::layout::Layout;
use ct_mote::timer::VirtualTimer;
use ct_mote::trace::{NullProfiler, TimingProfiler};
use ct_pipeline::{run_with_profiler, EnvConfig, Mcu, RunConfig, Session};
use ct_placement::Strategy;
use ct_profilers::edge_counter::EdgeCounterProfiler;
use ct_profilers::overhead::tomography;

fn main() {
    let env = EnvConfig::load();
    eprintln!("e9: {}", env.banner());
    let n = env.pick(3_000, 400);
    let mcu = Mcu::Avr;
    let seed = env.seed_or(9_900);
    let mut table = Table::new(vec![
        "app",
        "wmae",
        "tomo +%",
        "counters +%",
        "mispred before",
        "mispred after",
        "cycles saved %",
    ]);

    let apps = ct_apps::all_apps();
    let apps = &apps[..env.pick(apps.len(), 2)];
    for app in apps {
        // Estimation on the realistic coarse timer.
        let session = Session::new(
            RunConfig::for_app(app.clone())
                .on(mcu)
                .invocations(n)
                .resolution(VirtualTimer::mhz1_at_8mhz().cycles_per_tick())
                .seeded(seed),
        );
        let run = session.collect().expect("bundled apps must not trap");
        let est = session.estimate(&run).expect("estimation succeeds");
        let cfg = run.cfg().clone();

        // Overheads.
        let program = app.compile();
        let overhead_config = RunConfig::for_app(app.clone())
            .on(mcu)
            .invocations(n)
            .seeded(seed);
        let replay = |profiler: &mut dyn ct_mote::trace::Profiler| {
            run_with_profiler(&overhead_config, profiler).expect("bundled apps must not trap")
        };
        let base = replay(&mut NullProfiler);
        let mut tp = TimingProfiler::new(
            &program,
            VirtualTimer::khz32_at_8mhz(),
            tomography::TIMESTAMP_CYCLES,
        );
        let tomo = replay(&mut tp);
        let mut ec = EdgeCounterProfiler::new(&program);
        let counters = replay(&mut ec);
        let pct = |c: u64| (c as f64 - base as f64) / base as f64 * 100.0;

        // Placement from the estimate; replay on identical inputs.
        let optimized = session
            .place(&run, &est.estimate.probs, Strategy::Best)
            .expect("estimated profile places");
        let before = session
            .evaluate(&Layout::natural(&cfg))
            .expect("replay must not trap");
        let after = session.evaluate(&optimized).expect("replay must not trap");
        let saved = (before.cycles as f64 - after.cycles as f64) / before.cycles as f64 * 100.0;

        table.row(vec![
            app.name.to_string(),
            f4(est.accuracy.weighted_mae),
            f2(pct(tomo)),
            f2(pct(counters)),
            f4(before.cost.misprediction_rate()),
            f4(after.cost.misprediction_rate()),
            f2(saved),
        ]);
        eprintln!("e9: {} done", app.name);
    }

    let out = format!(
        "# E9 — Full pipeline per app: estimate → place → measure\n\n\
         {n} invocations; 1 MHz measurement timer (tomography overhead measured at 32 kHz); AVR cost model; placement =\n\
         best-of strategies driven by the *estimated* profile; before/after measured\n\
         on identical replayed inputs (seed {seed}).\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e9_pipeline.md", &out);
    }
}

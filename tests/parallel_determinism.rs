//! Parallel estimation must be bit-identical to single-threaded estimation.
//!
//! `par_map` assigns results to input-order slots, so thread count must never
//! change what an estimator returns — only how fast. This test mutates the
//! process-global `CT_THREADS` variable, so it is the ONLY test in this
//! binary (integration tests in one file share a process).

use ct_core::estimator::{estimate, EstimateOptions};
use ct_core::samples::TimingSamples;
use proptest::prelude::*;

fn estimate_with_threads(
    threads: &str,
    cfg: &ct_cfg::graph::Cfg,
    bc: &[u64],
    ec: &[u64],
    samples: &TimingSamples,
) -> (Vec<f64>, Option<u64>, String) {
    std::env::set_var("CT_THREADS", threads);
    let est =
        estimate(cfg, bc, ec, samples, EstimateOptions::default()).expect("estimation succeeds");
    (
        est.probs.as_slice().to_vec(),
        est.loglik.map(f64::to_bits),
        est.method.to_string(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]
    #[test]
    fn thread_count_does_not_change_results(
        p in 0.1f64..0.9,
        q in 0.1f64..0.9,
        n in 60usize..200,
        seed in 0u64..1_000,
    ) {
        // Two-decision diamond chain with exact synthetic samples.
        let (cfg, bc, ec, _) = ct_apps::synthetic::diamond_chain_problem(2, seed);
        let truth = ct_cfg::profile::BranchProbs::from_vec(&cfg, vec![p, q]);
        let chain = ct_markov::chain_from_cfg(&cfg, &truth).expect("valid chain");
        let edges = cfg.edges();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let ticks: Vec<u64> = (0..n)
            .map(|_| {
                let run = ct_markov::sample_run(&chain, cfg.entry().index(), &mut rng, 10_000)
                    .expect("absorbing chain");
                let mut d: u64 = run.iter().map(|&b| bc[b]).sum();
                for w in run.windows(2) {
                    let e = edges
                        .iter()
                        .find(|e| e.from.index() == w[0] && e.to.index() == w[1])
                        .expect("edge exists");
                    d += ec[e.index];
                }
                d
            })
            .collect();
        let samples = TimingSamples::new(ticks, 1);

        let serial = estimate_with_threads("1", &cfg, &bc, &ec, &samples);
        let parallel = estimate_with_threads("4", &cfg, &bc, &ec, &samples);
        std::env::remove_var("CT_THREADS");

        // Bitwise identity, not approximate equality: the reduction order is
        // fixed by input-order slots regardless of scheduling.
        prop_assert_eq!(serial.2, parallel.2, "method changed with thread count");
        prop_assert_eq!(serial.1, parallel.1, "loglik changed with thread count");
        prop_assert_eq!(serial.0.len(), parallel.0.len());
        for (a, b) in serial.0.iter().zip(&parallel.0) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "branch prob changed");
        }
    }
}

#![warn(missing_docs)]

//! Vendored offline shim for the [`rand`](https://crates.io/crates/rand) 0.8
//! API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic reimplementation of exactly the items the code
//! depends on: [`rngs::StdRng`] (an xoshiro256++ generator), the [`Rng`] and
//! [`SeedableRng`] traits (`gen`, `gen_bool`, `gen_range`), and
//! [`seq::SliceRandom::shuffle`]. Streams differ from upstream `rand` — all
//! in-repo consumers only require a seeded, statistically reasonable PRNG,
//! never upstream-identical streams.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words. The base trait [`Rng`] builds on.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Uniform sampling of primitive values — the blanket-implemented user-facing
/// trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly over `T`'s standard range (`[0, 1)` for
    /// floats, the full domain for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`'s standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}

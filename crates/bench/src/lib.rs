#![warn(missing_docs)]

//! # ct-bench
//!
//! The experiment harness regenerating the paper's evaluation: one binary
//! per table/figure (see DESIGN.md's experiment index) plus Criterion
//! microbenchmarks.
//!
//! | binary | experiment |
//! |---|---|
//! | `e1_accuracy` | estimation accuracy vs sample count (Table) |
//! | `e2_resolution` | accuracy vs timer resolution (Figure) |
//! | `e3_overhead` | profiling overhead comparison (Table) |
//! | `e4_placement` | misprediction reduction by layout (Table) |
//! | `e5_speedup` | end-to-end cycle improvement (Figure) |
//! | `e6_noise` | robustness to interrupt contamination (Figure) |
//! | `e7_estimators` | EM vs moments vs flow ablation (Figure) |
//! | `e8_scalability` | estimation cost vs CFG size (Figure) |
//! | `e9_pipeline` | full per-app case study (Table) |
//! | `e10_unroll_ablation` | counted-loop unrolling ablation (Table, extension) |
//! | `e11_model_error` | robustness to block-cost model error (Table, extension) |
//! | `e12_cross_mcu` | cross-MCU pipeline + energy (Table, extension) |
//! | `e13_faults` | naive EM vs degradation ladder under channel faults (Table, extension) |
//! | `e14_incremental` | incremental warm-started EM over SuffStats batches vs cold re-estimation (Table, extension) |
//! | `e15_chaos` | fleet ingestion under injected crash/duplicate/straggler faults (Table, extension) |
//! | `e16_fleet_scale` | sharded estimation service: throughput, backpressure, bitwise determinism (Table, extension) |
//! | `e17_estimators` | per-rung estimator race (EM / trimmed EM / GNT / moments / prior) under channel faults (Table, extension) |
//! | `e18_telemetry` | telemetry v2 overhead + fidelity: histograms, flight recorder, metrics pump (Table, extension) |
//!
//! Each binary drives the typed `ct-pipeline` flow (one seeded
//! [`ct_pipeline::Session`] per measurement cell), prints a markdown table
//! and mirrors it into `results/`. Every binary honors `CT_THREADS`
//! (sweep worker count), `CT_SEED` (workload seed override) and `CT_SMOKE`
//! (tiny grids, no `results/` writes) via
//! [`ct_pipeline::EnvConfig`].
//!
//! ## Example
//!
//! ```
//! use ct_pipeline::{RunConfig, Session};
//!
//! let session = Session::new(
//!     RunConfig::new("sense").invocations(500).resolution(8).seeded(1));
//! let run = session.collect().unwrap();
//! let est = session.estimate(&run).unwrap();
//! assert!(est.accuracy.mae < 0.05);
//! ```

pub mod table;

pub use ct_pipeline::{
    par_sweep, random_layout, run_with_profiler, run_with_profiler_pmu, AppRun, EnvConfig, Mcu,
    RunConfig, Session,
};
pub use table::{f2, f4, write_manifest_env, write_result, Table};

//! E4 — Branch misprediction reduction by code placement (Table).
//!
//! Claim evaluated: placement driven by Code Tomography's *estimated*
//! profile reduces the taken-branch (misprediction) rate close to what the
//! exact profile achieves. Layouts compared on identical replayed inputs.
//!
//! Two measurement paths per layout, printed side by side:
//! - **analytical** — `ExpectedLayoutCost` / `LayoutCost`: truth profile ×
//!   penalty arithmetic (what the optimizer predicts);
//! - **measured** — the mote's virtual PMU counting actual machine branch
//!   outcomes during the replay (what the hardware would report).
//!
//! The run aborts (exit 1) if any non-degenerate app measures *more*
//! mispredictions after estimated-profile placement than before — the
//! paper's headline claim, enforced on counters rather than on the model
//! that produced the layout.

use ct_bench::{f4, write_manifest_env, write_result, Table};
use ct_cfg::layout::{BranchPredictor, Layout};
use ct_mote::timer::VirtualTimer;
use ct_pipeline::{edge_frequencies, penalties, random_layout, EnvConfig, Mcu, RunConfig, Session};
use ct_placement::{expected_cost, Strategy};

fn main() {
    let env = EnvConfig::load();
    eprintln!("e4: {}", env.banner());
    let n = env.pick(3_000, 400);
    let seed = env.seed_or(4_000);
    let mcu = Mcu::Avr;
    let mut table = Table::new(vec![
        "app",
        "natural",
        "random",
        "PH(true)",
        "PH(estimated)",
        "est-vs-true gap",
        "meas before",
        "meas after",
        "pred after",
        "|pred-meas|",
    ]);

    let apps = ct_apps::all_apps();
    let apps = &apps[..env.pick(apps.len(), 2)];
    let mut regressions = Vec::new();
    for app in apps {
        // Profile once on the natural layout with the realistic coarse timer.
        let session = Session::new(
            RunConfig::for_app(app.clone())
                .on(mcu)
                .invocations(n)
                .resolution(VirtualTimer::mhz1_at_8mhz().cycles_per_tick())
                .seeded(seed),
        );
        let run = session.collect().expect("bundled apps must not trap");
        let est = session.estimate(&run).expect("estimation succeeds");
        let cfg = run.cfg().clone();

        // Misprediction guard: Pettis–Hansen chains on edge weight and can
        // trade taken branches for jump cycles; E4 scores the taken-branch
        // rate specifically, so a candidate layout is installed only when
        // the *same profile that produced it* expects materially fewer
        // mispredictions than the natural layout (no ground truth consulted
        // for the estimated column). The margin embodies the flash-rewrite
        // cost argument: moving code wears flash pages, so a sub-5% paper
        // gain — within estimation noise at a 1 MHz timer — never justifies
        // a rewrite. Real placement wins on these apps predict 40%+.
        const MIN_EXPECTED_GAIN: f64 = 0.05;
        let pen = penalties(mcu);
        let guard = |layout: Layout, freq: &[f64]| -> Layout {
            let nat = Layout::natural(&cfg);
            let m_layout = expected_cost(&cfg, &layout, freq, &pen).mispredicted;
            let m_nat = expected_cost(&cfg, &nat, freq, &pen).mispredicted;
            if m_layout < m_nat * (1.0 - MIN_EXPECTED_GAIN) {
                layout
            } else {
                nat
            }
        };
        let freq_est = edge_frequencies(&cfg, &est.estimate.probs).expect("estimated probs solve");
        let freq_true = edge_frequencies(&cfg, &run.truth).expect("true probs solve");
        let ph_est = guard(
            session
                .place(&run, &est.estimate.probs, Strategy::PettisHansen)
                .expect("estimated profile places"),
            &freq_est,
        );
        let layouts: Vec<(&str, Layout)> = vec![
            ("natural", Layout::natural(&cfg)),
            ("random", random_layout(&cfg, 99)),
            (
                "PH(true)",
                guard(
                    session
                        .place(&run, &run.truth, Strategy::PettisHansen)
                        .expect("true profile places"),
                    &freq_true,
                ),
            ),
            ("PH(estimated)", ph_est.clone()),
        ];

        let mut rates = Vec::new();
        let mut measured = Vec::new();
        for (_, layout) in &layouts {
            let evaluated = session.evaluate(layout).expect("replay must not trap");
            rates.push(evaluated.cost.misprediction_rate());
            measured.push(
                evaluated
                    .pmu
                    .proc(run.pid)
                    .misprediction_rate(BranchPredictor::AlwaysNotTaken),
            );
        }
        let gap = rates[3] - rates[2];
        // What the optimizer *predicted* the chosen layout would measure,
        // from the estimated profile alone (no ground truth, no replay).
        let pred_after = expected_cost(&cfg, &ph_est, &freq_est, &pen).misprediction_rate();
        let (meas_before, meas_after) = (measured[0], measured[3]);
        if meas_before > 0.0 && meas_after > meas_before + 1e-9 {
            regressions.push(format!(
                "{}: measured misprediction rate rose {meas_before:.4} -> {meas_after:.4}",
                app.name
            ));
        }
        table.row(vec![
            app.name.to_string(),
            f4(rates[0]),
            f4(rates[1]),
            f4(rates[2]),
            f4(rates[3]),
            f4(gap),
            f4(meas_before),
            f4(meas_after),
            f4(pred_after),
            f4((pred_after - meas_after).abs()),
        ]);
        eprintln!("e4: {} done", app.name);
    }

    let out = format!(
        "# E4 — Misprediction (taken-branch) rate by layout\n\n\
         {n} invocations, identical inputs per layout (seed {seed}); profile taken on the\n\
         natural layout with a 1 MHz timer (see E2 for the resolution sweep); placement =\n\
         Pettis–Hansen behind a misprediction guard (a layout is installed only when the\n\
         profile that produced it expects fewer mispredictions than the natural layout).\n\
         Static predict-not-taken: every taken conditional branch mispredicts.\n\
         `natural`..`est-vs-true gap` are analytical (truth profile x penalty model);\n\
         `meas before`/`meas after` are virtual-PMU counts on the natural and\n\
         PH(estimated) replays; `pred after` is the expected rate the optimizer\n\
         computed from the estimate alone before any replay ran.\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e4_placement.md", &out);
    }
    write_manifest_env("e4_placement");
    if !regressions.is_empty() {
        for r in &regressions {
            eprintln!("e4: REGRESSION {r}");
        }
        std::process::exit(1);
    }
}

//! Sequence helpers: [`SliceRandom`].

use crate::Rng;

/// In-place random permutation of slices (mirrors `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Fisher–Yates shuffles the slice in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

//! Property-based tests: Markov theory against Monte-Carlo simulation.

use ct_cfg::builder::{diamond, while_loop};
use ct_cfg::graph::BlockId;
use ct_cfg::profile::BranchProbs;
use ct_markov::{
    chain_from_cfg, duration_distribution, duration_moments, sample_duration, AbsorbingAnalysis,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Expected visits from the fundamental matrix match simulation.
    #[test]
    fn visits_match_simulation(q in 0.05f64..0.9, seed in 0u64..100) {
        let cfg = while_loop();
        let probs = BranchProbs::from_vec(&cfg, vec![q]);
        let chain = chain_from_cfg(&cfg, &probs).unwrap();
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        let expected = analysis.expected_visits(0, cfg.len());

        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4000;
        let mut totals = vec![0u64; cfg.len()];
        for _ in 0..n {
            let run = ct_markov::sample_run(&chain, 0, &mut rng, 100_000).unwrap();
            for &s in &run {
                totals[s] += 1;
            }
        }
        for b in 0..cfg.len() {
            let sim = totals[b] as f64 / n as f64;
            // Absorbing state visits are counted once in simulation but are
            // not "transient visits"; skip the exit block.
            if b == 3 { continue; }
            let tol = 0.15 * expected[b].max(0.3);
            prop_assert!((sim - expected[b]).abs() < tol,
                "block {b}: sim {sim} vs expected {}", expected[b]);
        }
    }

    /// Duration moments match the exact distribution's moments.
    #[test]
    fn moments_match_distribution(q in 0.05f64..0.8, c_body in 1u64..40) {
        let cfg = while_loop();
        let probs = BranchProbs::from_vec(&cfg, vec![q]);
        let chain = chain_from_cfg(&cfg, &probs).unwrap();
        let costs = [2u64, 3, c_body, 1];
        let rewards: Vec<f64> = costs.iter().map(|&c| c as f64).collect();
        let m = duration_moments(&chain, &rewards, 0).unwrap();
        let d = duration_distribution(&chain, &costs, 0, 1e-12, 1_000_000).unwrap();
        prop_assert!(d.truncated_mass < 1e-6);
        let mean = d.mean();
        prop_assert!((m.mean - mean).abs() < 1e-6 * mean.max(1.0), "{} vs {mean}", m.mean);
        let var: f64 = d.pmf.iter().map(|(&t, &p)| p * (t as f64 - mean).powi(2)).sum();
        prop_assert!((m.variance - var).abs() < 1e-4 * var.max(1.0), "{} vs {var}", m.variance);
    }

    /// Sampled durations live in the exact distribution's support.
    #[test]
    fn samples_in_support(p in 0.1f64..0.9, seed in 0u64..50) {
        let cfg = diamond();
        let probs = BranchProbs::from_vec(&cfg, vec![p]);
        let chain = chain_from_cfg(&cfg, &probs).unwrap();
        let costs = [7u64, 13, 29, 3];
        let d = duration_distribution(&chain, &costs, 0, 1e-12, 10_000).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let s = sample_duration(&chain, &costs, 0, &mut rng, 1000).unwrap();
            prop_assert!(d.pmf.contains_key(&s), "sample {s} outside support");
        }
    }

    /// Absorption probabilities sum to one from every transient start.
    #[test]
    fn absorption_probs_normalize(p in 0.01f64..0.99) {
        let cfg = diamond();
        let probs = BranchProbs::from_vec(&cfg, vec![p]);
        let chain = chain_from_cfg(&cfg, &probs).unwrap();
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        for s in chain.transient_states() {
            let total: f64 = analysis.absorption_probs(s).iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    /// Loop visits scale as 1/(1-q).
    #[test]
    fn loop_visits_geometric(q in 0.05f64..0.95) {
        let cfg = while_loop();
        let probs = BranchProbs::from_vec(&cfg, vec![q]);
        let v = ct_markov::visits::expected_visits(&cfg, &probs).unwrap();
        prop_assert!((v[BlockId(1).index()] - 1.0 / (1.0 - q)).abs() < 1e-6);
    }
}

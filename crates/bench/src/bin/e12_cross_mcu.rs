//! E12 — Cross-MCU generality and energy impact (Table; extension
//! experiment).
//!
//! The estimation machinery consumes only per-block/per-edge costs, so it
//! should work unchanged across MCU calibrations. This experiment runs the
//! full pipeline under both the AVR/MicaZ and MSP430/TelosB models and
//! converts the placement savings into charge (µC), the quantity that
//! actually sizes a mote's battery life.

use ct_bench::{
    edge_frequencies, estimate_run, f2, f4, penalties, replay_with_layout, run_app, write_result,
    Mcu, Table,
};
use ct_cfg::layout::Layout;
use ct_core::estimator::EstimateOptions;
use ct_mote::energy::EnergyModel;
use ct_mote::timer::VirtualTimer;
use ct_placement::{place_procedure, Strategy};

fn main() {
    let n = 3_000;
    let seed = 12_000;
    let mut table = Table::new(vec![
        "app",
        "mcu",
        "wmae",
        "mispred before",
        "mispred after",
        "cycles saved %",
        "charge saved µC",
    ]);

    for app in ct_apps::all_apps() {
        for (mcu, energy) in [
            (Mcu::Avr, EnergyModel::micaz()),
            (Mcu::Msp430, EnergyModel::telosb()),
        ] {
            let run = run_app(&app, mcu, n, VirtualTimer::mhz1_at_8mhz(), 0, seed);
            let (est, acc) = estimate_run(&run, EstimateOptions::default());
            let cfg = run.cfg().clone();
            let pen = penalties(mcu);
            let freq = edge_frequencies(&cfg, &est.probs);
            let optimized = place_procedure(&cfg, &freq, &pen, Strategy::Best);

            let (before, cyc_before) =
                replay_with_layout(&app, mcu, Layout::natural(&cfg), n, seed);
            let (after, cyc_after) = replay_with_layout(&app, mcu, optimized, n, seed);
            let saved_pct = (cyc_before as f64 - cyc_after as f64) / cyc_before as f64 * 100.0;
            // Placement changes CPU cycles only; device activity is identical
            // on replayed inputs, so the charge delta is pure CPU.
            let charge_saved = energy.charge_uc(cyc_before - cyc_after.min(cyc_before), 0, 0);

            table.row(vec![
                app.name.to_string(),
                match mcu {
                    Mcu::Avr => "avr/micaz".to_string(),
                    Mcu::Msp430 => "msp430/telosb".to_string(),
                },
                f4(acc.weighted_mae),
                f4(before.misprediction_rate()),
                f4(after.misprediction_rate()),
                f2(saved_pct),
                f2(charge_saved),
            ]);
        }
        eprintln!("e12: {} done", app.name);
    }

    let out = format!(
        "# E12 — Cross-MCU pipeline: estimation, placement and energy\n\n\
         {n} invocations; 1 MHz measurement timer; placement from the estimated\n\
         profile; identical replayed inputs per layout (seed {seed}). Charge model:\n\
         MicaZ ≈ 1000 µC/Mcycle, TelosB ≈ 250 µC/Mcycle (CPU active).\n\n{}",
        table.to_markdown()
    );
    println!("{out}");
    write_result("e12_cross_mcu.md", &out);
}

//! Flight-recorder gating and dump lifecycle: owns its process so the
//! global enable flag and panic hook cannot race other tests.

use std::path::PathBuf;

#[test]
fn flight_recorder_captures_while_stream_stays_off() {
    // Neither CT_TRACE nor CT_FLIGHT_RECORDER is set in the test
    // environment: emits are dropped entirely.
    ct_obs::emit("flight.before", vec![]);

    // Flight on, stream off: events reach the ring but NOT the registry —
    // the whole point is post-mortem capture without trace overhead in
    // the snapshot/manifest path.
    ct_obs::flight::set_enabled(true);
    ct_obs::emit("flight.captured", vec![("k", 7u64.into())]);
    let snap = ct_obs::snapshot();
    assert!(
        !snap.events.iter().any(|e| e.name == "flight.captured"),
        "flight capture must not leak into the event stream"
    );
    let dump = ct_obs::flight::render_dump("test");
    assert!(dump.contains("flight.captured"));
    assert!(!dump.contains("flight.before"), "pre-enable event captured");

    // Dump file: header first, every line valid JSON, seq/tid tags.
    let dir = std::env::temp_dir().join(format!("ct-flight-{}", std::process::id()));
    let path = dir.join("unit.flight.jsonl");
    ct_obs::flight::dump_to(&path, "unit-test").expect("dump writes");
    let text = std::fs::read_to_string(&path).expect("dump readable");
    let first = text.lines().next().unwrap_or_default();
    assert!(first.contains("\"event\":\"flight.meta\""));
    assert!(first.contains("\"reason\":\"unit-test\""));
    for line in text.lines() {
        ct_obs::json::parse(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
    }
    assert!(text.contains("\"seq\":"));
    assert!(text.contains("\"tid\":"));

    // incident() honours set_run_name and lands under results/.
    ct_obs::flight::set_run_name("flight_unit");
    let expected: PathBuf = PathBuf::from("results").join("flight_unit.flight.jsonl");
    assert_eq!(ct_obs::flight::default_path(), expected);

    // Disabled again: new emits are not captured (ring keeps old events).
    ct_obs::flight::set_enabled(false);
    ct_obs::emit("flight.after", vec![]);
    assert!(!ct_obs::flight::render_dump("x").contains("flight.after"));

    let _ = std::fs::remove_dir_all(&dir);
}

//! EventDetect: exponential smoothing plus hysteresis alarm over a bursty
//! field — the intro-style motivating workload (rare events, state-dependent
//! branches). Branch probabilities here are strongly regime-dependent, which
//! stresses the Markov (i.i.d.) modeling assumption.

use ct_ir::program::Program;
use ct_mote::devices::BurstyAdc;
use ct_mote::interp::Mote;

/// NLC source.
pub const SOURCE: &str = r#"
module EventDetect {
    var smoothed: u16 = 100;
    var armed: bool = true;
    var events: u32;

    proc sample() {
        var v: u16 = read_adc();
        smoothed = (smoothed * 7 + v) / 8;
        if (armed) {
            if (smoothed > 700) {
                events = events + 1;
                armed = false;
                led_set(0, 1);
            } else { }
        } else {
            if (smoothed < 300) {
                armed = true;
                led_set(0, 0);
            } else { }
        }
    }
}
"#;

/// The procedure the experiments profile.
pub const TARGET_PROC: &str = "sample";

/// Compiles the app.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug in this crate).
pub fn program() -> Program {
    ct_ir::compile_source(SOURCE).expect("bundled EventDetect source compiles")
}

/// Standard workload: quiet around 100, bursts to 900–1023.
pub fn configure(mote: &mut Mote) {
    mote.devices.adc = Box::new(BurstyAdc::new((50, 200), (850, 1023), 0.02, 0.05));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_ir::instr::ProcId;
    use ct_mote::cost::AvrCost;
    use ct_mote::trace::NullProfiler;

    #[test]
    fn events_fire_on_bursts() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        for _ in 0..5000 {
            mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        }
        let events = mote.globals.load(p.global_id("events").unwrap());
        assert!(
            events > 3,
            "bursty field should trigger events, got {events}"
        );
        assert!(events < 2500, "events must be rare, got {events}");
    }

    #[test]
    fn hysteresis_disarms_between_events() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        // Constant high field: exactly one event, then stays disarmed.
        mote.devices.adc = Box::new(ct_mote::devices::ConstantAdc(1000));
        for _ in 0..200 {
            mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        }
        assert_eq!(mote.globals.load(p.global_id("events").unwrap()), 1);
        assert_eq!(mote.globals.load(p.global_id("armed").unwrap()), 0);
    }
}

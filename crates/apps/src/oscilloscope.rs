//! Oscilloscope: periodic sampling into a buffer, flushed over the radio
//! when full — the classic TinyOS data-collection app. Exercises a rare
//! branch (the flush, 1/16), a bounded loop (the send loop) and a lossy-radio
//! branch.

use ct_ir::program::Program;
use ct_mote::devices::SineAdc;
use ct_mote::interp::Mote;

/// NLC source.
pub const SOURCE: &str = r#"
module Oscilloscope {
    var buf: u16[16];
    var idx: u16;
    var flushes: u32;
    var send_failures: u32;

    proc sample() {
        buf[idx] = read_adc();
        idx = idx + 1;
        if (idx >= 16) {
            var i: u16 = 0;
            while (i < 16) {
                var ok: bool = send_msg(buf[i]);
                if (!ok) { send_failures = send_failures + 1; } else { }
                i = i + 1;
            }
            flushes = flushes + 1;
            idx = 0;
        } else { }
    }
}
"#;

/// The procedure the experiments profile.
pub const TARGET_PROC: &str = "sample";

/// Compiles the app.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a bug in this crate).
pub fn program() -> Program {
    ct_ir::compile_source(SOURCE).expect("bundled Oscilloscope source compiles")
}

/// Standard workload: a slow sine field; 10% radio loss.
pub fn configure(mote: &mut Mote) {
    mote.devices.adc = Box::new(SineAdc::new(512.0, 300.0, 64.0, 20.0));
    mote.devices.radio.loss_prob = 0.1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_ir::instr::ProcId;
    use ct_mote::cost::AvrCost;
    use ct_mote::trace::{GroundTruthProfiler, NullProfiler};

    #[test]
    fn flushes_every_sixteen_samples() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        for _ in 0..160 {
            mote.call(ProcId(0), &[], &mut NullProfiler).unwrap();
        }
        assert_eq!(mote.globals.load(p.global_id("flushes").unwrap()), 10);
        // 10 flushes × 16 packets, ~10% lost.
        let sent = mote.devices.radio.sent.len() as i64;
        let failed = mote.globals.load(p.global_id("send_failures").unwrap());
        assert_eq!(sent + failed, 160);
        assert!(failed > 0, "lossy radio should drop some packets");
    }

    #[test]
    fn flush_branch_probability_is_one_sixteenth() {
        let p = program();
        let mut mote = Mote::new(p.clone(), Box::new(AvrCost));
        configure(&mut mote);
        let mut gt = GroundTruthProfiler::new(&p);
        for _ in 0..1600 {
            mote.call(ProcId(0), &[], &mut gt).unwrap();
        }
        let cfg = &p.procs[0].cfg;
        let probs = gt.branch_probs(ProcId(0), cfg);
        // The first branch block is the flush condition.
        let flush_p = probs.as_slice()[0];
        assert!((flush_p - 1.0 / 16.0).abs() < 0.01, "{:?}", probs);
    }
}

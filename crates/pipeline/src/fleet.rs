//! The fleet driver: N simulated motes running the same configuration on
//! strided seeds, fanned out over scoped threads, their tick streams
//! reduced to mergeable sufficient statistics.
//!
//! This is the paper's deployment story at scale: every mote ships
//! end-to-end timestamps to a base station, which needs *one* profile of
//! the shared binary. Per-mote streams reduce to
//! [`ct_core::SuffStats`] (associative, commutative merge — any
//! reduction order, any thread count, bitwise the same result) and the
//! estimators run directly off the merged statistics without ever
//! re-materializing the combined sample vector. Ground-truth edge profiles
//! merge additively for scoring.
//!
//! ## Fault tolerance
//!
//! Real collection is lossy and restartable, so the driver treats every
//! mote report as an **at-least-once delivery** of a tagged batch
//! ([`ct_core::BatchTag`]): reports can crash away mid-run
//! (caught at the fan-out boundary and retried, bounded by
//! [`Fleet::attempts`]), be lost in flight (retransmitted), arrive twice
//! under the same tag (deduplicated at every ingest point), or arrive past
//! the straggler timeout (the round proceeds without that mote). Fault
//! injection comes from a seeded [`MoteFaultPlan`]; recovery is graceful —
//! estimation runs on the partial fleet and the estimate's confidence is
//! discounted by coverage, so `place_with_confidence` refuses installation
//! after a badly-degraded round. The streaming path additionally
//! checkpoints its state ([`CheckpointPolicy`]) so a process crash at any
//! batch boundary resumes bitwise-identically.
//!
//! ## Service substrate
//!
//! The streaming path is a thin client of the sharded estimation service:
//! it drives a [`ServiceCore`] pinned to one shard reduced after every
//! batch ([`ServiceConfig::pinned`]), under which the service's
//! ingest → reduce → estimate cycle is bitwise the pre-service
//! per-batch loop. Larger deployments run the identical logic threaded
//! (`ct_service::EstimationService`) with K shards and bounded queues.

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy};
use crate::config::{EstimatorChoice, RunConfig};
use crate::error::PipelineError;
use crate::session::Session;
use crate::stage::{estimate_probs, AppRun, Estimated};
use ct_cfg::graph::{BlockId, Cfg};
use ct_cfg::profile::{BranchProbs, EdgeProfile};
use ct_core::accuracy::compare;
use ct_core::em::EmOptions;
use ct_core::estimator::{estimate_robust, Estimate as CoreEstimate, EstimateError, Method};
use ct_core::samples::DurationSamples;
use ct_core::stream::{BatchTag, SuffStats};
use ct_faults::{MoteFaultOutcome, MoteFaultPlan};
use ct_ir::instr::ProcId;
use ct_ir::program::Program;
use ct_service::{ServiceConfig, ServiceCore};
use std::collections::BTreeSet;

/// Marker payload of a fault-injected worker panic (the
/// [`MoteFaultKind::CrashMidRun`](ct_faults::MoteFaultKind::CrashMidRun)
/// model). The fan-out boundary catches exactly this payload and retries;
/// any other panic is a genuine bug and resumes unwinding.
#[derive(Debug, Clone, Copy)]
pub struct InjectedCrash;

/// Installs a process-wide panic hook that silences [`InjectedCrash`]
/// panics (they are expected, caught, and retried) while forwarding every
/// other panic to the previously installed hook. Idempotent; call once
/// from chaos experiments and tests that inject crashes.
pub fn quiet_injected_crashes() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<InjectedCrash>() {
                return;
            }
            prev(info);
        }));
    });
}

/// One mote's reduced contribution to the fleet profile: everything the
/// base station keeps after ingesting the mote's record stream.
#[derive(Debug, Clone)]
struct MoteContribution {
    stats: SuffStats,
    truth_profile: EdgeProfile,
    invocations: u64,
    cycles_used: u64,
    pmu: ct_mote::pmu::PmuSnapshot,
}

/// What one mote's collection round produced, before the coordinator's
/// order-insensitive fold.
struct MoteReport {
    /// Every delivery that arrived (duplicates repeat the tag).
    deliveries: Vec<(BatchTag, MoteContribution)>,
    /// Attempts that crashed or whose delivery was lost.
    retries: u64,
    /// The response delay that excluded the mote, if it straggled.
    straggler: Option<u64>,
    /// True when the retry budget ran out with nothing delivered.
    failed: bool,
}

/// The merged artifact of a fleet run: static program facts plus the
/// order-insensitively merged measurement and ground-truth state.
#[derive(Debug)]
pub struct FleetRun {
    /// The shared compiled program.
    pub program: Program,
    /// The profiled procedure.
    pub pid: ProcId,
    /// Static block costs of the target (natural layout).
    pub block_costs: Vec<u64>,
    /// Static edge costs of the target (natural layout).
    pub edge_costs: Vec<u64>,
    /// Statically counted loops of the target.
    pub counted_loops: Vec<(BlockId, u64)>,
    /// Merged sufficient statistics of every distinct delivered batch.
    pub stats: SuffStats,
    /// Per-mote statistics of the distinct deliveries, in mote order — the
    /// batch sequence the streaming estimator
    /// ([`Fleet::estimate_streaming`]) re-estimates over. Merging these
    /// left-to-right reproduces [`FleetRun::stats`] bitwise.
    pub mote_stats: Vec<SuffStats>,
    /// The raw at-least-once delivery stream, in mote order, duplicates
    /// included: what actually crossed the transport. Folding it through a
    /// tag-deduplicating ingest reproduces [`FleetRun::stats`] — the
    /// idempotence the streaming path relies on.
    pub deliveries: Vec<(BatchTag, SuffStats)>,
    /// Merged ground-truth edge profile (scoring only).
    pub truth_profile: EdgeProfile,
    /// Ground-truth branch probabilities of the merged profile.
    pub truth: BranchProbs,
    /// Total target invocations across the delivered fleet.
    pub invocations: u64,
    /// Total cycles consumed across the delivered fleet.
    pub cycles_used: u64,
    /// Merged virtual-PMU counters across the delivered fleet (per
    /// procedure and total) — same commutative merge discipline as
    /// [`SuffStats`].
    pub pmu: ct_mote::pmu::PmuSnapshot,
    /// Fleet size (motes asked to report).
    pub motes: usize,
    /// Motes whose report arrived (distinct contributors).
    pub delivered: usize,
    /// Motes excluded by the straggler timeout.
    pub stragglers: usize,
    /// Motes whose retry budget ran out with nothing delivered.
    pub failed: usize,
    /// Total crashed or lost attempts that were retried.
    pub retries: u64,
    /// Duplicate deliveries dropped by the coordinator's dedup.
    pub dedup_dropped: u64,
}

impl FleetRun {
    /// The target procedure's CFG.
    pub fn cfg(&self) -> &Cfg {
        &self.program.procs[self.pid.index()].cfg
    }

    /// Fraction of the fleet whose report arrived, in `[0, 1]` — the
    /// coverage that discounts estimate confidence on degraded rounds.
    pub fn coverage(&self) -> f64 {
        if self.motes == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.motes as f64
    }
}

/// N motes running one configuration on deterministically strided seeds.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: RunConfig,
    motes: usize,
    mote_faults: Option<MoteFaultPlan>,
    max_attempts: u32,
    straggler_timeout: u64,
}

/// Default per-mote delivery attempts before a mote is declared failed.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Default straggler timeout, in the virtual milliseconds of
/// [`MoteFaultOutcome::straggler_delay`]: delays above it exclude the mote
/// from the collection round.
pub const DEFAULT_STRAGGLER_TIMEOUT: u64 = 250;

impl Fleet {
    /// A fleet of `motes` motes under `config`. Mote 0 uses the config's
    /// seed verbatim, so `Fleet::new(config, 1)` reproduces the single-mote
    /// [`Session`] path exactly. No mote-level faults are injected unless
    /// [`Fleet::with_mote_faults`] adds a plan.
    pub fn new(config: RunConfig, motes: usize) -> Fleet {
        Fleet {
            config,
            motes,
            mote_faults: None,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            straggler_timeout: DEFAULT_STRAGGLER_TIMEOUT,
        }
    }

    /// Injects mote-level faults from a seeded plan (builder style).
    pub fn with_mote_faults(mut self, plan: MoteFaultPlan) -> Fleet {
        self.mote_faults = Some(plan);
        self
    }

    /// Sets the per-mote delivery attempt budget (builder style; clamped to
    /// at least one attempt).
    pub fn attempts(mut self, max_attempts: u32) -> Fleet {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Sets the straggler timeout in virtual milliseconds (builder style).
    pub fn straggler_timeout(mut self, timeout: u64) -> Fleet {
        self.straggler_timeout = timeout;
        self
    }

    /// The fleet's base configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The per-mote configuration: strided workload seed, and a strided
    /// fault-plan seed when a fault plan is configured (each mote's record
    /// channel fails independently — but mote 0 keeps the plan verbatim).
    pub fn mote_config(&self, index: usize) -> RunConfig {
        let offset = self.config.mote_seed(index).wrapping_sub(self.config.seed);
        let mut c = self.config.clone().seeded(self.config.mote_seed(index));
        if let Some(plan) = &mut c.fault {
            plan.seed = plan.seed.wrapping_add(offset);
        }
        c
    }

    /// Fingerprint of everything that determines a run's delivered stream:
    /// a checkpoint taken under one configuration must never restore into
    /// another. (This is also why snapshots carry no RNG cursors — every
    /// random draw is a pure function of the fingerprinted seeds.)
    fn fingerprint(&self) -> u64 {
        let c = &self.config;
        let desc = format!(
            "{}|{}|{}|{}|{}|{}|{}|{:?}|{:?}|{:?}|{}|{}",
            c.target.name(),
            c.mcu.name(),
            c.invocations,
            c.cycles_per_tick,
            c.ts_overhead,
            c.seed,
            self.motes,
            c.contamination,
            c.fault,
            self.mote_faults,
            self.max_attempts,
            self.straggler_timeout,
        );
        crate::checkpoint::fnv1a64(desc.as_bytes())
    }

    /// One mote's collection round: bounded retry over fault-injected
    /// attempts. Re-running an attempt replays the identical workload (the
    /// mote's seed does not change across attempts), so a recovered mote
    /// contributes exactly what an unfaulted one would have — faults decide
    /// *whether* a report arrives, never what it says.
    fn collect_mote(&self, index: usize) -> Result<MoteReport, PipelineError> {
        let mut retries = 0u64;
        for attempt in 0..self.max_attempts.max(1) {
            let outcome = match &self.mote_faults {
                Some(plan) => plan.outcome(index as u64, attempt),
                None => MoteFaultOutcome::clean(),
            };
            if outcome.straggler_delay > self.straggler_timeout {
                ct_obs::Counter::new("fleet.straggler").incr();
                ct_obs::emit(
                    "fleet.straggler",
                    vec![
                        ("mote", index.into()),
                        ("delay", outcome.straggler_delay.into()),
                        ("timeout", self.straggler_timeout.into()),
                    ],
                );
                return Ok(MoteReport {
                    deliveries: Vec::new(),
                    retries,
                    straggler: Some(outcome.straggler_delay),
                    failed: false,
                });
            }

            let mote_config = self.mote_config(index);
            let seed = mote_config.seed;
            let crash_mid_run = outcome.crash_mid_run;
            // `RunConfig` is plain owned data (values, fn pointers), so the
            // moved closure is `UnwindSafe` without assertions; a caught
            // unwind drops everything the attempt built and the retry
            // starts from the config alone.
            let attempt_run = std::panic::catch_unwind(move || -> Result<AppRun, PipelineError> {
                let run = Session::new(mote_config).collect()?;
                if crash_mid_run {
                    // Crash *after* the run recorded its observability
                    // events: the unwind path must drain thread-local
                    // buffers exactly like a clean exit.
                    std::panic::panic_any(InjectedCrash);
                }
                Ok(run)
            });
            let run = match attempt_run {
                Ok(Ok(run)) => run,
                // Genuine pipeline failures (workload traps) are
                // deterministic: retrying cannot help, so propagate.
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    if payload.is::<InjectedCrash>() {
                        ct_obs::Counter::new("fleet.retry").incr();
                        // The quiet panic hook swallows injected crashes
                        // before the flight recorder's hook can fire, so
                        // the incident dump is cut here, at the catch site.
                        ct_obs::flight::incident("mote_crash");
                        retries += 1;
                        continue;
                    }
                    std::panic::resume_unwind(payload);
                }
            };
            if outcome.crash_before_report || outcome.lost_delivery {
                ct_obs::Counter::new("fleet.retry").incr();
                retries += 1;
                continue;
            }

            // Delivered. Only order-insensitive facts in the event fields:
            // snapshots sort events by content, so the stream is identical
            // at any CT_THREADS.
            ct_obs::emit(
                "fleet.mote",
                vec![
                    ("mote", index.into()),
                    ("seed", seed.into()),
                    ("samples", run.samples.len().into()),
                    ("invocations", run.invocations.into()),
                    ("cycles_used", run.cycles_used.into()),
                ],
            );
            ct_obs::Counter::new("fleet.motes").incr();
            let contribution = MoteContribution {
                stats: SuffStats::from_samples(&run.samples),
                truth_profile: run.truth_profile,
                invocations: run.invocations,
                cycles_used: run.cycles_used,
                pmu: run.pmu,
            };
            let tag = BatchTag {
                mote: index as u64,
                seq: 0,
            };
            let mut deliveries = vec![(tag, contribution)];
            if outcome.duplicate_delivery {
                // A lost acknowledgement: the same report, same tag, twice.
                deliveries.push(deliveries[0].clone());
            }
            return Ok(MoteReport {
                deliveries,
                retries,
                straggler: None,
                failed: false,
            });
        }
        ct_obs::Counter::new("fleet.failed").incr();
        ct_obs::emit(
            "fleet.mote_failed",
            vec![
                ("mote", index.into()),
                ("attempts", self.max_attempts.into()),
            ],
        );
        Ok(MoteReport {
            deliveries: Vec::new(),
            retries,
            straggler: None,
            failed: true,
        })
    }

    /// Runs every mote (fanned out over scoped threads, `CT_THREADS` to
    /// override the worker count) and merges their contributions. The
    /// merge is a left fold in mote order, but [`SuffStats::merge`] is
    /// associative and commutative, so any other reduction shape would
    /// produce the identical result. Duplicate deliveries are dropped by
    /// tag (`fleet.dedup`), crashed attempts retry (`fleet.retry`), and
    /// stragglers and exhausted motes are excluded — a partial fleet is a
    /// result, not an error.
    ///
    /// # Errors
    ///
    /// [`PipelineError::EmptyFleet`] for a zero-mote fleet;
    /// [`PipelineError::Trap`] if any mote's workload traps.
    pub fn run(&self) -> Result<FleetRun, PipelineError> {
        if self.motes == 0 {
            return Err(PipelineError::EmptyFleet);
        }
        let _span = ct_obs::Span::enter("fleet.run");
        // Static program facts once, from a deploy that never runs.
        let statics = Session::new(self.config.clone().invocations(0)).collect()?;

        let reports: Vec<Result<MoteReport, PipelineError>> =
            ct_stats::parallel::par_map((0..self.motes).collect(), |i| self.collect_mote(i));

        let mut stats = SuffStats::new(self.config.cycles_per_tick);
        let mut mote_stats = Vec::with_capacity(self.motes);
        let mut deliveries = Vec::with_capacity(self.motes);
        let mut truth_profile = EdgeProfile::zeroed(statics.cfg());
        let mut invocations = 0u64;
        let mut cycles_used = 0u64;
        // The zero-invocation statics run gives the right per-procedure
        // shape with every counter at zero — the merge identity.
        let mut pmu = statics.pmu.clone();
        let mut seen: BTreeSet<BatchTag> = BTreeSet::new();
        let (mut delivered, mut stragglers, mut failed) = (0usize, 0usize, 0usize);
        let (mut retries, mut dedup_dropped) = (0u64, 0u64);
        for report in reports {
            let r = report?;
            retries += r.retries;
            stragglers += r.straggler.is_some() as usize;
            failed += r.failed as usize;
            let mut contributed = false;
            for (tag, c) in r.deliveries {
                deliveries.push((tag, c.stats.clone()));
                if !seen.insert(tag) {
                    ct_obs::Counter::new("fleet.dedup").incr();
                    dedup_dropped += 1;
                    continue;
                }
                stats.merge(&c.stats)?;
                mote_stats.push(c.stats);
                truth_profile.merge(&c.truth_profile);
                invocations += c.invocations;
                cycles_used += c.cycles_used;
                pmu.merge(&c.pmu);
                contributed = true;
            }
            delivered += contributed as usize;
        }
        let truth = truth_profile.branch_probs(statics.cfg());
        Ok(FleetRun {
            truth,
            stats,
            mote_stats,
            deliveries,
            truth_profile,
            invocations,
            cycles_used,
            pmu,
            motes: self.motes,
            delivered,
            stragglers,
            failed,
            retries,
            dedup_dropped,
            program: statics.program,
            pid: statics.pid,
            block_costs: statics.block_costs,
            edge_costs: statics.edge_costs,
            counted_loops: statics.counted_loops,
        })
    }

    /// Estimates the fleet's branch profile **from the merged statistics**
    /// — the naive estimators (EM, moments, flow) consume the histogram
    /// and moments directly; only the robust ladder, whose trimming needs
    /// concrete values, materializes a sorted sample vector. The estimate's
    /// confidence is discounted by [`FleetRun::coverage`]: a round that
    /// lost motes to stragglers or exhausted retries reports proportionally
    /// less confidence, and `place_with_confidence` refuses installation
    /// when the discount crosses its threshold.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Estimate`] when the naive estimator fails hard;
    /// [`PipelineError::InvalidSamples`] when the robust ladder cannot
    /// materialize the merged statistics.
    pub fn estimate(&self, fleet_run: &FleetRun) -> Result<Estimated, PipelineError> {
        let cfg = fleet_run.cfg();
        let (estimate, confidence, robust) = match &self.config.estimator {
            EstimatorChoice::Naive(opts) => {
                let est = estimate_probs(
                    cfg,
                    &fleet_run.counted_loops,
                    &fleet_run.block_costs,
                    &fleet_run.edge_costs,
                    &fleet_run.stats,
                    *opts,
                    self.config.unroll_counted,
                )?;
                (est, 1.0, None)
            }
            EstimatorChoice::Robust(opts) => {
                let samples = fleet_run.stats.to_samples()?;
                let r = estimate_robust(
                    cfg,
                    &fleet_run.block_costs,
                    &fleet_run.edge_costs,
                    &samples,
                    *opts,
                );
                (r.estimate.clone(), r.confidence, Some(r))
            }
        };
        let accuracy = compare(
            cfg,
            &estimate.probs,
            &fleet_run.truth,
            &fleet_run.truth_profile,
            fleet_run.invocations,
        );
        Ok(Estimated {
            estimate,
            accuracy,
            confidence: confidence * fleet_run.coverage(),
            robust,
        })
    }

    /// EM controls for the streaming path, from the configured estimator.
    fn em_options(&self) -> EmOptions {
        match &self.config.estimator {
            EstimatorChoice::Naive(o) => o.em,
            EstimatorChoice::Robust(o) => o.base.em,
        }
    }

    /// Records a checkpoint rejection: the typed reason goes to the trace
    /// stream, the counter to the manifest, and the caller falls back to a
    /// clean start — a bad snapshot degrades a restart, never a run. When
    /// the flight recorder is on, the rejection also cuts an incident dump
    /// (the `warn.ckpt_rejected` event lands in the ring first, so it is
    /// in the dump's tail).
    fn reject_checkpoint(e: &CheckpointError) {
        ct_obs::Counter::new("ckpt.rejected").incr();
        ct_obs::emit("warn.ckpt_rejected", vec![("error", e.to_string().into())]);
        ct_obs::flight::incident("ckpt_rejected");
    }

    /// Attempts to restore streaming state from the policy's snapshot into
    /// a pinned [`ServiceCore`]. Returns `None` — after recording
    /// `ckpt.rejected` / a `warn.ckpt_rejected` event where applicable —
    /// when there is no snapshot, it fails to decode, it was taken under a
    /// different configuration, or its contents are internally
    /// inconsistent. The fleet's consistency bar is stricter than the
    /// service's: the per-batch path records one iteration-trail entry per
    /// ledger tag and estimates after every batch, so a snapshot without
    /// that shape cannot have come from this loop.
    fn try_restore(
        &self,
        policy: &CheckpointPolicy,
        cfg: &Cfg,
        fingerprint: u64,
    ) -> Option<(ServiceCore, Vec<usize>)> {
        let path = policy.path.as_ref()?;
        if !path.exists() {
            return None;
        }
        let ck = match Checkpoint::load(path) {
            Ok(ck) => ck,
            Err(e) => {
                Fleet::reject_checkpoint(&e);
                return None;
            }
        };
        if ck.fingerprint != fingerprint {
            Fleet::reject_checkpoint(&CheckpointError::ConfigMismatch {
                expected: fingerprint,
                got: ck.fingerprint,
            });
            return None;
        }
        let consistent = ck.batches == ck.ledger.len() as u64
            && ck.batch_iterations.len() == ck.ledger.len()
            && (ck.batches == 0) == ck.last.is_none()
            && ck.generations == ck.batches
            && DurationSamples::cycles_per_tick(&ck.stats) == self.config.cycles_per_tick;
        if !consistent {
            Fleet::reject_checkpoint(&CheckpointError::Malformed(
                "snapshot sections disagree on batch count or resolution".into(),
            ));
            return None;
        }
        let last = match &ck.last {
            Some(e) => match e.to_em(cfg) {
                Ok(r) => Some(r),
                Err(e) => {
                    Fleet::reject_checkpoint(&e);
                    return None;
                }
            },
            None => None,
        };
        ct_obs::Counter::new("ckpt.restored").incr();
        ct_obs::emit("ckpt.restored", vec![("batches", ck.batches.into())]);
        Some((
            ServiceCore::restore(
                &ServiceConfig::pinned(),
                self.config.cycles_per_tick,
                self.em_options(),
                ck.stats,
                last,
                ck.batches,
                ck.generations,
                ck.ledger,
                ck.cached,
            ),
            ck.batch_iterations,
        ))
    }

    /// Writes a best-effort snapshot: a failed write warns (the
    /// `ckpt.write_failed` counter and a `warn.ckpt_write_failed` event) and
    /// the run continues — losing checkpoint durability must never fail
    /// ingestion.
    fn write_checkpoint(
        policy: &CheckpointPolicy,
        fingerprint: u64,
        core: &ServiceCore,
        batch_iterations: &[usize],
    ) {
        let Some(path) = policy.path.as_ref() else {
            return;
        };
        core.checkpoint(fingerprint, batch_iterations)
            .save_observed(path);
    }

    /// Streaming fleet estimation: feeds each delivered batch (mote order)
    /// into an [`ct_core::IncrementalEm`] and re-estimates after every batch,
    /// warm-starting from the previous optimum with a shared convolution
    /// cache — the fleet-service path, where re-estimation per arriving
    /// batch must cost a few warm sweeps, not a cold restart fan-out. The
    /// final estimate is a full EM fixed point for the merged statistics
    /// (the warm start moves the path, not the objective), and the whole
    /// batch trajectory is deterministic: same batches, same
    /// `CT_THREADS`-independent result, cache on or off.
    ///
    /// This consumes the raw [`FleetRun::deliveries`] stream — duplicates
    /// and all — deduplicating by [`BatchTag`] against a ledger, which is
    /// also what makes checkpoint/restore exact: under `policy`, state is
    /// snapshotted every [`CheckpointPolicy::every`] batches and a
    /// restarted run restores the ledger, skips everything already folded
    /// in, and continues bitwise-identically to the uninterrupted run. A
    /// missing snapshot starts clean; a corrupt, truncated, or
    /// mismatched-configuration snapshot is rejected with a `ckpt.rejected`
    /// counter and a `warn.ckpt_rejected` event and *also* starts clean.
    ///
    /// # Errors
    ///
    /// [`PipelineError::EmptyFleet`] when no batch was ever ingested;
    /// [`PipelineError::Estimate`] when EM fails hard.
    pub fn estimate_streaming_with(
        &self,
        fleet_run: &FleetRun,
        policy: &CheckpointPolicy,
    ) -> Result<FleetStreamReport, PipelineError> {
        let _span = ct_obs::Span::enter("fleet.stream");
        let cfg = fleet_run.cfg();
        let fingerprint = self.fingerprint();
        // One shard, reduced after every batch: the pinned service shape
        // under which ingest → reduce → estimate is bitwise the monolithic
        // per-batch loop.
        let (mut core, mut batch_iterations, restored) =
            match self.try_restore(policy, cfg, fingerprint) {
                Some((core, iterations)) => (core, iterations, true),
                None => (
                    ServiceCore::new(
                        &ServiceConfig::pinned(),
                        self.config.cycles_per_tick,
                        self.em_options(),
                    ),
                    Vec::with_capacity(fleet_run.deliveries.len()),
                    false,
                ),
            };

        let mut ingested_this_run = 0u64;
        let mut halted = false;
        for (tag, delta) in &fleet_run.deliveries {
            let fresh = core
                .ingest(*tag, delta)
                .map_err(|e| PipelineError::from(EstimateError::Em(e)))?;
            if !fresh {
                // Redelivery (a transport duplicate, or a batch the
                // restored ledger already folded in): idempotence says drop.
                ct_obs::Counter::new("fleet.dedup").incr();
                continue;
            }
            core.reduce()
                .map_err(|e| PipelineError::from(EstimateError::Em(e)))?;
            let r = core
                .estimate(cfg, &fleet_run.block_costs, &fleet_run.edge_costs)
                .map_err(|e| PipelineError::from(EstimateError::Em(e)))?;
            batch_iterations.push(r.iterations);
            ingested_this_run += 1;
            if policy.enabled() && core.batches() % policy.every == 0 {
                Fleet::write_checkpoint(policy, fingerprint, &core, &batch_iterations);
            }
            if policy.halt_after == Some(ingested_this_run) {
                halted = true;
                break;
            }
        }

        let r = core.last().cloned().ok_or(PipelineError::EmptyFleet)?;
        let estimate = CoreEstimate {
            probs: r.probs,
            method: Method::Em,
            iterations: batch_iterations.iter().sum(),
            converged: r.converged,
            final_delta: r.final_delta,
            loglik: Some(r.loglik),
            unexplained: r.unexplained,
        };
        let accuracy = compare(
            cfg,
            &estimate.probs,
            &fleet_run.truth,
            &fleet_run.truth_profile,
            fleet_run.invocations,
        );
        ct_obs::emit(
            "fleet.stream",
            vec![
                ("batches", batch_iterations.len().into()),
                ("iterations", batch_iterations.iter().sum::<usize>().into()),
                ("cache_hits", core.cache_hits().into()),
                ("cache_misses", core.cache_misses().into()),
            ],
        );
        Ok(FleetStreamReport {
            batches: batch_iterations.len(),
            batch_iterations,
            cache_hits: core.cache_hits(),
            cache_misses: core.cache_misses(),
            restored,
            halted,
            estimated: Estimated {
                estimate,
                accuracy,
                confidence: fleet_run.coverage(),
                robust: None,
            },
        })
    }

    /// [`Fleet::estimate_streaming_with`] without checkpointing — the
    /// one-shot streaming estimate.
    ///
    /// # Errors
    ///
    /// Propagates [`Fleet::estimate_streaming_with`] errors.
    pub fn estimate_streaming(
        &self,
        fleet_run: &FleetRun,
    ) -> Result<FleetStreamReport, PipelineError> {
        self.estimate_streaming_with(fleet_run, &CheckpointPolicy::disabled())
    }

    /// Runs the fleet and estimates via the streaming per-batch path under
    /// an explicit checkpoint policy.
    ///
    /// # Errors
    ///
    /// Propagates [`Fleet::run`] and [`Fleet::estimate_streaming_with`]
    /// errors.
    pub fn run_streaming_with(
        &self,
        policy: &CheckpointPolicy,
    ) -> Result<(FleetRun, FleetStreamReport), PipelineError> {
        let fleet_run = self.run()?;
        let report = self.estimate_streaming_with(&fleet_run, policy)?;
        Ok((fleet_run, report))
    }

    /// Runs the fleet and estimates via the streaming per-batch path — the
    /// default entry point for the fleet-scale service loop (use
    /// [`Fleet::run`] + [`Fleet::estimate`] for the one-shot merged-stats
    /// estimate, which is pinned bitwise to the monolithic front door).
    /// Checkpointing follows the process environment:
    /// `CT_CHECKPOINT_PATH` / `CT_CHECKPOINT_EVERY`
    /// (see [`CheckpointPolicy::from_env`]).
    ///
    /// # Errors
    ///
    /// Propagates [`Fleet::run`] and [`Fleet::estimate_streaming_with`]
    /// errors.
    pub fn run_streaming(&self) -> Result<(FleetRun, FleetStreamReport), PipelineError> {
        self.run_streaming_with(&CheckpointPolicy::from_env())
    }
}

/// The outcome of streaming per-batch re-estimation over a fleet run.
#[derive(Debug)]
pub struct FleetStreamReport {
    /// The final scored estimate (after the last batch), its confidence
    /// discounted by fleet coverage.
    pub estimated: Estimated,
    /// Distinct batches ingested across restored and live state.
    pub batches: usize,
    /// EM iterations each per-batch re-estimation took — the amortization
    /// story: after the first batch these should be a handful, not a full
    /// cold run.
    pub batch_iterations: Vec<usize>,
    /// Convolution-cache hits across this process's re-estimations.
    pub cache_hits: u64,
    /// Convolution-cache misses across this process's re-estimations.
    pub cache_misses: u64,
    /// True when state was restored from a checkpoint.
    pub restored: bool,
    /// True when the run stopped at [`CheckpointPolicy::halt_after`]
    /// (simulated crash) instead of draining every delivery.
    pub halted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::samples::DurationSamples;
    use ct_faults::MoteFaultKind;

    #[test]
    fn zero_motes_is_an_error() {
        let fleet = Fleet::new(RunConfig::new("sense").invocations(10), 0);
        assert_eq!(fleet.run().unwrap_err(), PipelineError::EmptyFleet);
    }

    #[test]
    fn one_mote_fleet_equals_the_single_mote_path() {
        let config = RunConfig::new("sense").invocations(300).seeded(42);
        let single = Session::new(config.clone()).collect().unwrap();
        let fleet_run = Fleet::new(config, 1).run().unwrap();
        assert_eq!(fleet_run.stats, SuffStats::from_samples(&single.samples));
        assert_eq!(fleet_run.truth_profile, single.truth_profile);
        assert_eq!(fleet_run.invocations, single.invocations);
        assert_eq!(fleet_run.cycles_used, single.cycles_used);
        assert_eq!(fleet_run.pmu, single.pmu);
        assert_eq!(fleet_run.delivered, 1);
        assert_eq!(fleet_run.coverage(), 1.0);
        assert_eq!(fleet_run.retries, 0);
        assert_eq!(fleet_run.dedup_dropped, 0);
    }

    #[test]
    fn fleet_motes_observe_distinct_workloads() {
        let config = RunConfig::new("sense").invocations(200).seeded(7);
        let fr = Fleet::new(config.clone(), 3).run().unwrap();
        assert_eq!(fr.motes, 3);
        assert_eq!(fr.invocations, 600);
        assert_eq!(fr.stats.len(), 600);
        assert_eq!(
            fr.pmu.proc(fr.pid).calls,
            600,
            "merged PMU counts one activation per invocation"
        );
        // Three motes on strided seeds are not three copies of one mote.
        let single = Session::new(config).collect().unwrap();
        let mut tripled = SuffStats::from_samples(&single.samples);
        tripled
            .merge(&SuffStats::from_samples(&single.samples))
            .unwrap();
        tripled
            .merge(&SuffStats::from_samples(&single.samples))
            .unwrap();
        assert_ne!(fr.stats, tripled);
    }

    #[test]
    fn streaming_estimation_is_deterministic_and_hits_the_cache() {
        let config = RunConfig::new("sense").invocations(400).seeded(13);
        let fleet = Fleet::new(config, 4);
        let (fr, a) = fleet.run_streaming().unwrap();
        let b = fleet.estimate_streaming(&fr).unwrap();
        assert_eq!(a.batches, 4);
        assert_eq!(a.batch_iterations, b.batch_iterations);
        for (x, y) in a
            .estimated
            .estimate
            .probs
            .as_slice()
            .iter()
            .zip(b.estimated.estimate.probs.as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Later batches warm-start near the optimum and replay cached
        // convolutions; a streaming run that never hits is a wiring bug.
        assert!(a.cache_hits > 0, "no convolution-cache hits across batches");
        assert!(
            a.estimated.accuracy.mae < 0.05,
            "mae {}",
            a.estimated.accuracy.mae
        );
        assert!(!a.restored && !a.halted);
        // The per-mote batch sequence folds back to the merged statistics.
        let mut refold = SuffStats::new(fleet.config().cycles_per_tick);
        for s in &fr.mote_stats {
            refold.merge(s).unwrap();
        }
        assert_eq!(refold, fr.stats);
        // So does the raw delivery stream under tag dedup.
        let mut seen = BTreeSet::new();
        let mut dedup_fold = SuffStats::new(fleet.config().cycles_per_tick);
        for (tag, s) in &fr.deliveries {
            if seen.insert(*tag) {
                dedup_fold.merge(s).unwrap();
            }
        }
        assert_eq!(dedup_fold, fr.stats);
    }

    #[test]
    fn fleet_estimate_runs_off_merged_stats() {
        let config = RunConfig::new("sense").invocations(700).seeded(9);
        let fleet = Fleet::new(config, 3);
        let fr = fleet.run().unwrap();
        let est = fleet.estimate(&fr).unwrap();
        assert!(
            est.accuracy.mae < 0.03,
            "mae {} from {} merged samples",
            est.accuracy.mae,
            fr.stats.len()
        );
        assert_eq!(est.confidence, 1.0, "full coverage leaves confidence at 1");
    }

    #[test]
    fn crashed_motes_retry_to_the_identical_contribution() {
        quiet_injected_crashes();
        let config = RunConfig::new("sense").invocations(150).seeded(21);
        let clean = Fleet::new(config.clone(), 4).run().unwrap();
        // Moderate crash rates: every mote eventually delivers within the
        // attempt budget (verified by `delivered` below), and a recovered
        // delivery is bitwise what the unfaulted fleet produced.
        let plan = MoteFaultPlan::new(77)
            .with(MoteFaultKind::CrashMidRun, 0.4)
            .with(MoteFaultKind::CrashBeforeReport, 0.2)
            .with(MoteFaultKind::LostDelivery, 0.2);
        let faulted = Fleet::new(config, 4)
            .with_mote_faults(plan)
            .attempts(10)
            .run()
            .unwrap();
        assert_eq!(faulted.delivered, 4, "a mote never recovered");
        assert!(faulted.retries > 0, "plan injected no faults at all");
        assert_eq!(faulted.stats, clean.stats);
        assert_eq!(faulted.truth_profile, clean.truth_profile);
        assert_eq!(faulted.pmu, clean.pmu);
    }

    #[test]
    fn duplicate_deliveries_never_change_results() {
        let config = RunConfig::new("sense").invocations(150).seeded(33);
        let clean = Fleet::new(config.clone(), 3).run().unwrap();
        let dup_fleet = Fleet::new(config, 3).with_mote_faults(MoteFaultPlan::single(
            MoteFaultKind::DuplicateDelivery,
            1.0,
            5,
        ));
        let dup = dup_fleet.run().unwrap();
        assert_eq!(dup.dedup_dropped, 3, "every mote should have duplicated");
        assert_eq!(dup.deliveries.len(), 6);
        assert_eq!(dup.stats, clean.stats);
        assert_eq!(dup.invocations, clean.invocations);
        assert_eq!(dup.pmu, clean.pmu);
        // The streaming path dedups the raw stream to the same estimate.
        let clean_report = Fleet::new(clean_config_of(&dup_fleet), 3)
            .estimate_streaming(&clean)
            .unwrap();
        let dup_report = dup_fleet.estimate_streaming(&dup).unwrap();
        assert_eq!(dup_report.batches, 3);
        for (x, y) in dup_report
            .estimated
            .estimate
            .probs
            .as_slice()
            .iter()
            .zip(clean_report.estimated.estimate.probs.as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    fn clean_config_of(fleet: &Fleet) -> RunConfig {
        fleet.config().clone()
    }

    #[test]
    fn exhausted_retry_budget_degrades_coverage_and_confidence() {
        quiet_injected_crashes();
        let config = RunConfig::new("sense").invocations(120).seeded(4);
        // Crash every attempt: nothing ever delivers.
        let dead = Fleet::new(config.clone(), 3)
            .with_mote_faults(MoteFaultPlan::single(MoteFaultKind::CrashMidRun, 1.0, 9))
            .attempts(2);
        let fr = dead.run().unwrap();
        assert_eq!(fr.delivered, 0);
        assert_eq!(fr.failed, 3);
        assert_eq!(fr.retries, 6, "two attempts per mote, all crashed");
        assert_eq!(fr.coverage(), 0.0);
        assert_eq!(fr.stats.len(), 0);
        assert!(
            dead.estimate_streaming(&fr).is_err(),
            "no batches, no estimate"
        );
    }
}

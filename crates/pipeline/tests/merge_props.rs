//! Property tests of the streaming ingestion layer: `SuffStats::merge` is
//! associative, commutative, and — for any partition of a sample stream
//! into batches and any worker count — equal to the statistics of the
//! monolithic stream.

use ct_core::samples::TimingSamples;
use ct_core::stream::{SampleBatch, SuffStats};
use ct_stats::parallel::par_map_with;
use proptest::prelude::*;

/// Splits `ticks` into non-empty chunks at the (sorted, deduped) cut points.
fn chunks(ticks: &[u64], cuts: &[usize]) -> Vec<Vec<u64>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (ticks.len() + 1)).collect();
    bounds.push(0);
    bounds.push(ticks.len());
    bounds.sort_unstable();
    bounds.dedup();
    bounds
        .windows(2)
        .map(|w| ticks[w[0]..w[1]].to_vec())
        .collect()
}

fn stats_of(ticks: &[u64], cpt: u64) -> SuffStats {
    let mut b = SampleBatch::new(cpt).expect("positive resolution");
    b.extend(ticks.iter().copied());
    b.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any split of a stream, merged left-to-right or right-to-left,
    /// equals the monolithic statistics exactly.
    #[test]
    fn merge_of_any_split_equals_monolithic(
        ticks in prop::collection::vec(0u64..50_000, 1..200),
        cuts in prop::collection::vec(0usize..200, 0..6),
        cpt in 1u64..300,
    ) {
        let whole = stats_of(&ticks, cpt);
        let parts: Vec<SuffStats> =
            chunks(&ticks, &cuts).iter().map(|c| stats_of(c, cpt)).collect();

        let mut forward = SuffStats::new(cpt);
        for p in &parts {
            forward.merge(p).expect("same resolution");
        }
        let mut backward = SuffStats::new(cpt);
        for p in parts.iter().rev() {
            backward.merge(p).expect("same resolution");
        }
        prop_assert_eq!(&forward, &whole);
        prop_assert_eq!(&backward, &whole);
    }

    /// Associativity: (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c); commutativity: a ⊕ b = b ⊕ a.
    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..10_000, 0..80),
        b in prop::collection::vec(0u64..10_000, 0..80),
        c in prop::collection::vec(0u64..10_000, 0..80),
        cpt in 1u64..100,
    ) {
        let (sa, sb, sc) = (stats_of(&a, cpt), stats_of(&b, cpt), stats_of(&c, cpt));
        let ab_c = SuffStats::merged(
            SuffStats::merged(sa.clone(), &sb).expect("same resolution"),
            &sc,
        )
        .expect("same resolution");
        let a_bc = SuffStats::merged(
            sa.clone(),
            &SuffStats::merged(sb.clone(), &sc).expect("same resolution"),
        )
        .expect("same resolution");
        prop_assert_eq!(&ab_c, &a_bc);

        let ab = SuffStats::merged(sa.clone(), &sb).expect("same resolution");
        let ba = SuffStats::merged(sb, &sa).expect("same resolution");
        prop_assert_eq!(ab, ba);
    }

    /// Reducing per-batch statistics computed by a deterministic parallel
    /// map equals the monolithic statistics for every worker count.
    #[test]
    fn parallel_reduction_matches_for_any_thread_count(
        ticks in prop::collection::vec(0u64..50_000, 1..200),
        cuts in prop::collection::vec(0usize..200, 0..5),
        threads in 1usize..5,
    ) {
        let cpt = 8;
        let whole = stats_of(&ticks, cpt);
        let per_batch = par_map_with(
            threads,
            chunks(&ticks, &cuts),
            |c| stats_of(&c, cpt),
        );
        let mut merged = SuffStats::new(cpt);
        for s in &per_batch {
            merged.merge(s).expect("same resolution");
        }
        prop_assert_eq!(merged, whole);
    }

    /// At-least-once ingestion is idempotent under tag dedup and
    /// permutation-invariant: any shuffle of a delivery stream with
    /// duplicated batches interleaved folds — through a dedup ledger — to
    /// exactly the statistics of the distinct batches.
    #[test]
    fn dedup_fold_is_idempotent_and_permutation_invariant(
        ticks in prop::collection::vec(0u64..50_000, 1..200),
        cuts in prop::collection::vec(0usize..200, 0..6),
        dup_mask in prop::collection::vec(any::<bool>(), 8),
        shuffle in prop::collection::vec(0usize..1000, 0..16),
        cpt in 1u64..300,
    ) {
        use ct_core::stream::BatchTag;
        use std::collections::BTreeSet;

        let whole = stats_of(&ticks, cpt);
        let parts: Vec<SuffStats> =
            chunks(&ticks, &cuts).iter().map(|c| stats_of(c, cpt)).collect();

        // Tag each batch, then redeliver the masked ones (same tag — the
        // at-least-once contract: a redelivery repeats the payload *and*
        // the tag).
        let mut stream: Vec<(BatchTag, SuffStats)> = parts
            .iter()
            .enumerate()
            .map(|(i, s)| (BatchTag { mote: i as u64, seq: 0 }, s.clone()))
            .collect();
        for (i, dup) in dup_mask.iter().enumerate() {
            if *dup && i < parts.len() {
                stream.push(stream[i].clone());
            }
        }
        // Deterministic shuffle from the generated swap list: duplicates
        // may arrive before their originals and in any interleaving.
        for (i, s) in shuffle.iter().enumerate() {
            let n = stream.len();
            stream.swap(i % n, s % n);
        }

        let mut ledger: BTreeSet<BatchTag> = BTreeSet::new();
        let mut folded = SuffStats::new(cpt);
        let mut dropped = 0usize;
        for (tag, s) in &stream {
            if ledger.insert(*tag) {
                folded.merge(s).expect("same resolution");
            } else {
                dropped += 1;
            }
        }
        prop_assert_eq!(&folded, &whole);
        prop_assert_eq!(dropped, stream.len() - parts.len());

        // Idempotence at the extreme: replay the entire stream again into
        // the same ledger — nothing changes.
        let before = folded.clone();
        for (tag, s) in &stream {
            if ledger.insert(*tag) {
                folded.merge(s).expect("same resolution");
            }
        }
        prop_assert_eq!(folded, before);
    }

    /// The sharded service core is shard-count invariant: for any delivery
    /// stream — duplicated, shuffled, reduced on an arbitrary schedule —
    /// every shard count in {1, 2, 7, 16} ends with the monolithic
    /// statistics and serves bitwise the same estimate as a monolithic
    /// incremental fold of the distinct batches.
    #[test]
    fn service_core_is_shard_count_invariant(
        arms in prop::collection::vec(any::<bool>(), 8..120),
        cuts in prop::collection::vec(0usize..200, 0..6),
        dup_mask in prop::collection::vec(any::<bool>(), 8),
        shuffle in prop::collection::vec(0usize..1000, 0..16),
    ) {
        use ct_core::em::EmOptions;
        use ct_core::stream::BatchTag;
        use ct_core::IncrementalEm;
        use ct_service::{ServiceConfig, ServiceCore};

        let cfg = ct_cfg::builder::diamond();
        let (bc, ec) = ([10u64, 100, 200, 5], [0u64; 4]);
        let cpt = 1;
        // Two identifiable arm durations keep EM well-posed on the diamond.
        let ticks: Vec<u64> = arms.iter().map(|&b| if b { 215 } else { 115 }).collect();
        let whole = stats_of(&ticks, cpt);
        let parts: Vec<SuffStats> =
            chunks(&ticks, &cuts).iter().map(|c| stats_of(c, cpt)).collect();

        // The monolithic reference: fold every distinct batch in order,
        // re-estimate once from a cold start.
        let mut mono = IncrementalEm::new(cpt, EmOptions::default());
        for p in &parts {
            mono.ingest(p).expect("same resolution");
        }
        let reference = mono.reestimate(&cfg, &bc, &ec).expect("reference EM").clone();

        // At-least-once delivery: duplicate the masked batches (same tag),
        // then shuffle deterministically.
        let mut stream: Vec<(BatchTag, SuffStats)> = parts
            .iter()
            .enumerate()
            .map(|(i, s)| (BatchTag { mote: i as u64, seq: 0 }, s.clone()))
            .collect();
        for (i, dup) in dup_mask.iter().enumerate() {
            if *dup && i < parts.len() {
                stream.push(stream[i].clone());
            }
        }
        for (i, s) in shuffle.iter().enumerate() {
            let n = stream.len();
            stream.swap(i % n, s % n);
        }

        for shards in [1usize, 2, 7, 16] {
            let mut core = ServiceCore::new(
                &ServiceConfig::new().shards(shards),
                cpt,
                EmOptions::default(),
            );
            for (i, (tag, s)) in stream.iter().enumerate() {
                core.ingest(*tag, s).expect("same resolution");
                // An arbitrary shard-count-dependent reduce schedule: the
                // cadence must not be able to change anything.
                if i % (shards + 2) == 0 {
                    core.reduce().expect("mid-stream reduce");
                }
            }
            core.reduce().expect("final reduce");
            prop_assert_eq!(core.stats(), &whole, "shards={} stats diverged", shards);
            prop_assert_eq!(core.batches(), parts.len() as u64);
            prop_assert_eq!(
                core.dedup_dropped() as usize,
                stream.len() - parts.len()
            );
            let served = core.estimate(&cfg, &bc, &ec).expect("service EM").clone();
            for (a, b) in served.probs.as_slice().iter().zip(reference.probs.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "shards={} estimate diverged", shards);
            }
            prop_assert_eq!(served.loglik.to_bits(), reference.loglik.to_bits());
            prop_assert_eq!(served.iterations, reference.iterations);
        }
    }

    /// The streaming view and the monolithic vector agree on everything the
    /// estimators consume: count, histogram, and both moments.
    #[test]
    fn stats_agree_with_monolithic_vector_view(
        ticks in prop::collection::vec(0u64..50_000, 1..200),
        cpt in 1u64..300,
    ) {
        use ct_core::samples::DurationSamples;
        let samples = TimingSamples::new(ticks.clone(), cpt);
        let stats = SuffStats::from_samples(&samples);
        prop_assert_eq!(DurationSamples::len(&stats), samples.len());
        prop_assert_eq!(DurationSamples::counted(&stats), TimingSamples::counted(&samples));
        let dm = DurationSamples::mean_cycles(&stats) - TimingSamples::mean_cycles(&samples);
        prop_assert!(dm.abs() < 1e-6);
        let dv =
            DurationSamples::variance_cycles(&stats) - TimingSamples::variance_cycles(&samples);
        prop_assert!(dv.abs() < 1e-3 * TimingSamples::variance_cycles(&samples).max(1.0));
    }
}

//! Descriptive statistics over `f64` samples.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean; `0.0` for an empty sample.
    pub mean: f64,
    /// Unbiased sample variance (n−1 denominator); `0.0` when `n < 2`.
    pub variance: f64,
    /// Minimum; `0.0` for an empty sample.
    pub min: f64,
    /// Maximum; `0.0` for an empty sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `xs` in one pass (Welford's algorithm).
    ///
    /// # Examples
    ///
    /// ```
    /// use ct_stats::descriptive::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean, 2.0);
    /// assert_eq!(s.variance, 1.0);
    /// ```
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary::default();
        }
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, &x) in xs.iter().enumerate() {
            let delta = x - mean;
            mean += delta / (i as f64 + 1.0);
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        let n = xs.len();
        let variance = if n >= 2 { m2 / (n as f64 - 1.0) } else { 0.0 };
        Summary {
            n,
            mean,
            variance,
            min,
            max,
        }
    }

    /// Standard deviation (square root of the unbiased variance).
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean; `0.0` for an empty sample.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    Summary::of(xs).mean
}

/// Unbiased sample variance; `0.0` when fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    Summary::of(xs).variance
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics (type-7, the numpy default).
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5-quantile).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `0.0` when either sample has zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two elements.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation requires equal lengths");
    assert!(xs.len() >= 2, "correlation requires at least two samples");
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn summary_of_empty_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn summary_single_sample_has_zero_variance() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.mean, 42.0);
    }

    #[test]
    fn std_err_shrinks_with_n() {
        let small = Summary::of(&[1.0, 3.0]);
        let large = Summary::of(&[1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0, 3.0]);
        assert!(large.std_err() < small.std_err());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn median_of_odd_sample() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn correlation_of_linear_relation_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_anticorrelated_is_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((correlation(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_constant_sample_is_zero() {
        assert_eq!(correlation(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }
}

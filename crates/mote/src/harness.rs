//! One-call measurement harnesses: run a workload under ground-truth and
//! timing instrumentation simultaneously.
//!
//! Experiments need three things from a run: the exact edge profile (to score
//! against), the end-to-end timing samples (the estimator's input), and the
//! cycle cost (for overhead accounting). These helpers produce all three.

use crate::interp::{Mote, TrapError};
use crate::sched::Scheduler;
use crate::timer::VirtualTimer;
use crate::trace::{GroundTruthProfiler, PairProfiler, TimingProfiler};
use ct_ir::instr::ProcId;

/// The artifacts of a profiled run.
#[derive(Debug)]
pub struct ProfiledRun {
    /// Exact edge counts per procedure (the simulator's ground truth).
    pub ground_truth: GroundTruthProfiler,
    /// Per-procedure exclusive duration samples, in timer ticks.
    pub samples: Vec<Vec<u64>>,
    /// Total cycles the run consumed (instrumentation overhead included).
    pub cycles_used: u64,
    /// The timer the samples were measured with.
    pub timer: VirtualTimer,
}

/// Calls `proc` `n` times with arguments from `args_for`, measuring with
/// `timer` (charging `ts_overhead` cycles per timestamp) while also
/// collecting ground truth.
///
/// # Errors
///
/// Stops at the first [`TrapError`].
pub fn profile_invocations(
    mote: &mut Mote,
    proc: ProcId,
    n: usize,
    timer: VirtualTimer,
    ts_overhead: u64,
    mut args_for: impl FnMut(usize) -> Vec<i64>,
) -> Result<ProfiledRun, TrapError> {
    let program = mote.program().clone();
    let mut gt = GroundTruthProfiler::new(&program);
    let mut tp = TimingProfiler::new(&program, timer, ts_overhead);
    let start_cycles = mote.cycles;
    for i in 0..n {
        let args = args_for(i);
        let mut pair = PairProfiler {
            a: &mut gt,
            b: &mut tp,
        };
        mote.call(proc, &args, &mut pair)?;
    }
    Ok(ProfiledRun {
        ground_truth: gt,
        samples: tp.into_samples(),
        cycles_used: mote.cycles - start_cycles,
        timer,
    })
}

/// Runs `n_events` scheduler events, measuring with `timer` while also
/// collecting ground truth.
///
/// # Errors
///
/// Stops at the first [`TrapError`].
pub fn profile_events(
    mote: &mut Mote,
    scheduler: &mut Scheduler,
    n_events: u64,
    timer: VirtualTimer,
    ts_overhead: u64,
) -> Result<ProfiledRun, TrapError> {
    let program = mote.program().clone();
    let mut gt = GroundTruthProfiler::new(&program);
    let mut tp = TimingProfiler::new(&program, timer, ts_overhead);
    let start_cycles = mote.cycles;
    {
        let mut pair = PairProfiler {
            a: &mut gt,
            b: &mut tp,
        };
        scheduler.run_events(mote, n_events, &mut pair)?;
    }
    Ok(ProfiledRun {
        ground_truth: gt,
        samples: tp.into_samples(),
        cycles_used: mote.cycles - start_cycles,
        timer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AvrCost;
    use crate::devices::UniformAdc;
    use crate::sched::TimerBinding;

    fn boot(src: &str) -> Mote {
        Mote::new(ct_ir::compile_source(src).unwrap(), Box::new(AvrCost))
    }

    const SENSE: &str = "module Sense {
        var threshold: u16 = 512;
        var alarms: u16;
        proc check() {
            var v: u16 = read_adc();
            if (v > threshold) { alarms = alarms + 1; } else { }
        }
    }";

    #[test]
    fn direct_profiling_collects_everything() {
        let mut mote = boot(SENSE);
        mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
        let run = profile_invocations(
            &mut mote,
            ProcId(0),
            500,
            VirtualTimer::cycle_accurate(),
            0,
            |_| vec![],
        )
        .unwrap();
        assert_eq!(run.samples[0].len(), 500);
        assert_eq!(run.ground_truth.invocations(ProcId(0)), 500);
        assert!(run.cycles_used > 0);
        // Branch probability ≈ (1023-512)/1024 ≈ 0.499.
        let cfg = &mote.program().procs[0].cfg;
        let probs = run.ground_truth.branch_probs(ProcId(0), cfg);
        let p = probs.as_slice()[0];
        assert!((p - 0.5).abs() < 0.08, "{p}");
    }

    #[test]
    fn timing_samples_reflect_branch_difference() {
        // Taking the alarm arm costs more cycles; samples must be bimodal.
        let mut mote = boot(SENSE);
        mote.devices.adc = Box::new(UniformAdc { lo: 0, hi: 1023 });
        let run = profile_invocations(
            &mut mote,
            ProcId(0),
            300,
            VirtualTimer::cycle_accurate(),
            0,
            |_| vec![],
        )
        .unwrap();
        let mut uniq: Vec<u64> = run.samples[0].clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 2, "two path durations expected: {uniq:?}");
    }

    #[test]
    fn event_profiling_drives_scheduler() {
        let mut mote = boot(SENSE);
        let mut sched = Scheduler::new();
        sched.add_timer(TimerBinding {
            period_cycles: 50_000,
            phase_cycles: 50_000,
            proc: ProcId(0),
            args: vec![],
        });
        let run =
            profile_events(&mut mote, &mut sched, 50, VirtualTimer::khz32_at_8mhz(), 0).unwrap();
        assert_eq!(run.ground_truth.invocations(ProcId(0)), 50);
        assert_eq!(run.samples[0].len(), 50);
    }

    #[test]
    fn overhead_cycles_show_up_in_cycles_used() {
        let mut mote = boot(SENSE);
        let base = profile_invocations(
            &mut mote,
            ProcId(0),
            100,
            VirtualTimer::cycle_accurate(),
            0,
            |_| vec![],
        )
        .unwrap();
        let mut mote2 = boot(SENSE);
        let heavy = profile_invocations(
            &mut mote2,
            ProcId(0),
            100,
            VirtualTimer::cycle_accurate(),
            50,
            |_| vec![],
        )
        .unwrap();
        // 2 timestamps × 50 cycles × 100 calls = 10_000 extra cycles.
        assert_eq!(heavy.cycles_used, base.cycles_used + 10_000);
    }
}

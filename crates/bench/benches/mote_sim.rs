//! Criterion microbenchmarks: mote simulator throughput (cycles simulated
//! per wall second) on the benchmark apps, with and without instrumentation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_bench::Mcu;
use ct_mote::trace::{GroundTruthProfiler, NullProfiler};
use std::hint::black_box;

fn bench_mote(c: &mut Criterion) {
    let mut group = c.benchmark_group("mote_sim");
    for name in ["sense", "crc", "sort"] {
        let app = ct_apps::app_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::new("uninstrumented", name), name, |b, _| {
            let mut mote = app.boot(Mcu::Avr.cost_model());
            let pid = app.target_id(mote.program());
            b.iter(|| {
                black_box(mote.call(pid, &[], &mut NullProfiler).unwrap());
            });
        });
        group.bench_with_input(BenchmarkId::new("ground_truth", name), name, |b, _| {
            let mut mote = app.boot(Mcu::Avr.cost_model());
            let program = mote.program().clone();
            let pid = app.target_id(&program);
            let mut gt = GroundTruthProfiler::new(&program);
            b.iter(|| {
                black_box(mote.call(pid, &[], &mut gt).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mote);
criterion_main!(benches);

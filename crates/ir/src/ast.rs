//! Abstract syntax tree for NLC.
//!
//! NLC ("nesC-lite") is a deliberately small structured language for sensor
//! mote programs:
//!
//! ```text
//! module Sense {
//!     var threshold: u16 = 100;
//!     var samples: u16[8];
//!
//!     proc clamp(x: u16) -> u16 {
//!         var y: u16 = 0;
//!         if (x > threshold) { y = threshold; } else { y = x; }
//!         return y;
//!     }
//! }
//! ```
//!
//! Design restrictions that keep lowered CFGs structured (and therefore
//! decomposable by `ct_cfg::structure`):
//!
//! - no `goto`, `break` or `continue`;
//! - `return` may appear only as the final statement of a procedure body;
//! - `&&` and `||` evaluate both operands (no short-circuit control flow).

use crate::token::Span;
use crate::types::Ty;

/// A whole translation unit: one `module`.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Module-level variables (mote RAM).
    pub globals: Vec<GlobalDecl>,
    /// Procedures.
    pub procs: Vec<ProcDecl>,
}

/// A module-level variable, scalar or fixed-length array.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Array length; `None` for scalars.
    pub array_len: Option<u32>,
    /// Optional scalar initializer (arrays zero-initialize).
    pub init: Option<i64>,
    /// Source location.
    pub span: Span,
}

/// A procedure definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcDecl {
    /// Procedure name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type; `None` for void procedures.
    pub ret: Option<Ty>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the header.
    pub span: Span,
}

/// One formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Ty,
    /// Source location.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local variable declaration with optional initializer.
    VarDecl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Initializer (defaults to zero/false).
        init: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// Assignment to a variable or array element.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// Two-way conditional.
    If {
        /// Condition (must be `bool`).
        cond: Expr,
        /// Then-arm statements.
        then_blk: Vec<Stmt>,
        /// Else-arm statements (empty for `if` without `else`).
        else_blk: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// Header-controlled loop.
    While {
        /// Condition (must be `bool`).
        cond: Expr,
        /// Body statements.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// Procedure return; only legal as the last statement of a body.
    Return {
        /// Returned value; must match the procedure's return type.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// Expression evaluated for side effects (a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source location.
    pub fn span(&self) -> Span {
        match self {
            Stmt::VarDecl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Expr { span, .. } => *span,
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar local or global.
    Var(String),
    /// A global array element `name[index]`.
    Elem(String, Box<Expr>),
}

/// An expression with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression node.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Variable read (local, parameter or global scalar).
    Var(String),
    /// Global array element read.
    Elem(String, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Procedure or intrinsic call.
    Call(String, Vec<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (integers).
    Neg,
    /// Logical not (booleans).
    Not,
    /// Bitwise complement (integers).
    BitNot,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (traps on zero divisor)
    Div,
    /// `%` (traps on zero divisor)
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (non-short-circuit boolean and)
    And,
    /// `||` (non-short-circuit boolean or)
    Or,
}

impl BinOp {
    /// True for operators producing `bool` from integer operands.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for `&&`/`||`, which take and produce `bool`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }

    #[test]
    fn stmt_span_accessor() {
        let s = Stmt::Return {
            value: None,
            span: Span {
                start: 1,
                end: 2,
                line: 9,
                col: 1,
            },
        };
        assert_eq!(s.span().line, 9);
    }
}

//! The typed pipeline stages. Each stage consumes the previous stage's
//! artifact and a shared [`RunConfig`]; the chain is
//!
//! ```text
//! Compile → Deploy → Run → Collect → Corrupt → Estimate → Place → Evaluate
//!   ()      Compiled Deployed Executed  AppRun    AppRun  EstimatedRun PlacedRun
//! ```
//!
//! [`Session`](crate::Session) composes them; the types make it impossible
//! to, say, estimate before collecting or place before estimating.

use crate::config::{EstimatorChoice, RunConfig, Target};
use crate::error::PipelineError;
use crate::measure;
use crate::session::{Evaluated, PipelineReport};
use ct_cfg::graph::{BlockId, Cfg};
use ct_cfg::layout::Layout;
use ct_cfg::profile::{BranchProbs, EdgeProfile};
use ct_core::accuracy::{compare, AccuracyReport};
use ct_core::estimator::{estimate, estimate_robust, Estimate as CoreEstimate, Method};
use ct_core::estimator::{EstimateOptions, RobustEstimate};
use ct_core::incremental::IncrementalEm;
use ct_core::samples::{DurationSamples, TimingSamples};
use ct_core::stream::SampleBatch;
use ct_core::unrolled::estimate_unrolled;
use ct_ir::instr::ProcId;
use ct_ir::program::Program;
use ct_mote::interp::Mote;
use ct_mote::timer::VirtualTimer;
use ct_mote::trace::{GroundTruthProfiler, PairProfiler, TimingProfiler};
use ct_placement::{place_with_confidence, Strategy, MIN_PLACEMENT_CONFIDENCE};

/// One typed pipeline step: turns the previous stage's artifact into the
/// next under a shared configuration.
pub trait Stage {
    /// The artifact this stage consumes.
    type Input;
    /// The artifact this stage produces.
    type Output;

    /// The stage's name (for diagnostics).
    fn name(&self) -> &'static str;

    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// Stage-specific: traps, estimation failures, frequency-derivation
    /// failures — see [`PipelineError`].
    fn run(&self, config: &RunConfig, input: Self::Input) -> Result<Self::Output, PipelineError>;
}

/// Runs `stage` under a `stage.<name>` observability span and emits a
/// `stage.<name>` completion event (with the error text on failure).
///
/// Instrumentation only: the stage's inputs, outputs, and errors pass
/// through untouched, so tracing cannot perturb the pipeline's results.
///
/// # Errors
///
/// Exactly the wrapped stage's errors.
pub fn traced<S: Stage>(
    stage: &S,
    config: &RunConfig,
    input: S::Input,
) -> Result<S::Output, PipelineError> {
    let label = format!("stage.{}", stage.name());
    let _span = ct_obs::Span::enter(label.as_str());
    let started = std::time::Instant::now();
    let result = stage.run(config, input);
    ct_obs::hist_record(
        &format!("{label}.wall_ns"),
        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );
    match &result {
        Ok(_) => ct_obs::emit(&label, vec![("ok", true.into())]),
        Err(e) => ct_obs::emit(
            &label,
            vec![("ok", false.into()), ("error", e.to_string().into())],
        ),
    }
    result
}

// ---------------------------------------------------------------- Compile

/// The compiled target: program, profiled procedure, and workload hooks.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Target display name.
    pub name: String,
    /// The compiled program.
    pub program: Program,
    /// The profiled procedure.
    pub pid: ProcId,
    pub(crate) configure: fn(&mut Mote),
    pub(crate) per_call: Option<fn(&mut Mote, usize)>,
}

/// Compiles the configured target.
#[derive(Debug, Clone, Copy, Default)]
pub struct Compile;

impl Stage for Compile {
    type Input = ();
    type Output = Compiled;

    fn name(&self) -> &'static str {
        "compile"
    }

    fn run(&self, config: &RunConfig, _input: ()) -> Result<Compiled, PipelineError> {
        Ok(match &config.target {
            Target::App(app) => {
                let program = app.compile();
                let pid = app.target_id(&program);
                Compiled {
                    name: app.name.to_string(),
                    program,
                    pid,
                    configure: app.configure,
                    per_call: app.per_call,
                }
            }
            Target::Program {
                program,
                proc_index,
                configure,
            } => Compiled {
                name: program.name.clone(),
                program: program.clone(),
                pid: ProcId(*proc_index as u32),
                configure: *configure,
                per_call: None,
            },
        })
    }
}

// ----------------------------------------------------------------- Deploy

/// A booted, configured, seeded mote ready to drive the workload.
#[derive(Debug)]
pub struct Deployed {
    /// The booted mote.
    pub mote: Mote,
    /// The compile artifact the mote runs.
    pub compiled: Compiled,
}

/// Boots a mote with the compiled program: applies the target's device
/// configuration, the configured seed and contamination, and (optionally)
/// a code layout override for replay runs.
#[derive(Debug, Clone, Default)]
pub struct Deploy {
    /// Layout to install on the profiled procedure before running
    /// (`None` keeps the program's natural layout).
    pub layout: Option<Layout>,
}

impl Stage for Deploy {
    type Input = Compiled;
    type Output = Deployed;

    fn name(&self) -> &'static str {
        "deploy"
    }

    fn run(&self, config: &RunConfig, compiled: Compiled) -> Result<Deployed, PipelineError> {
        let mut mote = Mote::new(compiled.program.clone(), config.mcu.cost_model());
        (compiled.configure)(&mut mote);
        mote.reseed(config.seed);
        if let Some(layout) = &self.layout {
            mote.set_layout(compiled.pid, layout.clone());
        }
        if let Some(c) = config.contamination {
            mote.config.contamination_prob = c.prob;
            mote.config.contamination_cycles = c.cycles;
        }
        Ok(Deployed { mote, compiled })
    }
}

// -------------------------------------------------------------------- Run

/// A driven workload with its instrumentation state still attached.
#[derive(Debug)]
pub struct Executed {
    /// The mote after the workload (owns cycle counters and static costs).
    pub mote: Mote,
    /// The compile artifact.
    pub compiled: Compiled,
    /// Ground-truth edge instrumentation (scoring only — the estimator
    /// never sees it).
    pub truth: GroundTruthProfiler,
    /// The entry/exit timestamp instrumentation (all the estimator gets).
    pub timing: TimingProfiler,
    /// Cycles the workload consumed.
    pub cycles_used: u64,
}

/// Drives the configured number of target invocations under paired
/// ground-truth and timing instrumentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Run;

impl Stage for Run {
    type Input = Deployed;
    type Output = Executed;

    fn name(&self) -> &'static str {
        "run"
    }

    fn run(&self, config: &RunConfig, deployed: Deployed) -> Result<Executed, PipelineError> {
        let Deployed { mut mote, compiled } = deployed;
        let program = mote.program().clone();
        let mut truth = GroundTruthProfiler::new(&program);
        let mut timing = TimingProfiler::new(&program, config.timer(), config.ts_overhead);
        let start_cycles = mote.cycles;
        for i in 0..config.invocations {
            if let Some(hook) = compiled.per_call {
                hook(&mut mote, i);
            }
            let mut pair = PairProfiler {
                a: &mut truth,
                b: &mut timing,
            };
            mote.call(compiled.pid, &[], &mut pair)
                .map_err(|e| PipelineError::Trap(format!("{}: {e}", compiled.name)))?;
        }
        let cycles_used = mote.cycles - start_cycles;
        Ok(Executed {
            mote,
            compiled,
            truth,
            timing,
            cycles_used,
        })
    }
}

// ---------------------------------------------------------------- Collect

/// Everything one measured workload run produces (the `Collect` artifact).
#[derive(Debug)]
pub struct AppRun {
    /// The compiled program.
    pub program: Program,
    /// The profiled procedure.
    pub pid: ProcId,
    /// Static block costs of the target under the run's layout.
    pub block_costs: Vec<u64>,
    /// Static edge costs of the target under the run's layout.
    pub edge_costs: Vec<u64>,
    /// Exclusive-duration samples of the target.
    pub samples: TimingSamples,
    /// Ground-truth edge profile of the target.
    pub truth_profile: EdgeProfile,
    /// Ground-truth branch probabilities.
    pub truth: BranchProbs,
    /// Statically counted loops of the target (from the compiler's
    /// trip-count analysis).
    pub counted_loops: Vec<(BlockId, u64)>,
    /// Target invocations.
    pub invocations: u64,
    /// Total cycles consumed by the run.
    pub cycles_used: u64,
    /// The mote's virtual-PMU counter bank at collection time: measured
    /// branch/jump/call counts and per-procedure cycle attribution.
    pub pmu: ct_mote::pmu::PmuSnapshot,
}

impl AppRun {
    /// The target procedure's CFG.
    pub fn cfg(&self) -> &Cfg {
        &self.program.procs[self.pid.index()].cfg
    }

    /// The run's tick stream as an append-only ingestion batch
    /// (arrival order preserved).
    pub fn batch(&self) -> SampleBatch {
        SampleBatch::from_samples(&self.samples)
    }
}

/// Records a run's PMU totals into the always-on counter registry (and,
/// when streaming, as a `pmu.totals` event). Counters sum over every
/// `Collect` in the process — the profiled run plus both evaluate replays
/// — so the manifest's `pmu` section is the whole pipeline's transfer
/// census, deterministic at any thread count.
fn record_pmu(pmu: &ct_mote::pmu::PmuSnapshot) {
    let t = &pmu.total;
    ct_obs::Counter::new("pmu.cond_taken").add(t.cond_taken);
    ct_obs::Counter::new("pmu.cond_not_taken").add(t.cond_not_taken);
    ct_obs::Counter::new("pmu.jumps").add(t.jumps);
    ct_obs::Counter::new("pmu.fall_throughs").add(t.fall_throughs);
    ct_obs::Counter::new("pmu.calls").add(t.calls);
    ct_obs::Counter::new("pmu.returns").add(t.returns);
    ct_obs::Counter::new("pmu.mispred_ant").add(t.mispred_ant);
    ct_obs::Counter::new("pmu.mispred_btfnt").add(t.mispred_btfnt);
    ct_obs::Counter::new("pmu.cycles").add(t.cycles);
    ct_obs::emit(
        "pmu.totals",
        vec![
            ("cond_taken", t.cond_taken.into()),
            ("cond_not_taken", t.cond_not_taken.into()),
            ("jumps", t.jumps.into()),
            ("fall_throughs", t.fall_throughs.into()),
            ("calls", t.calls.into()),
            ("returns", t.returns.into()),
            ("mispred_ant", t.mispred_ant.into()),
            ("mispred_btfnt", t.mispred_btfnt.into()),
            ("cycles", t.cycles.into()),
        ],
    );
}

/// Extracts the run artifacts: samples, ground truth, static costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Collect;

impl Stage for Collect {
    type Input = Executed;
    type Output = AppRun;

    fn name(&self) -> &'static str {
        "collect"
    }

    fn run(&self, config: &RunConfig, executed: Executed) -> Result<AppRun, PipelineError> {
        let Executed {
            mote,
            compiled,
            truth,
            timing,
            cycles_used,
        } = executed;
        let pid = compiled.pid;
        let program = compiled.program;
        let cfg = &program.procs[pid.index()].cfg;
        let pmu = mote.pmu.snapshot();
        record_pmu(&pmu);
        // The timer came from `RunConfig::timer` (a `VirtualTimer`, whose
        // invariant is cycles_per_tick ≥ 1), so the fallible constructor
        // cannot fail here — but this stage already returns Result, so a
        // broken invariant surfaces as a typed error, not a panic.
        let samples = TimingSamples::try_new(
            timing.samples(pid).to_vec(),
            config.timer().cycles_per_tick(),
        )?;
        Ok(AppRun {
            pmu,
            counted_loops: program.procs[pid.index()].counted_loops.clone(),
            block_costs: mote.static_block_costs(pid).to_vec(),
            edge_costs: mote.static_edge_costs(pid).to_vec(),
            samples,
            truth_profile: truth.profile(pid).clone(),
            truth: truth.branch_probs(pid, cfg),
            invocations: truth.invocations(pid),
            cycles_used,
            program,
            pid,
        })
    }
}

// ---------------------------------------------------------------- Corrupt

/// Applies the configured measurement-channel fault plan to the run's tick
/// stream (a no-op without a plan). Ground truth is untouched: faults model
/// the record channel, not the execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Corrupt;

impl Stage for Corrupt {
    type Input = AppRun;
    type Output = AppRun;

    fn name(&self) -> &'static str {
        "corrupt"
    }

    fn run(&self, config: &RunConfig, mut run: AppRun) -> Result<AppRun, PipelineError> {
        if let Some(plan) = &config.fault {
            run.samples = plan.build().apply(&run.samples);
        }
        Ok(run)
    }
}

// --------------------------------------------------------------- Estimate

/// An estimate scored against the run's ground truth.
#[derive(Debug, Clone)]
pub struct Estimated {
    /// The estimated parameters and method diagnostics.
    pub estimate: CoreEstimate,
    /// Accuracy versus the ground truth the estimator never saw.
    pub accuracy: AccuracyReport,
    /// Placement-facing confidence: the robust ladder's confidence, or
    /// `1.0` for the naive estimator (which always trusts itself).
    pub confidence: f64,
    /// The full ladder outcome when the robust estimator ran.
    pub robust: Option<RobustEstimate>,
}

/// The `Estimate` stage's pass-through artifact: the run plus its estimate.
#[derive(Debug)]
pub struct EstimatedRun {
    /// The measured run.
    pub run: AppRun,
    /// Its scored estimate.
    pub estimated: Estimated,
}

/// Estimates branch probabilities from the run's tick samples alone and
/// scores them against ground truth.
#[derive(Debug, Clone, Copy, Default)]
pub struct EstimateStage;

impl Stage for EstimateStage {
    type Input = AppRun;
    type Output = EstimatedRun;

    fn name(&self) -> &'static str {
        "estimate"
    }

    fn run(&self, config: &RunConfig, run: AppRun) -> Result<EstimatedRun, PipelineError> {
        let estimated = estimate_collected(config, &run, &config.estimator)?;
        Ok(EstimatedRun { run, estimated })
    }
}

/// Estimates branch probabilities from any duration-sample view (a
/// monolithic [`TimingSamples`], merged fleet
/// [`SuffStats`](ct_core::SuffStats), …) with the naive front door,
/// trying the counted-loop unrolled model first when `unroll` is set, trip
/// counts are proved, and no explicit method is forced — exactly what a
/// profile-guided compiler with the program's IR in hand would do —
/// falling back to the plain estimator on any unrolled failure.
///
/// # Errors
///
/// [`PipelineError::Estimate`] when the plain estimator fails hard.
pub fn estimate_probs<S: DurationSamples + Sync + ?Sized>(
    cfg: &Cfg,
    counted_loops: &[(BlockId, u64)],
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    opts: EstimateOptions,
    unroll: bool,
) -> Result<CoreEstimate, PipelineError> {
    if unroll && opts.method.is_none() && !counted_loops.is_empty() {
        if let Ok(u) = estimate_unrolled(
            cfg,
            counted_loops,
            block_costs,
            edge_costs,
            samples,
            opts.em,
        ) {
            return Ok(CoreEstimate {
                probs: u.probs,
                method: Method::EmUnrolled,
                iterations: u.iterations,
                // The unrolled path only returns Ok on a finished EM run.
                converged: true,
                final_delta: 0.0,
                loglik: Some(u.loglik),
                unexplained: u.unexplained,
            });
        }
    }
    Ok(estimate(cfg, block_costs, edge_costs, samples, opts)?)
}

/// Shared estimation logic over a collected run: naive front door or the
/// robust degradation ladder, per `choice`.
pub(crate) fn estimate_collected(
    config: &RunConfig,
    run: &AppRun,
    choice: &EstimatorChoice,
) -> Result<Estimated, PipelineError> {
    let cfg = run.cfg();
    let (estimate, confidence, robust) = match choice {
        EstimatorChoice::Naive(opts) => {
            let est = estimate_probs(
                cfg,
                &run.counted_loops,
                &run.block_costs,
                &run.edge_costs,
                &run.samples,
                *opts,
                config.unroll_counted,
            )?;
            (est, 1.0, None)
        }
        EstimatorChoice::Robust(opts) => {
            let r = estimate_robust(cfg, &run.block_costs, &run.edge_costs, &run.samples, *opts);
            (r.estimate.clone(), r.confidence, Some(r))
        }
    };
    let accuracy = compare(
        cfg,
        &estimate.probs,
        &run.truth,
        &run.truth_profile,
        run.invocations,
    );
    Ok(Estimated {
        estimate,
        accuracy,
        confidence,
        robust,
    })
}

/// Streaming estimation over a collected run: fold the run's sufficient
/// statistics into the caller's [`IncrementalEm`] accumulator and
/// re-estimate warm-started from the previous optimum.
pub(crate) fn estimate_incremental_collected(
    run: &AppRun,
    inc: &mut IncrementalEm,
) -> Result<Estimated, PipelineError> {
    use ct_core::estimator::EstimateError;
    let cfg = run.cfg();
    inc.ingest(&ct_core::stream::SuffStats::from_samples(&run.samples))
        .map_err(|e| PipelineError::from(EstimateError::Em(e)))?;
    let r = inc
        .reestimate(cfg, &run.block_costs, &run.edge_costs)
        .map_err(|e| PipelineError::from(EstimateError::Em(e)))?;
    let estimate = CoreEstimate {
        probs: r.probs.clone(),
        method: Method::Em,
        iterations: r.iterations,
        converged: r.converged,
        final_delta: r.final_delta,
        loglik: Some(r.loglik),
        unexplained: r.unexplained,
    };
    let accuracy = compare(
        cfg,
        &estimate.probs,
        &run.truth,
        &run.truth_profile,
        run.invocations,
    );
    Ok(Estimated {
        estimate,
        accuracy,
        confidence: 1.0,
        robust: None,
    })
}

// ------------------------------------------------------------------ Place

/// The `Place` stage's pass-through artifact.
#[derive(Debug)]
pub struct PlacedRun {
    /// The measured run.
    pub run: AppRun,
    /// Its scored estimate.
    pub estimated: Estimated,
    /// The optimized layout the estimate produced.
    pub layout: Layout,
}

/// Derives edge frequencies from the estimate and computes an optimized
/// layout, gated on the estimate's confidence (a low-confidence estimate
/// keeps the natural layout — reordering on noise only wears the flash).
#[derive(Debug, Clone, Copy)]
pub struct Place {
    /// Placement strategy.
    pub strategy: Strategy,
}

impl Default for Place {
    fn default() -> Place {
        Place {
            strategy: Strategy::Best,
        }
    }
}

impl Stage for Place {
    type Input = EstimatedRun;
    type Output = PlacedRun;

    fn name(&self) -> &'static str {
        "place"
    }

    fn run(&self, config: &RunConfig, input: EstimatedRun) -> Result<PlacedRun, PipelineError> {
        let EstimatedRun { run, estimated } = input;
        let cfg = run.cfg();
        let freq = measure::edge_frequencies(cfg, &estimated.estimate.probs)
            .map_err(PipelineError::Frequency)?;
        let layout = place_with_confidence(
            cfg,
            &freq,
            estimated.confidence,
            MIN_PLACEMENT_CONFIDENCE,
            &config.penalties(),
            self.strategy,
        );
        Ok(PlacedRun {
            run,
            estimated,
            layout,
        })
    }
}

// --------------------------------------------------------------- Evaluate

/// Replays the identical workload (same seed) on the natural and the
/// optimized layout with a cycle-accurate timer and no instrumentation
/// overhead, measuring what placement actually bought.
#[derive(Debug, Clone, Copy, Default)]
pub struct Evaluate;

impl Stage for Evaluate {
    type Input = PlacedRun;
    type Output = PipelineReport;

    fn name(&self) -> &'static str {
        "evaluate"
    }

    fn run(&self, config: &RunConfig, input: PlacedRun) -> Result<PipelineReport, PipelineError> {
        let PlacedRun {
            run,
            estimated,
            layout,
        } = input;
        let before = replay(config, Layout::natural(run.cfg()))?;
        let after = replay(config, layout.clone())?;
        Ok(PipelineReport {
            run,
            estimated,
            layout,
            before,
            after,
        })
    }
}

/// Replays the configured workload on `layout` (cycle-accurate timer, zero
/// instrumentation overhead, same seed and inputs), returning the measured
/// layout cost and cycle total.
pub(crate) fn replay(config: &RunConfig, layout: Layout) -> Result<Evaluated, PipelineError> {
    let _span = ct_obs::Span::enter("stage.evaluate.replay");
    let mut replay_config = config.clone();
    replay_config.cycles_per_tick = VirtualTimer::cycle_accurate().cycles_per_tick();
    replay_config.ts_overhead = 0;
    replay_config.fault = None;
    let compiled = Compile.run(&replay_config, ())?;
    let deployed = Deploy {
        layout: Some(layout.clone()),
    }
    .run(&replay_config, compiled)?;
    let executed = Run.run(&replay_config, deployed)?;
    let run = Collect.run(&replay_config, executed)?;
    let cost = layout.evaluate(run.cfg(), &run.truth_profile, &config.penalties());
    Ok(Evaluated {
        cost,
        cycles: run.cycles_used,
        pmu: run.pmu,
    })
}

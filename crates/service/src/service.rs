//! The threaded estimation service: N producers feed K shard workers
//! through bounded queues; a coordinator thread harvests and reduces; the
//! front door serves from the latest reduced generation.
//!
//! ## Topology
//!
//! Each shard worker owns one [`Shard`] (delta accumulator + dedup
//! ledger) and drains one `std::sync::mpsc::sync_channel` of capacity
//! [`ServiceConfig::queue_depth`]. Producers hold cloneable
//! [`IngestHandle`]s and route batches by `tag.mote % K`; a full queue is
//! **explicit backpressure** — [`IngestHandle::ingest`] blocks (counting
//! `svc.backpressure`), [`IngestHandle::try_ingest`] returns a typed
//! [`IngestError::QueueFull`]. Harvest requests ride the same queues, so
//! FIFO ordering makes a harvest a consistent cut: it observes every batch
//! enqueued before it, and the delta/fresh-tag pair is taken atomically.
//!
//! ## Determinism
//!
//! Thread scheduling decides *when* batches reach shards and how many
//! reduce rounds happen — never what the accumulator converges to. After
//! producers quiesce, one [`EstimationService::drain`] leaves the global
//! statistics bitwise identical to the monolithic fold of the same
//! distinct batches, at any shard count, queue depth, producer count, or
//! polling cadence (see [`ReduceTier`]). Scheduling-dependent observability
//! (`svc.queue_depth`, `svc.backpressure`, `svc.reduce.*`, and the
//! `*_ns` latency / `queue_depth` histograms) is declared volatile to
//! `ct-obs-diff`; the value-shaped `svc.batch_samples` histogram and the
//! accepted/dedup counters stay part of the determinism contract.
//!
//! ## Observability caveat
//!
//! Counters bumped on worker threads drain into the global registry when
//! the worker exits (shutdown); producer threads must call
//! [`ct_obs::drain_thread`] before exiting, like any other thread in this
//! workspace.

use crate::api::{EstimateRequest, EstimateResponse, IngestError, ServiceError};
use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy};
use crate::config::ServiceConfig;
use crate::reduce::ReduceTier;
use crate::shard::{route, Shard, ShardHarvest};
use ct_cfg::graph::Cfg;
use ct_core::em::EmOptions;
use ct_core::samples::DurationSamples;
use ct_core::stream::{BatchTag, SuffStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What flows down a shard worker's queue.
enum ShardMsg {
    /// One tagged batch delta to ingest.
    Batch(BatchTag, SuffStats),
    /// Harvest request: reply with the delta and fresh tags on `0`.
    Harvest(mpsc::Sender<ShardReply>),
    /// Exit after processing everything already queued.
    Shutdown,
}

/// A worker's answer to a harvest request.
struct ShardReply {
    harvest: ShardHarvest,
    /// A sticky ingest failure (resolution mismatch) observed since the
    /// last harvest: rejected batches are dropped, counted under
    /// `svc.ingest.rejected`, and surfaced here so the coordinator fails
    /// loudly instead of silently under-counting.
    err: Option<String>,
}

fn worker(
    index: usize,
    cycles_per_tick: u64,
    seeded: Vec<BatchTag>,
    rx: Receiver<ShardMsg>,
    depth: Arc<AtomicU64>,
    stall_us: u64,
) {
    let mut shard = Shard::new(index, cycles_per_tick);
    shard.seed_ledger(seeded);
    let mut sticky_err: Option<String> = None;
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(tag, delta) => {
                if stall_us > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(stall_us));
                }
                match shard.ingest(tag, &delta) {
                    // A fresh batch stays counted in `depth` until a harvest
                    // folds it into a generation: the counter is the
                    // accepted-but-unreduced staleness the front door
                    // reports, not merely the queue occupancy. Uncounting it
                    // here (at receipt) made batches invisible to staleness
                    // while they sat in shard accumulators awaiting a
                    // reduce.
                    Ok(true) => {}
                    // A deduplicated redelivery never reaches a generation;
                    // uncount it now.
                    Ok(false) => {
                        depth.fetch_sub(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        depth.fetch_sub(1, Ordering::Relaxed);
                        ct_obs::Counter::new("svc.ingest.rejected").incr();
                        sticky_err = Some(e.to_string());
                    }
                }
            }
            ShardMsg::Harvest(reply) => {
                let r = ShardReply {
                    harvest: shard.harvest(),
                    err: sticky_err.take(),
                };
                // The harvest atomically hands the fresh batches to the
                // reduce tier; they stop being stale the moment they leave
                // the shard.
                depth.fetch_sub(r.harvest.fresh.len() as u64, Ordering::Relaxed);
                // The coordinator may already have given up; nothing to do.
                let _ = reply.send(r);
            }
            ShardMsg::Shutdown => break,
        }
    }
    ct_obs::drain_thread();
}

/// A cloneable producer-side handle: routes tagged batches to their shard
/// queues with explicit backpressure.
#[derive(Clone)]
pub struct IngestHandle {
    senders: Vec<SyncSender<ShardMsg>>,
    depths: Vec<Arc<AtomicU64>>,
    queue_depth: usize,
    /// Precomputed `svc.shard.<i>.queue_depth` histogram names, so the
    /// per-enqueue depth observation never formats on the hot path.
    depth_hists: Arc<Vec<String>>,
}

impl IngestHandle {
    /// Ingests one batch, blocking when the shard queue is full. The full
    /// condition bumps `svc.backpressure` before blocking, so engaged
    /// backpressure is visible even though no batch is ever lost.
    ///
    /// # Errors
    ///
    /// [`IngestError::Closed`] when the shard worker is gone.
    pub fn ingest(&self, tag: BatchTag, delta: SuffStats) -> Result<(), IngestError> {
        let started = std::time::Instant::now();
        let s = route(tag, self.senders.len());
        // Count the batch *before* it can be received: the worker uncounts
        // duplicates and rejects on receipt, so incrementing afterwards
        // would race the depth below zero. Fresh batches stay counted until
        // a harvest absorbs them.
        self.note_enqueued(s);
        let msg = match self.senders[s].try_send(ShardMsg::Batch(tag, delta)) {
            Ok(()) => {
                self.note_enqueue_latency(started);
                return Ok(());
            }
            Err(TrySendError::Full(msg)) => {
                ct_obs::Counter::new("svc.backpressure").incr();
                msg
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depths[s].fetch_sub(1, Ordering::Relaxed);
                return Err(IngestError::Closed { shard: s });
            }
        };
        self.senders[s].send(msg).map_err(|_| {
            self.depths[s].fetch_sub(1, Ordering::Relaxed);
            IngestError::Closed { shard: s }
        })?;
        self.note_enqueue_latency(started);
        Ok(())
    }

    /// Non-blocking ingest: a full shard queue returns the batch to the
    /// caller as a typed [`IngestError::QueueFull`] instead of blocking.
    ///
    /// # Errors
    ///
    /// [`IngestError::QueueFull`] under backpressure;
    /// [`IngestError::Closed`] when the shard worker is gone.
    pub fn try_ingest(&self, tag: BatchTag, delta: SuffStats) -> Result<(), IngestError> {
        let started = std::time::Instant::now();
        let s = route(tag, self.senders.len());
        self.note_enqueued(s);
        match self.senders[s].try_send(ShardMsg::Batch(tag, delta)) {
            Ok(()) => {
                self.note_enqueue_latency(started);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.depths[s].fetch_sub(1, Ordering::Relaxed);
                ct_obs::Counter::new("svc.backpressure").incr();
                Err(IngestError::QueueFull {
                    shard: s,
                    depth: self.queue_depth,
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depths[s].fetch_sub(1, Ordering::Relaxed);
                Err(IngestError::Closed { shard: s })
            }
        }
    }

    /// Approximate batches accepted but not yet folded into a reduce
    /// generation — queued plus sitting in shard accumulators (relaxed
    /// atomics: a telemetry number, not a synchronization primitive).
    pub fn queued(&self) -> u64 {
        self.depths.iter().map(|d| d.load(Ordering::Relaxed)).sum()
    }

    fn note_enqueued(&self, shard: usize) {
        let d = self.depths[shard].fetch_add(1, Ordering::Relaxed) + 1;
        // The gauge max-merges, so it reads as the high-watermark only — a
        // transient spike and sustained pressure look identical there. The
        // per-shard histogram carries the depth distribution over time.
        ct_obs::Gauge::new("svc.queue_depth").set(d as f64);
        ct_obs::hist_record(&self.depth_hists[shard], d);
    }

    fn note_enqueue_latency(&self, started: std::time::Instant) {
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ct_obs::hist_record("svc.ingest.enqueue_ns", ns);
    }
}

/// The long-running sharded estimation service: owns the shard workers,
/// the reduce tier, and the checkpoint policy.
pub struct EstimationService {
    senders: Vec<SyncSender<ShardMsg>>,
    depths: Vec<Arc<AtomicU64>>,
    depth_hists: Arc<Vec<String>>,
    workers: Vec<JoinHandle<()>>,
    tier: ReduceTier,
    config: ServiceConfig,
    policy: CheckpointPolicy,
    fingerprint: u64,
    /// Batch count at the last written snapshot (cadence bookkeeping).
    last_ckpt: u64,
    restored: bool,
}

impl EstimationService {
    /// Starts the shard workers with no checkpointing.
    pub fn start(
        config: &ServiceConfig,
        cycles_per_tick: u64,
        opts: EmOptions,
    ) -> EstimationService {
        EstimationService::launch(
            config,
            cycles_per_tick,
            ReduceTier::new(cycles_per_tick, opts),
            Vec::new(),
            CheckpointPolicy::disabled(),
            0,
            false,
        )
    }

    /// Starts the shard workers under a checkpoint policy, restoring from
    /// the policy's snapshot when one exists, decodes, matches
    /// `fingerprint`, and is internally consistent. A missing snapshot
    /// starts clean; a bad one is rejected (`ckpt.rejected` +
    /// `warn.ckpt_rejected`) and *also* starts clean — a snapshot can
    /// degrade a restart, never a run. `cfg` revalidates the snapshot's
    /// warm-start estimate.
    pub fn start_with_checkpoints(
        config: &ServiceConfig,
        cycles_per_tick: u64,
        opts: EmOptions,
        cfg: &Cfg,
        policy: CheckpointPolicy,
        fingerprint: u64,
    ) -> EstimationService {
        match EstimationService::try_restore(&policy, cycles_per_tick, opts, cfg, fingerprint) {
            Some(tier) => {
                let ledger: Vec<BatchTag> = tier.ledger().iter().copied().collect();
                EstimationService::launch(
                    config,
                    cycles_per_tick,
                    tier,
                    ledger,
                    policy,
                    fingerprint,
                    true,
                )
            }
            None => EstimationService::launch(
                config,
                cycles_per_tick,
                ReduceTier::new(cycles_per_tick, opts),
                Vec::new(),
                policy,
                fingerprint,
                false,
            ),
        }
    }

    fn reject(e: &CheckpointError) {
        ct_obs::Counter::new("ckpt.rejected").incr();
        ct_obs::emit("warn.ckpt_rejected", vec![("error", e.to_string().into())]);
        // After the emit, so the dump's tail contains the warning itself.
        ct_obs::flight::incident("ckpt_rejected");
    }

    fn try_restore(
        policy: &CheckpointPolicy,
        cycles_per_tick: u64,
        opts: EmOptions,
        cfg: &Cfg,
        fingerprint: u64,
    ) -> Option<ReduceTier> {
        let path = policy.path.as_ref()?;
        if !path.exists() {
            return None;
        }
        let ck = match Checkpoint::load(path) {
            Ok(ck) => ck,
            Err(e) => {
                EstimationService::reject(&e);
                return None;
            }
        };
        if ck.fingerprint != fingerprint {
            EstimationService::reject(&CheckpointError::ConfigMismatch {
                expected: fingerprint,
                got: ck.fingerprint,
            });
            return None;
        }
        // Service snapshots estimate on demand, so (unlike the fleet's
        // per-batch trail) an empty estimate with batches > 0 is legal.
        let consistent = ck.batches == ck.ledger.len() as u64
            && ck.generations <= ck.batches
            && DurationSamples::cycles_per_tick(&ck.stats) == cycles_per_tick;
        if !consistent {
            EstimationService::reject(&CheckpointError::Malformed(
                "snapshot sections disagree on batch count or resolution".into(),
            ));
            return None;
        }
        let last = match &ck.last {
            Some(e) => match e.to_em(cfg) {
                Ok(r) => Some(r),
                Err(e) => {
                    EstimationService::reject(&e);
                    return None;
                }
            },
            None => None,
        };
        ct_obs::Counter::new("ckpt.restored").incr();
        ct_obs::emit("ckpt.restored", vec![("batches", ck.batches.into())]);
        Some(ReduceTier::restore(
            cycles_per_tick,
            opts,
            ck.stats,
            last,
            ck.batches,
            ck.generations,
            ck.ledger,
            ck.cached,
        ))
    }

    fn launch(
        config: &ServiceConfig,
        cycles_per_tick: u64,
        tier: ReduceTier,
        ledger: Vec<BatchTag>,
        policy: CheckpointPolicy,
        fingerprint: u64,
        restored: bool,
    ) -> EstimationService {
        let shards = config.shards.max(1);
        let mut seeded: Vec<Vec<BatchTag>> = vec![Vec::new(); shards];
        for tag in ledger {
            seeded[route(tag, shards)].push(tag);
        }
        let mut senders = Vec::with_capacity(shards);
        let mut depths = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (i, tags) in seeded.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
            let depth = Arc::new(AtomicU64::new(0));
            let d = Arc::clone(&depth);
            let stall = config.ingest_stall_us;
            workers.push(std::thread::spawn(move || {
                worker(i, cycles_per_tick, tags, rx, d, stall);
            }));
            senders.push(tx);
            depths.push(depth);
        }
        let last_ckpt = tier.batches();
        let depth_hists = Arc::new(
            (0..shards)
                .map(|i| format!("svc.shard.{i}.queue_depth"))
                .collect::<Vec<String>>(),
        );
        EstimationService {
            senders,
            depths,
            depth_hists,
            workers,
            tier,
            config: config.clone(),
            policy,
            fingerprint,
            last_ckpt,
            restored,
        }
    }

    /// A producer-side handle (clone freely across producer threads).
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            senders: self.senders.clone(),
            depths: self.depths.clone(),
            queue_depth: self.config.queue_depth,
            depth_hists: Arc::clone(&self.depth_hists),
        }
    }

    /// True when the service resumed from a checkpoint at startup.
    pub fn restored(&self) -> bool {
        self.restored
    }

    /// Harvests every shard and absorbs the round into the reduce tier —
    /// the periodic reduce a coordinator polls. Returns the number of
    /// fresh batches absorbed (0 for a quiet round). When the checkpoint
    /// policy is enabled and the absorbed batch count crossed a multiple
    /// of [`CheckpointPolicy::every`], a snapshot is cut at this reduce
    /// boundary — off the ingest hot path by construction.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Shard`] when a worker is gone;
    /// [`ServiceError::Estimation`] when a worker rejected a batch
    /// (resolution mismatch) or the reduction itself fails.
    pub fn reduce(&mut self) -> Result<u64, ServiceError> {
        let (tx, rx) = mpsc::channel();
        for (i, s) in self.senders.iter().enumerate() {
            s.send(ShardMsg::Harvest(tx.clone()))
                .map_err(|_| ServiceError::Shard(format!("shard {i} queue closed")))?;
        }
        drop(tx);
        let mut harvests = Vec::with_capacity(self.senders.len());
        let mut sticky: Option<String> = None;
        for _ in 0..self.senders.len() {
            let reply = rx
                .recv()
                .map_err(|_| ServiceError::Shard("harvest reply channel closed".into()))?;
            if let Some(e) = reply.err {
                sticky = Some(e);
            }
            harvests.push(reply.harvest);
        }
        if let Some(e) = sticky {
            return Err(ServiceError::Estimation(ct_core::fb::FbError::Shape(e)));
        }
        let fresh = self.tier.absorb(harvests)?;
        if fresh > 0
            && self.policy.enabled()
            && self.tier.batches() / self.policy.every > self.last_ckpt / self.policy.every
        {
            if let Some(path) = self.policy.path.as_ref() {
                self.tier
                    .checkpoint(self.fingerprint, &[])
                    .save_observed(path);
                self.last_ckpt = self.tier.batches();
            }
        }
        Ok(fresh)
    }

    /// The `Drain` control verb: one final reduce after producers have
    /// quiesced. Because harvests ride the shard queues FIFO, a drain
    /// issued after every producer's last `ingest` returned observes every
    /// accepted batch — the global accumulator is then bitwise the
    /// monolithic fold of the distinct stream.
    ///
    /// # Errors
    ///
    /// Propagates [`EstimationService::reduce`] errors.
    pub fn drain(&mut self) -> Result<u64, ServiceError> {
        self.reduce()
    }

    /// The `Snapshot` control verb: cut a reduce boundary and return the
    /// checkpoint (also persisting it when the policy has a path).
    ///
    /// # Errors
    ///
    /// Propagates [`EstimationService::reduce`] errors.
    pub fn snapshot(&mut self) -> Result<Checkpoint, ServiceError> {
        self.reduce()?;
        let ck = self.tier.checkpoint(self.fingerprint, &[]);
        if let Some(path) = self.policy.path.as_ref() {
            ck.save_observed(path);
            self.last_ckpt = self.tier.batches();
        }
        Ok(ck)
    }

    /// The `Dump` control verb: writes the flight recorder's recent-event
    /// rings to `path` for post-mortem inspection (see
    /// [`ct_obs::flight`]). Works even when capture is disabled — the
    /// dump is then just its `flight.meta` header — so operators can
    /// always ask "what did the service see lately?" without first
    /// checking a knob.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the dump file.
    pub fn dump(&self, path: &std::path::Path) -> std::io::Result<()> {
        ct_obs::flight::dump_to(path, "dump-verb")
    }

    /// Serves a front-door request from the latest reduced generation.
    /// Staleness counts every accepted batch the estimate does not yet
    /// reflect — still queued *or* harvested-pending in a shard accumulator
    /// — matching the single-threaded core's `pending()` semantics. After a
    /// [`EstimationService::drain`] with quiesced producers it reads 0.
    ///
    /// # Errors
    ///
    /// Propagates [`ReduceTier::serve`] errors.
    pub fn serve(
        &mut self,
        req: &EstimateRequest,
        cfg: &Cfg,
        block_costs: &[u64],
        edge_costs: &[u64],
    ) -> Result<EstimateResponse, ServiceError> {
        let staleness = self.depths.iter().map(|d| d.load(Ordering::Relaxed)).sum();
        self.tier
            .serve(req, cfg, block_costs, edge_costs, staleness)
    }

    /// Distinct batches absorbed into the accumulator so far.
    pub fn batches(&self) -> u64 {
        self.tier.batches()
    }

    /// Completed reduce generations.
    pub fn generation(&self) -> u64 {
        self.tier.generation()
    }

    /// The cumulative statistics at the last reduce boundary.
    pub fn stats(&self) -> &SuffStats {
        self.tier.stats()
    }

    /// Stops every shard worker (they finish their queues first) and joins
    /// them, draining their thread-local observability buffers into the
    /// global registry.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Shard`] when a worker panicked.
    pub fn shutdown(self) -> Result<(), ServiceError> {
        for (i, s) in self.senders.iter().enumerate() {
            s.send(ShardMsg::Shutdown)
                .map_err(|_| ServiceError::Shard(format!("shard {i} queue closed early")))?;
        }
        for (i, w) in self.workers.into_iter().enumerate() {
            w.join()
                .map_err(|_| ServiceError::Shard(format!("shard {i} worker panicked")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceCore;

    fn delta_of(ticks: &[u64]) -> SuffStats {
        let mut s = SuffStats::new(1);
        ticks.iter().for_each(|&t| s.push(t));
        s
    }

    fn tag(mote: u64, seq: u64) -> BatchTag {
        BatchTag { mote, seq }
    }

    fn pool(n: u64) -> Vec<(BatchTag, SuffStats)> {
        (0..n)
            .map(|i| {
                let t = if i % 4 == 0 { 215 } else { 115 };
                (tag(i % 11, i / 11), delta_of(&[t, t + 1]))
            })
            .collect()
    }

    #[test]
    fn threaded_drain_matches_the_single_threaded_core_bitwise() {
        let deliveries = pool(60);
        let mut core = ServiceCore::new(&ServiceConfig::new().shards(3), 1, EmOptions::default());
        for (t, d) in &deliveries {
            core.ingest(*t, d).unwrap();
        }
        core.reduce().unwrap();

        for producers in [1usize, 4] {
            let mut svc = EstimationService::start(
                &ServiceConfig::new().shards(3).queue_depth(4),
                1,
                EmOptions::default(),
            );
            std::thread::scope(|scope| {
                for p in 0..producers {
                    let handle = svc.handle();
                    let slice: Vec<(BatchTag, SuffStats)> = deliveries
                        .iter()
                        .skip(p)
                        .step_by(producers)
                        .cloned()
                        .collect();
                    scope.spawn(move || {
                        for (t, d) in slice {
                            handle.ingest(t, d).unwrap();
                        }
                        ct_obs::drain_thread();
                    });
                }
            });
            svc.drain().unwrap();
            assert_eq!(svc.stats(), core.stats(), "producers={producers}");
            assert_eq!(svc.batches(), 60);
            svc.shutdown().unwrap();
        }
    }

    #[test]
    fn try_ingest_reports_backpressure_and_loses_nothing() {
        let mut svc = EstimationService::start(
            &ServiceConfig::new()
                .shards(1)
                .queue_depth(1)
                .ingest_stall_us(2_000),
            1,
            EmOptions::default(),
        );
        let handle = svc.handle();
        // Slam one stalled shard until the bounded queue refuses.
        let mut refused = 0u64;
        for i in 0..12u64 {
            let t = tag(0, i);
            match handle.try_ingest(t, delta_of(&[115])) {
                Ok(()) => {}
                Err(IngestError::QueueFull { shard, depth }) => {
                    assert_eq!((shard, depth), (0, 1));
                    refused += 1;
                    // Fall back to the blocking path: backpressure, not loss.
                    handle.ingest(t, delta_of(&[115])).unwrap();
                }
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
        assert!(refused > 0, "a depth-1 queue under stall never filled");
        svc.drain().unwrap();
        assert_eq!(svc.batches(), 12, "every batch arrived exactly once");
        svc.shutdown().unwrap();
    }

    #[test]
    fn staleness_counts_unreduced_batches_and_drain_zeroes_it() {
        let cfg = ct_cfg::builder::diamond();
        let (bc, ec) = ([10u64, 100, 200, 5], [0u64; 4]);
        let mut svc =
            EstimationService::start(&ServiceConfig::new().shards(2), 1, EmOptions::default());
        let handle = svc.handle();

        // One fresh batch plus a duplicate redelivery; the drain's FIFO
        // barrier guarantees both were processed before we look.
        handle.ingest(tag(0, 0), delta_of(&[115, 215])).unwrap();
        handle.ingest(tag(0, 0), delta_of(&[115, 215])).unwrap();
        assert_eq!(svc.drain().unwrap(), 1);
        let settled = svc
            .serve(&EstimateRequest::latest("d"), &cfg, &bc, &ec)
            .unwrap();
        assert_eq!(settled.staleness, 0, "drain left nothing unreduced");
        assert_eq!((settled.generation, settled.batches), (1, 1));

        // Two accepted-but-unreduced batches must read as staleness 2 the
        // moment `ingest` returns — they are counted at enqueue and stay
        // counted until a reduce harvests them, so the read is
        // deterministic even though the workers race ahead.
        handle.ingest(tag(1, 0), delta_of(&[215])).unwrap();
        handle.ingest(tag(2, 0), delta_of(&[115])).unwrap();
        let stale = svc
            .serve(&EstimateRequest::latest("d"), &cfg, &bc, &ec)
            .unwrap();
        assert_eq!(stale.staleness, 2, "accepted batches await reduction");
        assert_eq!((stale.generation, stale.batches), (1, 1));

        // Drain folds them in: depth back to 0 and the serve is current.
        assert_eq!(svc.drain().unwrap(), 2);
        assert_eq!(handle.queued(), 0);
        let fresh = svc
            .serve(&EstimateRequest::latest("d"), &cfg, &bc, &ec)
            .unwrap();
        assert_eq!(fresh.staleness, 0);
        assert_eq!((fresh.generation, fresh.batches), (2, 3));
        svc.shutdown().unwrap();
    }

    #[test]
    fn worker_surfaces_resolution_mismatch_as_typed_error() {
        let mut svc =
            EstimationService::start(&ServiceConfig::new().shards(2), 1, EmOptions::default());
        let handle = svc.handle();
        handle.ingest(tag(0, 0), delta_of(&[115])).unwrap();
        handle.ingest(tag(1, 0), SuffStats::new(8)).unwrap();
        let err = svc.drain().unwrap_err();
        assert!(matches!(err, ServiceError::Estimation(_)), "{err}");
        svc.shutdown().unwrap();
    }
}

//! E10 — Counted-loop unrolling ablation (Table; extension experiment).
//!
//! Claim evaluated: the compiler-assisted unrolled model (trip-count
//! analysis + model unrolling + tied copy parameters) is what makes
//! loop-heavy kernels estimable; the plain Markov model's geometric loop
//! approximation lets EM trade loop iterations against data branches.

use ct_bench::{f4, run_app, write_result, Mcu, Table};
use ct_core::accuracy::compare;
use ct_core::estimator::{estimate, EstimateOptions, Method};
use ct_core::unrolled::estimate_unrolled;
use ct_mote::timer::VirtualTimer;

fn main() {
    let n = 4_000;
    let mut table = Table::new(vec![
        "app",
        "counted loops",
        "plain EM",
        "EM+unroll",
        "moments",
        "unrolled blocks",
    ]);

    for app in ct_apps::all_apps() {
        let run = run_app(&app, Mcu::Avr, n, VirtualTimer::cycle_accurate(), 0, 10_000);
        if run.counted_loops.is_empty() {
            continue;
        }
        let cfg = run.cfg();

        let plain = estimate(
            cfg,
            &run.block_costs,
            &run.edge_costs,
            &run.samples,
            EstimateOptions {
                method: Some(Method::Em),
                ..Default::default()
            },
        )
        .map(|e| {
            compare(
                cfg,
                &e.probs,
                &run.truth,
                &run.truth_profile,
                run.invocations,
            )
            .weighted_mae
        });

        let unrolled = estimate_unrolled(
            cfg,
            &run.counted_loops,
            &run.block_costs,
            &run.edge_costs,
            &run.samples,
            Default::default(),
        )
        .map(|u| {
            compare(
                cfg,
                &u.probs,
                &run.truth,
                &run.truth_profile,
                run.invocations,
            )
            .weighted_mae
        });

        let moments = estimate(
            cfg,
            &run.block_costs,
            &run.edge_costs,
            &run.samples,
            EstimateOptions {
                method: Some(Method::Moments),
                ..Default::default()
            },
        )
        .map(|e| {
            compare(
                cfg,
                &e.probs,
                &run.truth,
                &run.truth_profile,
                run.invocations,
            )
            .weighted_mae
        });

        let unrolled_blocks = ct_cfg::unroll::unroll(cfg, &run.counted_loops)
            .map(|u| u.cfg.len().to_string())
            .unwrap_or_else(|_| "-".into());

        let fmt = |r: Result<f64, _>| match r {
            Ok(v) => f4(v),
            Err(_) => "failed".to_string(),
        };
        table.row(vec![
            app.name.to_string(),
            run.counted_loops.len().to_string(),
            fmt(plain.map_err(|_: ct_core::estimator::EstimateError| ())),
            fmt(unrolled.map_err(|_: ct_core::unrolled::UnrolledError| ())),
            fmt(moments.map_err(|_: ct_core::estimator::EstimateError| ())),
            unrolled_blocks,
        ]);
        eprintln!("e10: {} done", app.name);
    }

    let out = format!(
        "# E10 — Counted-loop unrolling ablation (weighted MAE)\n\n\
         {n} samples, cycle-accurate timer, apps with compiler-proved trip counts only.\n\
         Plain EM runs on the geometric loop model; EM+unroll runs on the\n\
         deterministic unrolled model with copy parameters tied.\n\n{}",
        table.to_markdown()
    );
    println!("{out}");
    write_result("e10_unroll_ablation.md", &out);
}

//! Criterion microbenchmarks: absorbing-chain analysis and time-expanded
//! table construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ct_apps::synthetic::diamond_chain_problem;
use ct_core::fb::{compute_tables, FbParams};
use ct_markov::{chain_from_cfg, AbsorbingAnalysis};
use std::hint::black_box;

fn bench_markov(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov");
    for k in [2usize, 4, 8] {
        let (cfg, bc, ec, truth) = diamond_chain_problem(k, 21);
        group.bench_with_input(BenchmarkId::new("absorbing", k), &k, |b, _| {
            let chain = chain_from_cfg(&cfg, &truth).unwrap();
            b.iter(|| black_box(AbsorbingAnalysis::new(&chain).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("fb_tables", k), &k, |b, _| {
            b.iter(|| {
                black_box(compute_tables(&cfg, &bc, &ec, &truth, FbParams::default()).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_markov);
criterion_main!(benches);

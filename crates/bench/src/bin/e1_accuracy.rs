//! E1 — Estimation accuracy vs sample count (Table).
//!
//! Claim evaluated: end-to-end timing alone recovers branch probabilities,
//! improving with more samples. Cycle-accurate timer isolates the
//! statistical (not quantization) error.

use ct_bench::{estimate_run, f4, run_app, write_result, Mcu, Table};
use ct_core::estimator::EstimateOptions;
use ct_mote::timer::VirtualTimer;

fn main() {
    let sample_counts = [100usize, 500, 1_000, 5_000, 20_000];
    let mut table = Table::new(vec![
        "app",
        "branches",
        "n=100",
        "n=500",
        "n=1000",
        "n=5000",
        "n=20000",
        "method",
    ]);

    for app in ct_apps::all_apps() {
        let mut cells = vec![app.name.to_string()];
        let mut method = String::new();
        for (i, &n) in sample_counts.iter().enumerate() {
            let run = run_app(&app, Mcu::Avr, n, VirtualTimer::cycle_accurate(), 0, 1000 + i as u64);
            let (est, acc) = estimate_run(&run, EstimateOptions::default());
            method = est.method.to_string();
            if i == 0 {
                cells.push(acc.n_branches.to_string());
            }
            cells.push(f4(acc.weighted_mae));
        }
        cells.push(method);
        table.row(cells);
        eprintln!("e1: {} done", app.name);
    }

    let out = format!(
        "# E1 — Estimation accuracy (weighted MAE of branch probabilities) vs sample count\n\n\
         Cycle-accurate timer; AVR cost model; seed family 1000+.\n\n{}",
        table.to_markdown()
    );
    println!("{out}");
    write_result("e1_accuracy.md", &out);
}

//! `ct-obs-diff` — compare two run manifests for deterministic-content
//! agreement (counters, PMU banks, span census, audit trail).
//!
//! Usage: `ct-obs-diff A.manifest.json B.manifest.json`. Exits 0 when the
//! manifests agree, 1 on any divergence (counter drift, differing audit
//! trails), and 2 when an input cannot be read or parsed — so CI can
//! distinguish "the run is nondeterministic" from "the gate is broken".

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") || args.len() != 2 {
        eprintln!("usage: ct-obs-diff A.manifest.json B.manifest.json");
        eprintln!("exit: 0 = deterministic content agrees, 1 = divergence, 2 = bad input");
        return if args.len() == 2 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }
    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let (a, b) = match (read(&args[0]), read(&args[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("ct-obs-diff: {e}");
            return ExitCode::from(2);
        }
    };
    match ct_obs::diff_manifests(&a, &b) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ct-obs-diff: {e}");
            ExitCode::from(2)
        }
    }
}

//! `ct-obs-top` — one-shot service-telemetry report from a run manifest.
//!
//! Renders the fleet-scale service's ingest/queue/reduce/serve breakdown
//! with percentiles (from the manifest's `hists` section) and a per-shard
//! table (from the `svc.shard.<i>.*` names). The top-style view of "where
//! is the service spending its time" without replaying a trace stream.
//!
//! Usage: `ct-obs-top MANIFEST.json`. Exits 0 on success, 1 when the
//! manifest carries no service telemetry (so CI can assert instrumented
//! runs actually recorded it), and 2 when the input cannot be read or
//! parsed.

use std::collections::BTreeMap;
use std::process::ExitCode;

use ct_obs::json::{self, Json};

#[derive(Default, Clone, Copy)]
struct HistRow {
    count: u64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
}

fn field(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_num).map_or(0, |n| n as u64)
}

fn hist_row(v: &Json) -> HistRow {
    HistRow {
        count: field(v, "count"),
        p50: field(v, "p50"),
        p90: field(v, "p90"),
        p99: field(v, "p99"),
        max: field(v, "max"),
    }
}

fn entries<'a>(doc: &'a Json, section: &str) -> Vec<(&'a str, &'a Json)> {
    match doc.get(section) {
        Some(Json::Obj(fields)) => fields.iter().map(|(k, v)| (k.as_str(), v)).collect(),
        _ => Vec::new(),
    }
}

fn shard_metric(name: &str) -> Option<(u64, &str)> {
    let rest = name.strip_prefix("svc.shard.")?;
    let (idx, metric) = rest.split_once('.')?;
    Some((idx.parse().ok()?, metric))
}

fn print_hist_line(label: &str, h: HistRow) {
    println!(
        "{label:<26} {:>9} {:>12} {:>12} {:>12} {:>12}",
        h.count, h.p50, h.p90, h.p99, h.max
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") || args.len() != 1 {
        eprintln!("usage: ct-obs-top MANIFEST.json");
        eprintln!("exit: 0 = ok, 1 = no service telemetry in manifest, 2 = bad input");
        return if args.len() == 1 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }
    let path = &args[0];
    let text = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ct-obs-top: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ct-obs-top: {path} is not a valid manifest: {e}");
            return ExitCode::from(2);
        }
    };

    let counters: BTreeMap<&str, u64> = entries(&doc, "counters")
        .into_iter()
        .filter(|(k, _)| k.starts_with("svc."))
        .map(|(k, v)| (k, v.as_num().map_or(0, |n| n as u64)))
        .collect();
    let hists: BTreeMap<&str, HistRow> = entries(&doc, "hists")
        .into_iter()
        .filter(|(k, _)| k.starts_with("svc."))
        .map(|(k, v)| (k, hist_row(v)))
        .collect();
    if counters.is_empty() && hists.is_empty() {
        eprintln!("ct-obs-top: {path} carries no service telemetry (no svc.* metrics)");
        return ExitCode::FAILURE;
    }

    let name = doc.get("name").and_then(Json::as_str).unwrap_or("?");
    let mut shards: BTreeMap<u64, (u64, u64, Option<HistRow>)> = BTreeMap::new();
    for (k, n) in &counters {
        if let Some((idx, metric)) = shard_metric(k) {
            let row = shards.entry(idx).or_default();
            match metric {
                "accepted" => row.0 = *n,
                "dedup" => row.1 = *n,
                _ => {}
            }
        }
    }
    for (k, h) in &hists {
        if let Some((idx, "queue_depth")) = shard_metric(k) {
            shards.entry(idx).or_default().2 = Some(*h);
        }
    }

    println!("== {name}: service breakdown ==");
    let scalar = |key: &str| counters.get(key).copied().unwrap_or(0);
    println!(
        "ingested={} dedup={} backpressure={} serves={} reduce_rounds={}",
        scalar("svc.ingest.accepted"),
        scalar("svc.ingest.dedup"),
        scalar("svc.backpressure"),
        scalar("svc.serve"),
        scalar("svc.reduce.generations"),
    );
    println!(
        "{:<26} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "latency/size", "count", "p50", "p90", "p99", "max"
    );
    // The canonical service pipeline order, then anything else svc.*.
    let pipeline = [
        ("svc.ingest.enqueue_ns", "ingest enqueue (ns)"),
        ("svc.batch_samples", "batch size (samples)"),
        ("svc.reduce.latency_ns", "reduce round (ns)"),
        ("svc.serve.latency_ns", "serve (ns)"),
    ];
    for (key, label) in pipeline {
        if let Some(h) = hists.get(key) {
            print_hist_line(label, *h);
        }
    }
    for (k, h) in &hists {
        if pipeline.iter().any(|(key, _)| key == k) || shard_metric(k).is_some() {
            continue;
        }
        print_hist_line(k, *h);
    }
    if !shards.is_empty() {
        println!("-- per shard --");
        println!(
            "{:>5} {:>10} {:>10} {:>11} {:>11} {:>11}",
            "shard", "accepted", "dedup", "depth_p50", "depth_p99", "depth_max"
        );
        for (idx, (accepted, dedup, depth)) in &shards {
            let d = depth.unwrap_or_default();
            println!(
                "{idx:>5} {accepted:>10} {dedup:>10} {:>11} {:>11} {:>11}",
                d.p50, d.p99, d.max
            );
        }
    }
    ExitCode::SUCCESS
}

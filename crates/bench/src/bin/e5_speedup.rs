//! E5 — End-to-end cycle improvement after placement (Figure).
//!
//! Claim evaluated: the misprediction reduction of E4 translates into a
//! measurable whole-workload cycle saving, and the estimated profile
//! captures most of the saving available to the exact profile.

use ct_bench::{f4, write_result, Table};
use ct_cfg::layout::Layout;
use ct_mote::timer::VirtualTimer;
use ct_pipeline::{random_layout, EnvConfig, Mcu, RunConfig, Session};
use ct_placement::Strategy;

fn main() {
    let env = EnvConfig::load();
    eprintln!("e5: {}", env.banner());
    let n = env.pick(3_000, 400);
    let seed = env.seed_or(5_000);
    let mcu = Mcu::Avr;
    let mut table = Table::new(vec![
        "app",
        "natural cycles",
        "random",
        "PH(true)",
        "PH(estimated)",
        "captured",
    ]);

    let apps = ct_apps::all_apps();
    let apps = &apps[..env.pick(apps.len(), 2)];
    for app in apps {
        let session = Session::new(
            RunConfig::for_app(app.clone())
                .on(mcu)
                .invocations(n)
                .resolution(VirtualTimer::mhz1_at_8mhz().cycles_per_tick())
                .seeded(seed),
        );
        let run = session.collect().expect("bundled apps must not trap");
        let est = session.estimate(&run).expect("estimation succeeds");
        let cfg = run.cfg().clone();

        let layouts: Vec<Layout> = vec![
            Layout::natural(&cfg),
            random_layout(&cfg, 77),
            session
                .place(&run, &run.truth, Strategy::Best)
                .expect("true profile places"),
            session
                .place(&run, &est.estimate.probs, Strategy::Best)
                .expect("estimated profile places"),
        ];
        let cycles: Vec<u64> = layouts
            .iter()
            .map(|l| session.evaluate(l).expect("replay must not trap").cycles)
            .collect();

        let base = cycles[0] as f64;
        let saved_true = base - cycles[2] as f64;
        let saved_est = base - cycles[3] as f64;
        let captured = if saved_true > 0.0 {
            saved_est / saved_true
        } else {
            1.0
        };
        table.row(vec![
            app.name.to_string(),
            cycles[0].to_string(),
            f4(cycles[1] as f64 / base),
            f4(cycles[2] as f64 / base),
            f4(cycles[3] as f64 / base),
            f4(captured),
        ]);
        eprintln!("e5: {} done", app.name);
    }

    let out = format!(
        "# E5 — Whole-workload cycles by layout (normalized to the natural layout)\n\n\
         {n} invocations, identical inputs per layout (seed {seed}); placement = best of\n\
         Pettis–Hansen / greedy traces. `captured` = estimated-profile saving as a\n\
         fraction of the exact-profile saving (1.0 = estimation loses nothing).\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e5_speedup.md", &out);
    }
}

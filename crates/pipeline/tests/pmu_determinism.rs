//! PMU determinism golden test: virtual-PMU counters are a pure function
//! of the executed path, so they must be bitwise identical across thread
//! counts, across fleet-vs-session composition, and across traced and
//! untraced runs — the counter half of the zero-observer-effect contract
//! (`trace_golden` pins the estimation half).
//!
//! One `#[test]` owns the process globals (ct-obs registry, `CT_THREADS`);
//! splitting it would race the harness's parallel test threads.

use ct_pipeline::{Fleet, PmuSnapshot, RunConfig, Session};

fn fleet_pmu(threads: &str, motes: usize) -> PmuSnapshot {
    std::env::set_var("CT_THREADS", threads);
    ct_obs::reset();
    let config = RunConfig::new("sense").invocations(150).seeded(21);
    let fr = Fleet::new(config, motes).run().expect("fleet runs");
    ct_obs::reset();
    fr.pmu
}

#[test]
fn pmu_counters_are_thread_and_observer_insensitive() {
    // Fleet merge order is a left fold over par_map results; any thread
    // count must produce the identical counter bank.
    let t1 = fleet_pmu("1", 3);
    let t4 = fleet_pmu("4", 3);
    assert_eq!(t1, t4, "PMU counters depend on CT_THREADS");

    // Fleet(1) is defined to reproduce the single-mote Session path.
    let f1 = fleet_pmu("1", 1);
    std::env::set_var("CT_THREADS", "1");
    ct_obs::reset();
    let single = Session::new(RunConfig::new("sense").invocations(150).seeded(21))
        .collect()
        .expect("session collects");
    ct_obs::reset();
    assert_eq!(f1, single.pmu, "Fleet(1) PMU differs from Session");

    // Tracing must not perturb the counters (the PMU never sees the
    // observability layer at all — pin it anyway).
    ct_obs::reset();
    ct_obs::set_stream_enabled(true);
    let traced = Session::new(RunConfig::new("sense").invocations(150).seeded(21))
        .collect()
        .expect("traced session collects");
    ct_obs::set_stream_enabled(false);
    ct_obs::reset();
    assert_eq!(single.pmu, traced.pmu, "tracing perturbed PMU counters");

    // And the bank is not trivially empty: the workload branched.
    assert!(t1.total.cond_taken + t1.total.cond_not_taken > 0);
    assert!(t1.total.calls >= 450, "3 motes x 150 invocations");
    assert!(t1.total.cycles > 0);
}

//! The recorder: thread-local buffers merged into a global registry.
//!
//! # Determinism contract
//!
//! Instrumented code runs under `CT_THREADS`-way parallelism, so the
//! recorder follows the same discipline as `SuffStats` in `ct-core`:
//! every merge is associative and commutative, and a [`snapshot`] sorts
//! events by their [`Event::stable_key`]. The *content* of a snapshot
//! (event names and non-volatile fields, counter values, span hit counts)
//! is therefore identical across thread counts; only timing-valued fields
//! (`wall_ns`, `cpu_ticks`) vary run to run.
//!
//! Each thread accumulates into a thread-local buffer; the buffer drains
//! into the global registry when the thread calls
//! [`snapshot`]/[`drain_thread`], with the TLS destructor as a last-resort
//! drain at thread exit. Thread pools must drain **explicitly** at the end
//! of each worker closure (`ct-stats::par_map` does): `thread::scope`
//! unblocks when worker closures return, but TLS destructors run *after*
//! that signal, so a coordinator relying on the destructor drain can
//! snapshot before worker buffers merge and undercount by a
//! thread-schedule-dependent amount.
//!
//! Span and counter aggregation is always on (it is cheap and feeds the
//! run manifest); the *event stream* is gated by [`stream_enabled`], which
//! defaults to on only when `CT_TRACE` or `CT_TRACE_JSON` is set.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once};
use std::time::Instant;

use crate::event::{Event, Value};
use crate::hist::HistData;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Number of times the span was entered.
    pub count: u64,
    /// Total wall-clock time inside the span, nanoseconds.
    pub wall_ns: u64,
    /// Total process CPU time (user+system, `/proc` clock ticks) elapsed
    /// while inside the span. Process-wide, so overlapping spans on
    /// different threads double-count; meaningful for the coarse,
    /// non-overlapping pipeline-stage spans. Zero off Linux.
    pub cpu_ticks: u64,
}

impl SpanAgg {
    fn absorb(&mut self, other: SpanAgg) {
        self.count += other.count;
        self.wall_ns = self.wall_ns.saturating_add(other.wall_ns);
        self.cpu_ticks = self.cpu_ticks.saturating_add(other.cpu_ticks);
    }
}

#[derive(Debug, Default)]
struct Buffers {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, HistData>,
    events: Vec<Event>,
}

impl Buffers {
    const fn new() -> Self {
        Buffers {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.events.is_empty()
    }

    /// Commutative, associative merge (gauges resolve by max).
    fn absorb(&mut self, other: Buffers) {
        for (name, agg) in other.spans {
            self.spans.entry(name).or_default().absorb(agg);
        }
        for (name, n) in other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        for (name, v) in other.gauges {
            let slot = self.gauges.entry(name).or_insert(f64::NEG_INFINITY);
            if v > *slot {
                *slot = v;
            }
        }
        for (name, h) in other.hists {
            match self.hists.get_mut(&name) {
                Some(slot) => slot.merge(&h),
                None => {
                    self.hists.insert(name, h);
                }
            }
        }
        self.events.extend(other.events);
    }
}

static GLOBAL: Mutex<Buffers> = Mutex::new(Buffers::new());

fn global() -> MutexGuard<'static, Buffers> {
    // A panic while holding the lock leaves valid (if partial) data;
    // recover rather than propagate the poison.
    GLOBAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// Wrapper whose TLS destructor drains the buffer into the registry.
struct LocalBuf(Buffers);

impl Drop for LocalBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.0);
        if !buf.is_empty() {
            global().absorb(buf);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const { RefCell::new(LocalBuf(Buffers::new())) };
}

/// Runs `f` on the thread-local buffer, falling back to the global
/// registry during TLS teardown.
fn with_local(f: impl FnOnce(&mut Buffers)) {
    let mut f = Some(f);
    let recorded = LOCAL
        .try_with(|cell| match cell.try_borrow_mut() {
            Ok(mut buf) => {
                if let Some(f) = f.take() {
                    f(&mut buf.0);
                }
                true
            }
            Err(_) => false,
        })
        .unwrap_or(false);
    if !recorded {
        if let Some(f) = f.take() {
            f(&mut global());
        }
    }
}

// ---------------------------------------------------------------------------
// Event-stream gating
// ---------------------------------------------------------------------------

static STREAM_INIT: Once = Once::new();
static STREAM_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether trace events are being recorded. Lazily initialized from the
/// environment: on if `CT_TRACE` or `CT_TRACE_JSON` is set (and non-`0`).
pub fn stream_enabled() -> bool {
    STREAM_INIT.call_once(|| {
        let on = |k: &str| std::env::var(k).is_ok_and(|v| !v.is_empty() && v != "0");
        if on("CT_TRACE") || on("CT_TRACE_JSON") {
            STREAM_ENABLED.store(true, Ordering::Relaxed);
        }
    });
    STREAM_ENABLED.load(Ordering::Relaxed)
}

/// Forces the event stream on or off, overriding the environment. Used by
/// tests and by binaries that decide gating themselves.
pub fn set_stream_enabled(enabled: bool) {
    STREAM_INIT.call_once(|| {});
    STREAM_ENABLED.store(enabled, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// Reads process CPU time (user+system) in clock ticks from `/proc`.
/// Returns 0 where unavailable.
fn process_cpu_ticks() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(stat) = std::fs::read_to_string("/proc/self/stat") {
            // Fields after the parenthesised comm: state is index 0, so
            // utime/stime are indices 11 and 12.
            if let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) {
                let mut it = rest.split_whitespace().skip(11);
                let utime = it.next().and_then(|f| f.parse::<u64>().ok());
                let stime = it.next().and_then(|f| f.parse::<u64>().ok());
                if let (Some(u), Some(s)) = (utime, stime) {
                    return u.saturating_add(s);
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// An RAII span: measures wall (and coarse CPU) time from [`Span::enter`]
/// to drop, aggregated per name.
#[derive(Debug)]
pub struct Span {
    name: String,
    start: Instant,
    cpu0: u64,
}

impl Span {
    /// Enters a span. Timing stops when the guard drops.
    pub fn enter(name: impl Into<String>) -> Span {
        Span {
            name: name.into(),
            start: Instant::now(),
            cpu0: process_cpu_ticks(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let wall_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let cpu_ticks = process_cpu_ticks().saturating_sub(self.cpu0);
        let name = std::mem::take(&mut self.name);
        with_local(|buf| {
            buf.spans.entry(name).or_default().absorb(SpanAgg {
                count: 1,
                wall_ns,
                cpu_ticks,
            });
        });
    }
}

/// A named monotonic counter. Cheap to construct; identity is the name.
#[derive(Debug, Clone, Copy)]
pub struct Counter(&'static str);

impl Counter {
    /// A counter handle for `name`.
    pub const fn new(name: &'static str) -> Counter {
        Counter(name)
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        counter_add(self.0, n);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }
}

/// Adds `n` to counter `name`. The dynamic-name sibling of
/// [`Counter::add`], for metrics whose name is built at runtime (the
/// service's per-shard counters). Allocates only the first time a thread
/// sees a name; steady-state increments are a map lookup.
pub fn counter_add(name: &str, n: u64) {
    with_local(|buf| match buf.counters.get_mut(name) {
        Some(slot) => *slot += n,
        None => {
            buf.counters.insert(name.to_string(), n);
        }
    });
}

/// A named gauge. Merges across threads by maximum, which keeps the
/// registry order-insensitive (last-write-wins would not be).
#[derive(Debug, Clone, Copy)]
pub struct Gauge(&'static str);

impl Gauge {
    /// A gauge handle for `name`.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge(name)
    }

    /// Records an observation; the registry keeps the maximum.
    pub fn set(&self, v: f64) {
        let name = self.0;
        with_local(|buf| match buf.gauges.get_mut(name) {
            Some(slot) => {
                if v > *slot {
                    *slot = v;
                }
            }
            None => {
                buf.gauges.insert(name.to_string(), v);
            }
        });
    }
}

/// A named log-bucketed histogram (see [`crate::hist`]). Like counters,
/// recording is always on: observations land in the thread-local buffer
/// and merge deterministically into the registry.
#[derive(Debug, Clone, Copy)]
pub struct Hist(&'static str);

impl Hist {
    /// A histogram handle for `name`.
    pub const fn new(name: &'static str) -> Hist {
        Hist(name)
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        hist_record(self.0, v);
    }
}

/// Records `v` into histogram `name`. The dynamic-name sibling of
/// [`Hist::record`] (per-shard queue-depth histograms build their names at
/// service launch). Allocates only the first time a thread sees a name.
pub fn hist_record(name: &str, v: u64) {
    with_local(|buf| match buf.hists.get_mut(name) {
        Some(h) => h.record(v),
        None => {
            let mut h = HistData::default();
            h.record(v);
            buf.hists.insert(name.to_string(), h);
        }
    });
}

/// Records a trace event. No-op unless the event stream is enabled or the
/// flight recorder is capturing (the flight recorder sees recent events
/// even when the full stream is off — that is its whole point).
pub fn emit(name: &str, fields: Vec<(&'static str, Value)>) {
    let stream = stream_enabled();
    let flight = crate::flight::enabled();
    if !stream && !flight {
        return;
    }
    let event = Event::new(name, fields);
    if flight {
        crate::flight::record(&event);
    }
    if stream {
        with_local(|buf| buf.events.push(event));
    }
}

// ---------------------------------------------------------------------------
// Reading the registry
// ---------------------------------------------------------------------------

/// A point-in-time copy of the registry, events sorted deterministically.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Per-span aggregates, sorted by name.
    pub spans: Vec<(String, SpanAgg)>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values (max-merged), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms (deterministically merged), sorted by name.
    pub hists: Vec<(String, HistData)>,
    /// Events, sorted by [`Event::stable_key`] (stable across
    /// `CT_THREADS`).
    pub events: Vec<Event>,
}

/// Drains the calling thread's buffer into the registry.
pub fn drain_thread() {
    let buf = LOCAL
        .try_with(|cell| match cell.try_borrow_mut() {
            Ok(mut local) => std::mem::take(&mut local.0),
            Err(_) => Buffers::new(),
        })
        .unwrap_or_else(|_| Buffers::new());
    if !buf.is_empty() {
        global().absorb(buf);
    }
}

/// Drains the calling thread, then copies the registry. Worker threads
/// spawned by `par_map` have already drained (scoped threads join before
/// the call returns), so a snapshot taken by the coordinating thread sees
/// everything recorded so far.
pub fn snapshot() -> Snapshot {
    drain_thread();
    let g = global();
    let mut events = g.events.clone();
    events.sort_by_cached_key(Event::stable_key);
    Snapshot {
        spans: g.spans.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        counters: g.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        gauges: g.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        hists: g
            .hists
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        events,
    }
}

/// Clears the registry and the calling thread's buffer (test support).
pub fn reset() {
    let _ = LOCAL.try_with(|cell| {
        if let Ok(mut local) = cell.try_borrow_mut() {
            local.0 = Buffers::new();
        }
    });
    *global() = Buffers::new();
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Renders a snapshot as a JSONL stream: a `trace.meta` header, every
/// event, then `span`/`counter`/`gauge` summary lines.
pub fn render_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    let header = Event::new(
        "trace.meta",
        vec![
            ("schema", crate::SCHEMA_VERSION.into()),
            ("events", snap.events.len().into()),
        ],
    );
    out.push_str(&header.to_jsonl());
    out.push('\n');
    for e in &snap.events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    for (name, agg) in &snap.spans {
        let line = Event::new(
            "span",
            vec![
                ("name", name.as_str().into()),
                ("count", agg.count.into()),
                ("wall_ns", agg.wall_ns.into()),
                ("cpu_ticks", agg.cpu_ticks.into()),
            ],
        );
        out.push_str(&line.to_jsonl());
        out.push('\n');
    }
    for (name, n) in &snap.counters {
        let line = Event::new(
            "counter",
            vec![("name", name.as_str().into()), ("value", (*n).into())],
        );
        out.push_str(&line.to_jsonl());
        out.push('\n');
    }
    for (name, v) in &snap.gauges {
        let line = Event::new(
            "gauge",
            vec![("name", name.as_str().into()), ("value", (*v).into())],
        );
        out.push_str(&line.to_jsonl());
        out.push('\n');
    }
    for (name, h) in &snap.hists {
        let line = Event::new(
            "hist",
            vec![
                ("name", name.as_str().into()),
                ("count", h.count().into()),
                ("sum", h.sum().into()),
                ("min", h.min().into()),
                ("max", h.max().into()),
                ("p50", h.p50().into()),
                ("p90", h.p90().into()),
                ("p99", h.p99().into()),
                ("buckets", h.render_buckets().into()),
            ],
        );
        out.push_str(&line.to_jsonl());
        out.push('\n');
    }
    out
}

/// Writes [`render_jsonl`] output of a fresh snapshot to `path`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    let snap = snapshot();
    let mut f = std::fs::File::create(path)?;
    f.write_all(render_jsonl(&snap).as_bytes())
}

/// Renders the human `--trace` table (spans, counters, warnings).
pub fn render_table(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "-- trace: spans --");
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>12} {:>10}",
        "span", "count", "wall_ms", "cpu_ticks"
    );
    for (name, agg) in &snap.spans {
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12.3} {:>10}",
            name,
            agg.count,
            agg.wall_ns as f64 / 1e6,
            agg.cpu_ticks
        );
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "-- trace: counters --");
        for (name, n) in &snap.counters {
            let _ = writeln!(out, "{name:<28} {n:>8}");
        }
    }
    if !snap.hists.is_empty() {
        let _ = writeln!(out, "-- trace: hists --");
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "hist", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in &snap.hists {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            );
        }
    }
    let warnings: Vec<&Event> = snap
        .events
        .iter()
        .filter(|e| e.name.starts_with("warn."))
        .collect();
    if !warnings.is_empty() {
        let _ = writeln!(out, "-- trace: warnings --");
        for w in warnings {
            let _ = writeln!(out, "{}", w.to_jsonl());
        }
    }
    out
}

/// Flushes sinks selected by the environment: JSONL to `CT_TRACE_JSON`
/// (if set) and the human table to stderr (if `CT_TRACE` is set).
/// Call once at the end of a binary; errors are reported to stderr, not
/// propagated (tracing must never fail the run).
pub fn flush_env_sinks() {
    let snap = snapshot();
    if let Ok(path) = std::env::var("CT_TRACE_JSON") {
        if !path.is_empty() && path != "0" {
            let res = std::fs::File::create(&path)
                .and_then(|mut f| f.write_all(render_jsonl(&snap).as_bytes()));
            if let Err(e) = res {
                eprintln!("ct-obs: failed to write {path}: {e}");
            }
        }
    }
    if std::env::var("CT_TRACE").is_ok_and(|v| !v.is_empty() && v != "0") {
        eprint!("{}", render_table(&snap));
    }
    crate::metrics::write_env_exposition(&snap);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run concurrently, so each
    // test uses its own key namespace instead of calling reset().

    #[test]
    fn spans_and_counters_aggregate() {
        {
            let _s = Span::enter("t.spans.alpha");
            std::hint::black_box(42);
        }
        {
            let _s = Span::enter("t.spans.alpha");
        }
        Counter::new("t.spans.hits").add(2);
        Counter::new("t.spans.hits").incr();
        let snap = snapshot();
        let span = snap
            .spans
            .iter()
            .find(|(n, _)| n == "t.spans.alpha")
            .map(|(_, a)| *a)
            .unwrap_or_default();
        assert_eq!(span.count, 2);
        let hits = snap
            .counters
            .iter()
            .find(|(n, _)| n == "t.spans.hits")
            .map(|(_, v)| *v);
        assert_eq!(hits, Some(3));
    }

    #[test]
    fn gauge_merges_by_max() {
        Gauge::new("t.gauge.conf").set(0.25);
        Gauge::new("t.gauge.conf").set(0.75);
        Gauge::new("t.gauge.conf").set(0.5);
        let snap = snapshot();
        let v = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "t.gauge.conf")
            .map(|(_, v)| *v);
        assert_eq!(v, Some(0.75));
    }

    #[test]
    fn cross_thread_buffers_merge_on_join() {
        set_stream_enabled(true);
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                scope.spawn(move || {
                    Counter::new("t.threads.work").add(i + 1);
                    emit("t.threads.evt", vec![("worker", i.into())]);
                });
            }
        });
        let snap = snapshot();
        let total = snap
            .counters
            .iter()
            .find(|(n, _)| n == "t.threads.work")
            .map(|(_, v)| *v);
        assert_eq!(total, Some(10));
        let mine: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "t.threads.evt")
            .collect();
        assert_eq!(mine.len(), 4);
        // snapshot() sorts by stable key -> worker ids appear in order,
        // regardless of which thread finished first.
        let ids: Vec<_> = mine
            .iter()
            .map(|e| {
                e.fields
                    .iter()
                    .find(|(k, _)| k == "worker")
                    .map(|(_, v)| v.clone())
            })
            .collect();
        assert_eq!(
            ids,
            (0..4u64).map(|i| Some(Value::U64(i))).collect::<Vec<_>>()
        );
    }

    #[test]
    fn jsonl_roundtrips_through_parser() {
        set_stream_enabled(true);
        emit(
            "t.jsonl.evt",
            vec![("k", "v\"quoted\"".into()), ("n", 7u64.into())],
        );
        let snap = snapshot();
        for line in render_jsonl(&snap).lines() {
            let doc = crate::json::parse(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
            assert!(doc.get("event").is_some(), "line missing event key: {line}");
        }
    }

    #[test]
    fn hists_merge_across_threads_deterministically() {
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    for i in 0..100u64 {
                        hist_record("t.hist.merge", t * 100 + i);
                    }
                    Hist::new("t.hist.handle").record(t);
                    drain_thread();
                });
            }
        });
        let snap = snapshot();
        let h = snap
            .hists
            .iter()
            .find(|(n, _)| n == "t.hist.merge")
            .map(|(_, h)| h.clone())
            .unwrap_or_default();
        // Same observations recorded monolithically must be bitwise equal.
        let mut mono = HistData::default();
        (0..400u64).for_each(|v| mono.record(v));
        assert_eq!(h, mono);
        let handle = snap
            .hists
            .iter()
            .find(|(n, _)| n == "t.hist.handle")
            .map(|(_, h)| h.count());
        assert_eq!(handle, Some(4));
    }

    // Stream-gating behavior is covered by tests/gating.rs, which owns its
    // process: toggling the global flag here would race sibling tests.
}

#![warn(missing_docs)]

//! # ct-apps
//!
//! The benchmark sensor network applications — reimplementations of the
//! TinyOS example-app skeletons the paper's platform would run, written in
//! NLC and driven by nondeterministic simulated inputs:
//!
//! | app | pattern | estimation stress |
//! |---|---|---|
//! | [`blink`] | timer LED cascade | skewed deterministic frequencies |
//! | [`sense`] | ADC threshold alarm | single input-driven branch |
//! | [`oscilloscope`] | buffer + radio flush | rare branch + bounded loop |
//! | [`surge`] | multi-hop routing | input-dependent loop bound |
//! | [`event_detect`] | hysteresis alarm | regime-dependent branches |
//! | [`crc`] | CRC-16 kernel | 64 i.i.d. branches per call |
//! | [`fir`] | 8-tap filter | deterministic trip count |
//! | [`sort`] | bubble sort window | non-homogeneous branch |
//!
//! [`registry::all_apps`] exposes them uniformly; [`synthetic`] generates
//! random structured programs and parameterized CFG problems for the
//! estimator ablation and scalability experiments.
//!
//! ## Example
//!
//! ```
//! use ct_apps::registry::all_apps;
//! use ct_mote::cost::AvrCost;
//! use ct_mote::trace::NullProfiler;
//!
//! for app in all_apps() {
//!     let mut mote = app.boot(Box::new(AvrCost));
//!     let pid = app.target_id(mote.program());
//!     mote.call(pid, &[], &mut NullProfiler).unwrap();
//! }
//! ```

pub mod blink;
pub mod crc;
pub mod event_detect;
pub mod fir;
pub mod oscilloscope;
pub mod registry;
pub mod sense;
pub mod sort;
pub mod surge;
pub mod synthetic;

pub use registry::{all_apps, app_by_name, App};

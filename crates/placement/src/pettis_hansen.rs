//! Pettis–Hansen bottom-up basic-block positioning (PLDI 1990).
//!
//! Edges are processed hottest-first; each edge merges the chain ending at
//! its source with the chain starting at its destination, making the edge a
//! fall-through. Remaining chains are then concatenated: the entry's chain
//! first, followed by the others ordered by their strongest connection to
//! already-placed code (falling back to weight). The result turns the hot
//! edge out of every branch into straight-line fetch — on a static
//! predict-not-taken mote pipeline, this is precisely what cuts the
//! misprediction rate.

use crate::chains::ChainSet;
use ct_cfg::dominators::Dominators;
use ct_cfg::graph::Cfg;
use ct_cfg::layout::Layout;

/// Computes a Pettis–Hansen layout from per-edge weights (expected or
/// measured traversal counts, indexed by [`Cfg::edges`] order).
///
/// Loop **back edges are excluded from chain merging**: merging `latch →
/// header` places the latch *before* the header, which rotates the loop and
/// turns the hot in-loop continuation into a taken branch on every
/// iteration. Excluding back edges keeps loop bodies forward-ordered, which
/// is what minimizes the *misprediction rate* — the paper's objective. (It
/// can cost extra unconditional-jump cycles on MCUs where a jump is pricier
/// than a taken branch; [`pettis_hansen_raw`] keeps the unrestricted merge
/// for cycle-oriented comparisons, and `Strategy::Best` scores both.)
///
/// # Panics
///
/// Panics if `edge_weights.len()` differs from the edge count or the CFG is
/// empty.
pub fn pettis_hansen(cfg: &Cfg, edge_weights: &[f64]) -> Layout {
    let dom = Dominators::compute(cfg);
    let back_edge: Vec<bool> = cfg
        .edges()
        .iter()
        .map(|e| dom.dominates(e.to, e.from))
        .collect();
    ph_with_filter(cfg, edge_weights, &back_edge)
}

/// Pettis–Hansen with unrestricted merging (back edges included). See
/// [`pettis_hansen`] for why the default excludes them.
///
/// # Panics
///
/// Panics if `edge_weights.len()` differs from the edge count or the CFG is
/// empty.
pub fn pettis_hansen_raw(cfg: &Cfg, edge_weights: &[f64]) -> Layout {
    let no_filter = vec![false; cfg.edges().len()];
    ph_with_filter(cfg, edge_weights, &no_filter)
}

fn ph_with_filter(cfg: &Cfg, edge_weights: &[f64], skip_edge: &[bool]) -> Layout {
    let edges = cfg.edges();
    assert_eq!(
        edge_weights.len(),
        edges.len(),
        "one weight per edge required"
    );
    assert!(!cfg.is_empty(), "empty CFG");

    // Hottest-first, deterministic tie-break on edge index.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    // `total_cmp`: a NaN weight (upstream numeric mishap) must not panic a
    // placement pass — it just sorts deterministically.
    order.sort_by(|&a, &b| edge_weights[b].total_cmp(&edge_weights[a]).then(a.cmp(&b)));

    let mut chains = ChainSet::singletons(cfg.len());
    for ei in order {
        if edge_weights[ei] <= 0.0 {
            break; // cold edges cannot justify a merge
        }
        let e = edges[ei];
        if e.from == e.to || skip_edge[ei] {
            continue; // self loops / filtered back edges can never help
        }
        chains.merge(e.from, e.to);
    }

    // Concatenate chains: entry chain first, then repeatedly the chain most
    // strongly connected to what is already placed.
    let entry_chain = chains.chain_id(cfg.entry());
    let mut placed: Vec<usize> = vec![entry_chain];
    let mut remaining: Vec<usize> = (0..cfg.len())
        .map(|i| chains.chain_id(ct_cfg::graph::BlockId(i as u32)))
        .filter(|&c| c != entry_chain)
        .collect();
    remaining.sort_unstable();
    remaining.dedup();

    while !remaining.is_empty() {
        // Connection strength of candidate chain c: total weight of edges
        // between placed blocks and c's blocks (either direction).
        let strength = |c: usize| -> f64 {
            edges
                .iter()
                .map(|e| {
                    let cf = chains.chain_id(e.from);
                    let ct = chains.chain_id(e.to);
                    let touches =
                        (placed.contains(&cf) && ct == c) || (placed.contains(&ct) && cf == c);
                    if touches {
                        edge_weights[e.index]
                    } else {
                        0.0
                    }
                })
                .sum()
        };
        let Some((pos, &best)) = remaining
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| strength(a).total_cmp(&strength(b)).then(b.cmp(&a)))
        else {
            break; // unreachable: the loop guard keeps `remaining` nonempty
        };
        placed.push(best);
        remaining.remove(pos);
    }

    let order: Vec<_> = placed
        .into_iter()
        .flat_map(|c| chains.chain(c).iter().copied())
        .collect();
    // Chain concatenation covers every block exactly once; degrade to the
    // natural layout rather than panic if that invariant is ever broken.
    Layout::from_order(cfg, order).unwrap_or_else(|| Layout::natural(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::builder::{diamond, linear, while_loop};
    use ct_cfg::graph::BlockId;
    use ct_cfg::layout::PenaltyModel;
    use ct_cfg::profile::EdgeProfile;

    #[test]
    fn linear_cfg_stays_linear() {
        let cfg = linear(4);
        let l = pettis_hansen(&cfg, &[5.0, 5.0, 5.0]);
        assert_eq!(l.order(), &[BlockId(0), BlockId(1), BlockId(2), BlockId(3)]);
    }

    #[test]
    fn hot_arm_becomes_fallthrough() {
        let cfg = diamond();
        // Edge order: cond→then (T), cond→else (F), then→join, else→join.
        // Make the *else* arm hot.
        let weights = [10.0, 90.0, 10.0, 90.0];
        let l = pettis_hansen(&cfg, &weights);
        // else (b2) must directly follow cond (b0).
        assert_eq!(l.next_in_layout(BlockId(0)), Some(BlockId(2)));
        // And the hot path continues into join.
        assert_eq!(l.next_in_layout(BlockId(2)), Some(BlockId(3)));
    }

    #[test]
    fn ph_beats_natural_layout_on_skewed_profile() {
        let cfg = diamond();
        let profile = EdgeProfile::from_counts(&cfg, vec![5, 95, 5, 95]);
        let weights: Vec<f64> = profile.counts().iter().map(|&c| c as f64).collect();
        let ph = pettis_hansen(&cfg, &weights);
        let pen = PenaltyModel::avr();
        let natural_cost = Layout::natural(&cfg).evaluate(&cfg, &profile, &pen);
        let ph_cost = ph.evaluate(&cfg, &profile, &pen);
        assert!(
            ph_cost.extra_cycles < natural_cost.extra_cycles,
            "{ph_cost:?} vs {natural_cost:?}"
        );
        assert!(ph_cost.misprediction_rate() < natural_cost.misprediction_rate());
    }

    #[test]
    fn loop_body_placed_adjacent_to_header() {
        let cfg = while_loop();
        // Hot loop: header→body and body→header dominate.
        // Edge order: header→body (T), header→exit (F), entry→header? No:
        // edges are enumerated per block: entry(Jump header), header(T body,
        // F exit), body(Jump header).
        let edges = cfg.edges();
        let mut w = vec![0.0; edges.len()];
        for e in &edges {
            w[e.index] = match (e.from, e.to) {
                (BlockId(1), BlockId(2)) => 100.0,
                (BlockId(2), BlockId(1)) => 100.0,
                (BlockId(0), BlockId(1)) => 1.0,
                _ => 1.0,
            };
        }
        let l = pettis_hansen(&cfg, &w);
        // body follows header.
        assert_eq!(l.next_in_layout(BlockId(1)), Some(BlockId(2)));
        // entry is first.
        assert_eq!(l.order()[0], BlockId(0));
    }

    #[test]
    fn zero_weights_give_valid_layout() {
        let cfg = diamond();
        let l = pettis_hansen(&cfg, &[0.0; 4]);
        assert_eq!(l.order().len(), cfg.len());
        assert_eq!(l.order()[0], cfg.entry());
    }

    #[test]
    fn layout_is_deterministic() {
        let cfg = diamond();
        let w = [50.0, 50.0, 50.0, 50.0];
        assert_eq!(pettis_hansen(&cfg, &w), pettis_hansen(&cfg, &w));
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn weight_length_checked() {
        pettis_hansen(&diamond(), &[1.0]);
    }
}

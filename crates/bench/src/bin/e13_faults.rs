//! E13 — Robust estimation under measurement-channel faults (Table; extension
//! experiment).
//!
//! The paper's pipeline assumes timing records survive the trip from mote to
//! base station intact. Real record channels drift, drop, duplicate, reorder,
//! truncate, and occasionally deliver garbage (all-ones bus reads, wrapped
//! wrong-order subtractions). This experiment corrupts each app's tick stream
//! with every `ct-faults` model at increasing rates (the pipeline's `Corrupt`
//! stage, driven by the config's [`ct_faults::FaultPlan`]) and compares:
//!
//! * **naive** — the repo front door [`ct_core::estimate`]; a hard error
//!   (e.g. overflowing ticks) falls back to the uniform prior, mirroring a
//!   deployment with no recovery story; it always feeds placement.
//! * **ladder** — [`ct_core::estimate_robust`], the graceful-degradation
//!   ladder (full EM → trimmed EM → moments → prior) with confidence-gated
//!   placement ([`ct_placement::place_with_confidence`]).
//!
//! The 1 MHz timer (8 cycles/tick) is the paper's standard mote resolution:
//! coarse enough that a tick is a real quantization unit, fine enough that
//! EM is well identified. Garbled records (bitwise complements, wrapped
//! subtractions) still land astronomically off-scale, where the validation
//! gate (naive) or the trimming pre-filter (ladder) must deal with them.
//!
//! `E13_SMOKE=1` (or `CT_SMOKE=1`) runs a tiny grid without writing
//! `results/` (for check.sh).

use ct_bench::{f4, par_sweep, write_result, Table};
use ct_cfg::profile::BranchProbs;
use ct_core::estimator::{EstimateOptions, RobustOptions};
use ct_faults::{FaultKind, FaultPlan};
use ct_mote::timer::VirtualTimer;
use ct_pipeline::{EnvConfig, EstimatorChoice, RunConfig, Session};
use ct_placement::Strategy;

struct CellResult {
    row: Vec<String>,
    kind: FaultKind,
    rate: f64,
    naive_wmae: f64,
    ladder_wmae: f64,
}

fn main() {
    let env = EnvConfig::load_with_smoke_alias(Some("E13_SMOKE"));
    eprintln!("e13: {}", env.banner());
    let n = env.pick(3_000, 400);
    let seed_base = env.seed_or(13_000);
    let apps: &[&str] = env.pick(&["sense", "event_detect", "oscilloscope"], &["sense"]);
    let rates: &[f64] = env.pick(&[0.0, 0.1, 0.3, 0.5, 1.0], &[0.0, 0.5]);

    let mut grid = Vec::new();
    for (ai, &app) in apps.iter().enumerate() {
        for (ki, kind) in FaultKind::ALL.into_iter().enumerate() {
            for (ri, &rate) in rates.iter().enumerate() {
                // Stable per-cell identity: the workload seed is per-app (so
                // every fault sees the same clean stream and comparisons are
                // paired) and the plan seed is a pure function of the cell —
                // independent of sweep order and `CT_THREADS`.
                let run_seed = seed_base + ai as u64;
                let plan_seed = 0x13_0000 + (ai * 1_000 + ki * 10 + ri) as u64;
                grid.push((app, kind, rate, run_seed, plan_seed));
            }
        }
    }

    let cells = par_sweep(grid, |(name, kind, rate, run_seed, plan_seed)| {
        // `no_unroll` keeps the naive arm on the plain `estimate()` front
        // door, matching a deployment with no compiler assist.
        let session = Session::new(
            RunConfig::new(name)
                .invocations(n)
                .resolution(VirtualTimer::mhz1_at_8mhz().cycles_per_tick())
                .seeded(run_seed)
                .faulted(FaultPlan::single(kind, rate, plan_seed))
                .no_unroll(),
        );
        let run = session.collect().expect("bundled apps must not trap");
        let cfg = run.cfg();

        // Naive: front door, hard error → uniform prior, always places.
        let naive = session.estimate_as(&run, &EstimatorChoice::Naive(EstimateOptions::default()));
        let (naive_probs, naive_wmae) = match &naive {
            Ok(e) => (e.estimate.probs.clone(), e.accuracy.weighted_mae),
            Err(_) => {
                let probs = BranchProbs::uniform(cfg, 0.5);
                let acc = ct_core::accuracy::compare(
                    cfg,
                    &probs,
                    &run.truth,
                    &run.truth_profile,
                    run.invocations,
                );
                (probs, acc.weighted_mae)
            }
        };

        // Ladder: never fails; carries rung + confidence.
        let ladder = session
            .estimate_as(&run, &EstimatorChoice::Robust(RobustOptions::default()))
            .expect("the ladder never fails");
        let robust = ladder
            .robust
            .as_ref()
            .expect("robust choice carries the ladder");

        let pen = session.config().penalties();
        let naive_mr = session
            .place_gated(&run, &naive_probs, 1.0, Strategy::Best)
            .evaluate(cfg, &run.truth_profile, &pen)
            .misprediction_rate();
        let ladder_mr = session
            .place_gated(
                &run,
                &ladder.estimate.probs,
                ladder.confidence,
                Strategy::Best,
            )
            .evaluate(cfg, &run.truth_profile, &pen)
            .misprediction_rate();

        if std::env::var("E13_DEBUG").is_ok() {
            for a in &robust.attempts {
                eprintln!(
                    "e13-debug: {name} {kind} rate={rate} rung={} accepted={} {}",
                    a.rung, a.accepted, a.detail
                );
            }
        }
        eprintln!("e13: {name} {kind} rate={rate} done");
        CellResult {
            row: vec![
                name.to_string(),
                kind.to_string(),
                format!("{rate:.1}"),
                f4(naive_wmae),
                f4(ladder.accuracy.weighted_mae),
                robust.rung.to_string(),
                format!("{:.2}", ladder.confidence),
                f4(naive_mr),
                f4(ladder_mr),
            ],
            kind,
            rate,
            naive_wmae,
            ladder_wmae: ladder.accuracy.weighted_mae,
        }
    });

    let mut table = Table::new(vec![
        "app",
        "fault",
        "rate",
        "naive wmae",
        "ladder wmae",
        "rung",
        "confidence",
        "naive mispred",
        "ladder mispred",
    ]);
    for c in &cells {
        table.row(c.row.clone());
    }

    // Verdict: per fault kind, aggregated over apps and rates ≥ 0.3, the
    // ladder must beat the naive pipeline strictly.
    let mut verdict = Table::new(vec![
        "fault",
        "naive wmae (rate ≥ 0.3)",
        "ladder wmae (rate ≥ 0.3)",
        "ladder wins",
    ]);
    let mut failures = Vec::new();
    for kind in FaultKind::ALL {
        let hit: Vec<&CellResult> = cells
            .iter()
            .filter(|c| c.kind == kind && c.rate >= 0.3)
            .collect();
        if hit.is_empty() {
            continue;
        }
        let naive_avg = hit.iter().map(|c| c.naive_wmae).sum::<f64>() / hit.len() as f64;
        let ladder_avg = hit.iter().map(|c| c.ladder_wmae).sum::<f64>() / hit.len() as f64;
        let wins = ladder_avg < naive_avg;
        if !wins {
            failures.push(format!(
                "{kind}: ladder {ladder_avg:.4} !< naive {naive_avg:.4}"
            ));
        }
        verdict.row(vec![
            kind.to_string(),
            f4(naive_avg),
            f4(ladder_avg),
            if wins { "yes" } else { "no" }.to_string(),
        ]);
    }

    let out = format!(
        "# E13 — Naive EM vs degradation ladder under measurement-channel faults\n\n\
         {n} samples per cell; 1 MHz timer (8 cycles/tick); AVR cost model.\n\
         Each cell corrupts the clean tick stream with one seeded fault model at\n\
         the given rate. naive = `estimate()` with hard errors replaced by the\n\
         uniform prior, placement ungated; ladder = `estimate_robust()` with\n\
         confidence-gated placement. `mispred` = taken-branch fraction of the\n\
         resulting layout replayed against ground truth.\n\
         {}\n\n{}\n\
         ## Verdict — mean weighted MAE at fault rates ≥ 0.3\n\n{}",
        env.banner(),
        table.to_markdown(),
        verdict.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e13_faults.md", &out);
        if !failures.is_empty() {
            eprintln!("e13: ACCEPTANCE FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}

//! Prospective layout scoring and candidate selection.
//!
//! [`ct_cfg::layout::Layout::evaluate`] scores a layout against *measured*
//! integer edge counts; placement, however, works from *expected* (fractional)
//! traversal frequencies derived from estimated branch probabilities. This
//! module provides the fractional scorer and a best-of selector, so the
//! optimizer and the simulator use the same penalty arithmetic.

use ct_cfg::graph::Cfg;
use ct_cfg::layout::{BranchPredictor, Layout, PenaltyModel, TransferKind};

/// Expected extra cycles and misprediction statistics of a layout under
/// fractional edge frequencies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExpectedLayoutCost {
    /// Expected taken conditional branches per invocation.
    pub branches_taken: f64,
    /// Expected not-taken conditional branches per invocation.
    pub branches_not_taken: f64,
    /// Expected executed unconditional jumps per invocation.
    pub jumps_executed: f64,
    /// Expected extra cycles per invocation.
    pub extra_cycles: f64,
    /// Expected conditional executions the scoring [`BranchPredictor`]
    /// gets wrong. Equal to `branches_taken` under
    /// [`BranchPredictor::AlwaysNotTaken`] (the default scorer).
    pub mispredicted: f64,
}

impl ExpectedLayoutCost {
    /// Expected misprediction rate (mispredicted / all conditional
    /// executions) under the predictor this cost was scored with.
    pub fn misprediction_rate(&self) -> f64 {
        let total = self.branches_taken + self.branches_not_taken;
        if total <= 0.0 {
            0.0
        } else {
            self.mispredicted / total
        }
    }
}

/// Scores `layout` against expected per-edge traversal frequencies under
/// the [`BranchPredictor::AlwaysNotTaken`] model — the rule both MCU
/// presets charge penalties for, and the model the virtual PMU's
/// `mispred_ant` counter measures, so prediction and measurement agree by
/// construction.
///
/// # Panics
///
/// Panics if `edge_freq.len()` differs from the edge count.
pub fn expected_cost(
    cfg: &Cfg,
    layout: &Layout,
    edge_freq: &[f64],
    penalties: &PenaltyModel,
) -> ExpectedLayoutCost {
    expected_cost_under(
        cfg,
        layout,
        edge_freq,
        penalties,
        BranchPredictor::AlwaysNotTaken,
    )
}

/// Scores `layout` with an explicit predictor model deciding which
/// expected conditional executions mispredict. The penalty arithmetic
/// (`extra_cycles`) is predictor-independent — it is what the layout costs
/// on the machine.
///
/// # Panics
///
/// Panics if `edge_freq.len()` differs from the edge count.
pub fn expected_cost_under(
    cfg: &Cfg,
    layout: &Layout,
    edge_freq: &[f64],
    penalties: &PenaltyModel,
    predictor: BranchPredictor,
) -> ExpectedLayoutCost {
    let edges = cfg.edges();
    assert_eq!(
        edge_freq.len(),
        edges.len(),
        "one frequency per edge required"
    );
    let mut cost = ExpectedLayoutCost::default();
    for (e, t) in edges.iter().zip(layout.edge_transfers(cfg)) {
        let f = edge_freq[e.index];
        if f <= 0.0 {
            continue;
        }
        match t.kind {
            TransferKind::FallThrough => {}
            TransferKind::TakenBranch | TransferKind::TakenBranchOverJump => {
                cost.extra_cycles += f * penalties.taken_branch_extra as f64;
            }
            TransferKind::Jump => {
                cost.jumps_executed += f;
                cost.extra_cycles += f * penalties.jump_cycles as f64;
            }
        }
        if t.conditional {
            if t.taken {
                cost.branches_taken += f;
            } else {
                cost.branches_not_taken += f;
            }
            if predictor.mispredicts(t.taken, t.backward_target) {
                cost.mispredicted += f;
            }
        }
    }
    cost
}

/// Picks the candidate layout with the lowest expected extra cycles
/// (ties: earlier candidate wins).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn best_layout(
    cfg: &Cfg,
    candidates: Vec<Layout>,
    edge_freq: &[f64],
    penalties: &PenaltyModel,
) -> Layout {
    assert!(!candidates.is_empty(), "need at least one candidate layout");
    // `total_cmp`: a NaN cost (upstream numeric mishap) must not panic the
    // selection — it just ranks deterministically last.
    candidates
        .into_iter()
        .map(|l| {
            let c = expected_cost(cfg, &l, edge_freq, penalties);
            (l, c.extra_cycles)
        })
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(l, _)| l)
        .unwrap_or_else(|| Layout::natural(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_cfg::builder::diamond;
    use ct_cfg::graph::BlockId;
    use ct_cfg::profile::EdgeProfile;

    #[test]
    fn expected_cost_matches_integer_evaluate() {
        let cfg = diamond();
        let counts = vec![30u64, 10, 30, 10];
        let profile = EdgeProfile::from_counts(&cfg, counts.clone());
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let pen = PenaltyModel::avr();
        let layout = Layout::natural(&cfg);
        let exact = layout.evaluate(&cfg, &profile, &pen);
        let expected = expected_cost(&cfg, &layout, &freq, &pen);
        assert!((expected.extra_cycles - exact.extra_cycles as f64).abs() < 1e-9);
        assert!((expected.branches_taken - exact.branches_taken as f64).abs() < 1e-9);
        assert!((expected.misprediction_rate() - exact.misprediction_rate()).abs() < 1e-12);
    }

    #[test]
    fn best_layout_picks_cheapest() {
        let cfg = diamond();
        let freq = [90.0, 10.0, 90.0, 10.0];
        let pen = PenaltyModel::avr();
        let natural = Layout::natural(&cfg);
        let hot =
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(1), BlockId(3), BlockId(2)]).unwrap();
        let best = best_layout(&cfg, vec![natural.clone(), hot.clone()], &freq, &pen);
        assert_eq!(best, hot);
    }

    #[test]
    fn ant_scoring_pins_mispredicted_to_branches_taken() {
        // Regression pin for the predictor-model unification: the default
        // (always-not-taken) scorer must reproduce the pre-PMU numbers
        // bitwise — mispredicted IS branches_taken, and the rate is the
        // taken fraction, exactly as before.
        let cfg = diamond();
        let pen = PenaltyModel::avr();
        for freq in [
            [30.0, 10.0, 30.0, 10.0],
            [0.25, 0.75, 0.25, 0.75],
            [1e6, 1.0, 1e6, 1.0],
        ] {
            for layout in [
                Layout::natural(&cfg),
                Layout::from_order(&cfg, vec![BlockId(0), BlockId(1), BlockId(3), BlockId(2)])
                    .unwrap(),
                Layout::from_order(&cfg, vec![BlockId(0), BlockId(3), BlockId(1), BlockId(2)])
                    .unwrap(),
            ] {
                let c = expected_cost(&cfg, &layout, &freq, &pen);
                assert_eq!(c.mispredicted.to_bits(), c.branches_taken.to_bits());
                let total = c.branches_taken + c.branches_not_taken;
                if total > 0.0 {
                    assert_eq!(
                        c.misprediction_rate().to_bits(),
                        (c.branches_taken / total).to_bits()
                    );
                }
                let under = crate::cost_model::expected_cost_under(
                    &cfg,
                    &layout,
                    &freq,
                    &pen,
                    ct_cfg::layout::BranchPredictor::AlwaysNotTaken,
                );
                assert_eq!(c, under);
            }
        }
    }

    #[test]
    fn btfnt_scoring_relabels_but_never_recharges() {
        use ct_cfg::graph::Terminator;
        use ct_cfg::layout::BranchPredictor;
        // A self-loop: the back-edge's taken-target is backward, where the
        // two predictor models disagree.
        let mut cfg = ct_cfg::graph::Cfg::new("self_loop");
        cfg.add_block(
            "head",
            Terminator::Branch {
                on_true: BlockId(0),
                on_false: BlockId(1),
            },
        );
        cfg.add_block("exit", Terminator::Return);
        cfg.validate().unwrap();
        let l = Layout::natural(&cfg);
        let pen = PenaltyModel::avr();
        let freq = [9.0, 1.0];
        let ant = crate::cost_model::expected_cost_under(
            &cfg,
            &l,
            &freq,
            &pen,
            BranchPredictor::AlwaysNotTaken,
        );
        let btfnt =
            crate::cost_model::expected_cost_under(&cfg, &l, &freq, &pen, BranchPredictor::Btfnt);
        assert!((ant.mispredicted - 9.0).abs() < 1e-12);
        assert!((btfnt.mispredicted - 1.0).abs() < 1e-12);
        assert_eq!(ant.extra_cycles.to_bits(), btfnt.extra_cycles.to_bits());
    }

    #[test]
    fn zero_frequencies_cost_nothing() {
        let cfg = diamond();
        let c = expected_cost(
            &cfg,
            &Layout::natural(&cfg),
            &[0.0; 4],
            &PenaltyModel::avr(),
        );
        assert_eq!(c.extra_cycles, 0.0);
        assert_eq!(c.misprediction_rate(), 0.0);
    }
}

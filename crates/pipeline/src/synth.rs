//! Seeded synthetic-sample generation: exact-duration samples drawn from a
//! known Markov model, for estimator ablations where the true parameters
//! must be exact by construction.

use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;
use ct_core::samples::TimingSamples;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws `n` exact-duration samples (cycle-accurate ticks) from the true
/// model: each sample is a random CFG walk under `truth`, its duration the
/// sum of the visited block and edge costs.
///
/// # Panics
///
/// Panics when `truth` induces no absorbing chain over `cfg` (a malformed
/// synthetic problem — the bundled generators never produce one).
pub fn synth_samples(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    truth: &BranchProbs,
    n: usize,
    seed: u64,
) -> TimingSamples {
    let chain = match ct_markov::chain_from_cfg(cfg, truth) {
        Ok(chain) => chain,
        Err(e) => panic!("synthetic problem induces no valid chain: {e}"),
    };
    // Edge costs keyed by (from, to) once, instead of an O(E) scan per
    // traversed edge of every sampled walk.
    let edge_cost: std::collections::HashMap<(usize, usize), u64> = cfg
        .edges()
        .iter()
        .map(|e| ((e.from.index(), e.to.index()), edge_costs[e.index]))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ticks = Vec::with_capacity(n);
    for _ in 0..n {
        let run = match ct_markov::sample_run(&chain, cfg.entry().index(), &mut rng, 1_000_000) {
            Some(run) => run,
            None => panic!("synthetic chain did not absorb within the step bound"),
        };
        let mut d: u64 = run.iter().map(|&b| block_costs[b]).sum();
        for w in run.windows(2) {
            match edge_cost.get(&(w[0], w[1])) {
                Some(c) => d += c,
                None => panic!("sampled walk crossed a non-edge {} -> {}", w[0], w[1]),
            }
        }
        ticks.push(d);
    }
    TimingSamples::new(ticks, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_apps::synthetic::diamond_chain_problem;

    #[test]
    fn synthesis_is_seeded_and_exact() {
        let (cfg, bc, ec, truth) = diamond_chain_problem(2, 70);
        let a = synth_samples(&cfg, &bc, &ec, &truth, 200, 7_000);
        let b = synth_samples(&cfg, &bc, &ec, &truth, 200, 7_000);
        let c = synth_samples(&cfg, &bc, &ec, &truth, 200, 7_001);
        assert_eq!(a.ticks(), b.ticks());
        assert_ne!(a.ticks(), c.ticks());
        assert_eq!(a.len(), 200);
        assert_eq!(a.cycles_per_tick(), 1);
    }
}

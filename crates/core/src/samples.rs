//! Timing sample containers: what the mote's instrumentation hands the
//! estimator — plus the input hygiene (validation, robust trimming) the
//! estimator applies before trusting samples that crossed a lossy channel.

use ct_stats::descriptive::{quantile, Summary};
use std::error::Error;
use std::fmt;

/// A defect in a timing-sample set that makes it unusable (or only partially
/// usable) as estimator input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleIssue {
    /// The timer resolution was reported as zero cycles per tick.
    ZeroResolution,
    /// No samples were collected.
    Empty,
    /// A tick value is so large that converting it to cycles overflows
    /// `u64` — a stuck-at counter or a corrupted record, never a real
    /// duration.
    TickOverflow {
        /// The offending tick value.
        tick: u64,
        /// The resolution it was reported at.
        cycles_per_tick: u64,
    },
}

impl fmt::Display for SampleIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleIssue::ZeroResolution => write!(f, "timer resolution is zero cycles per tick"),
            SampleIssue::Empty => write!(f, "no timing samples provided"),
            SampleIssue::TickOverflow {
                tick,
                cycles_per_tick,
            } => write!(
                f,
                "tick value {tick} at {cycles_per_tick} cycles/tick overflows the cycle counter"
            ),
        }
    }
}

impl Error for SampleIssue {}

/// Robust-trimming configuration: quantile fences with a spread multiplier.
///
/// The fences are `[q_lo − k·spread, q_hi + k·spread]` where
/// `spread = max(q_hi − q_lo, scaled MAD, 1)`. Quantile spread (rather than
/// a bare MAD fence) keeps legitimately multi-modal duration samples — a
/// branchy procedure's fast/slow paths — inside the fences while cutting
/// channel garbage: merged windows, interrupt-latency spikes, stuck-at
/// counters.
///
/// The default quantile base is deliberately far out (2%/98%): a real
/// program's rare-path mode — a buffer flush every 16th activation, say —
/// is a legitimate duration cluster that an aggressive fence would guillotine,
/// and a mis-trimmed mode biases every downstream estimate. Diffuse
/// contamination that slips inside the wide fences is the estimator's
/// problem, not the trimmer's: the EM likelihood ignores off-support
/// samples, and the ladder's unexplained-fraction budget bounds how much of
/// it an accepted answer may carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrimPolicy {
    /// Lower fence quantile.
    pub lo_q: f64,
    /// Upper fence quantile.
    pub hi_q: f64,
    /// Spread multiplier beyond the fence quantiles.
    pub k: f64,
}

impl Default for TrimPolicy {
    fn default() -> Self {
        TrimPolicy {
            lo_q: 0.02,
            hi_q: 0.98,
            k: 2.0,
        }
    }
}

/// The estimator-facing view of a duration sample set: everything the EM,
/// moments, and flow estimators actually consume — the timer resolution, the
/// distinct-tick histogram, and the first two moments.
///
/// Two implementations exist: the materialized [`TimingSamples`] vector (one
/// mote's batch, in arrival order) and the mergeable
/// [`crate::stream::SuffStats`] accumulator (many motes' batches, reduced to
/// sufficient statistics). Every estimator entry point is generic over this
/// trait, so a fleet of motes can stream tick batches to a base station and
/// feed EM/moments without ever re-materializing the full sample vector.
pub trait DurationSamples {
    /// Timer resolution in cycles per tick.
    fn cycles_per_tick(&self) -> u64;

    /// Number of samples observed.
    fn len(&self) -> usize;

    /// True when no samples were observed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct tick values with their multiplicities, ascending.
    fn counted(&self) -> Vec<(u64, usize)>;

    /// Sample mean converted to cycles.
    fn mean_cycles(&self) -> f64;

    /// Sample variance in cycles² (unbiased, `n − 1` denominator).
    fn variance_cycles(&self) -> f64;

    /// True when the second-moment accumulator behind
    /// [`DurationSamples::variance_cycles`] has lost information (e.g. a
    /// saturated square-sum in [`crate::stream::SuffStats`]) and the
    /// variance is only a lower bound. Moment-based estimation must refuse
    /// such input. Materialized vectors compute moments exactly, so the
    /// default is `false`.
    fn moments_saturated(&self) -> bool {
        false
    }

    /// Checks the sample set is usable as estimator input.
    ///
    /// # Errors
    ///
    /// The first [`SampleIssue`] found.
    fn validate(&self) -> Result<(), SampleIssue>;
}

impl DurationSamples for TimingSamples {
    fn cycles_per_tick(&self) -> u64 {
        TimingSamples::cycles_per_tick(self)
    }

    fn len(&self) -> usize {
        TimingSamples::len(self)
    }

    fn counted(&self) -> Vec<(u64, usize)> {
        TimingSamples::counted(self)
    }

    fn mean_cycles(&self) -> f64 {
        TimingSamples::mean_cycles(self)
    }

    fn variance_cycles(&self) -> f64 {
        TimingSamples::variance_cycles(self)
    }

    fn validate(&self) -> Result<(), SampleIssue> {
        TimingSamples::validate(self)
    }
}

/// End-to-end timing samples of one procedure: exclusive durations in ticks
//  of a known timer resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSamples {
    ticks: Vec<u64>,
    cycles_per_tick: u64,
}

impl TimingSamples {
    /// Wraps tick samples measured at `cycles_per_tick` resolution.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_tick == 0`. Library code receiving resolutions
    /// from outside should use [`TimingSamples::try_new`]; this constructor
    /// stays for tests and benches with literal resolutions.
    pub fn new(ticks: Vec<u64>, cycles_per_tick: u64) -> TimingSamples {
        match TimingSamples::try_new(ticks, cycles_per_tick) {
            Ok(s) => s,
            Err(_) => panic!("timer resolution must be positive"),
        }
    }

    /// Fallible constructor: wraps tick samples measured at
    /// `cycles_per_tick` resolution.
    ///
    /// # Errors
    ///
    /// [`SampleIssue::ZeroResolution`] if `cycles_per_tick == 0`.
    pub fn try_new(ticks: Vec<u64>, cycles_per_tick: u64) -> Result<TimingSamples, SampleIssue> {
        if cycles_per_tick == 0 {
            return Err(SampleIssue::ZeroResolution);
        }
        Ok(TimingSamples {
            ticks,
            cycles_per_tick,
        })
    }

    /// Checks the sample set is usable as estimator input: non-empty, and
    /// every tick convertible to cycles without overflowing `u64` (the
    /// quantization kernel needs `(tick + 1) · cycles_per_tick`).
    ///
    /// # Errors
    ///
    /// The first [`SampleIssue`] found.
    pub fn validate(&self) -> Result<(), SampleIssue> {
        if self.ticks.is_empty() {
            return Err(SampleIssue::Empty);
        }
        for &t in &self.ticks {
            if t.checked_add(1)
                .and_then(|t1| t1.checked_mul(self.cycles_per_tick))
                .is_none()
            {
                return Err(SampleIssue::TickOverflow {
                    tick: t,
                    cycles_per_tick: self.cycles_per_tick,
                });
            }
        }
        Ok(())
    }

    /// Robust outlier trimming: returns the samples inside the
    /// quantile-fence window of `policy` plus the number dropped.
    ///
    /// Overflowing ticks (see [`TimingSamples::validate`]) are dropped
    /// unconditionally *before* the fences are estimated: they can never be
    /// real durations, and at contamination rates beyond the fence quantile
    /// they would otherwise poison the quantiles themselves (a stuck-at
    /// counter at 30% would drag the upper fence to `u64::MAX`). Callers
    /// that need a hard validity guarantee still re-validate afterwards
    /// (the degradation ladder does).
    pub fn trimmed(&self, policy: TrimPolicy) -> (TimingSamples, usize) {
        let overflow = |t: u64| {
            t.checked_add(1)
                .and_then(|t1| t1.checked_mul(self.cycles_per_tick))
                .is_none()
        };
        let sane: Vec<u64> = self
            .ticks
            .iter()
            .copied()
            .filter(|&t| !overflow(t))
            .collect();
        let pre_dropped = self.ticks.len() - sane.len();
        if sane.is_empty() {
            return (
                TimingSamples {
                    ticks: sane,
                    cycles_per_tick: self.cycles_per_tick,
                },
                pre_dropped,
            );
        }
        let this = TimingSamples {
            ticks: sane,
            cycles_per_tick: self.cycles_per_tick,
        };
        let (kept, fence_dropped) = this.fence_trimmed(policy);
        (kept, pre_dropped + fence_dropped)
    }

    /// Quantile-fence trimming on an overflow-free sample set.
    fn fence_trimmed(&self, policy: TrimPolicy) -> (TimingSamples, usize) {
        if self.ticks.is_empty() {
            return (self.clone(), 0);
        }
        let xs = self.as_f64();
        let q_lo = quantile(&xs, policy.lo_q);
        let q_hi = quantile(&xs, policy.hi_q);
        // Scaled median absolute deviation: consistent with σ under
        // normality; zero for majority-constant samples, hence the max
        // with the quantile spread and 1 tick.
        let med = quantile(&xs, 0.5);
        let dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
        let mad = 1.4826 * quantile(&dev, 0.5);
        let spread = (q_hi - q_lo).max(mad).max(1.0);
        let lo = q_lo - policy.k * spread;
        let hi = q_hi + policy.k * spread;
        let kept: Vec<u64> = self
            .ticks
            .iter()
            .copied()
            .filter(|&t| {
                let x = t as f64;
                x >= lo && x <= hi
            })
            .collect();
        let dropped = self.ticks.len() - kept.len();
        (
            TimingSamples {
                ticks: kept,
                cycles_per_tick: self.cycles_per_tick,
            },
            dropped,
        )
    }

    /// The raw tick values.
    pub fn ticks(&self) -> &[u64] {
        &self.ticks
    }

    /// Timer resolution in cycles per tick.
    pub fn cycles_per_tick(&self) -> u64 {
        self.cycles_per_tick
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Sample mean converted to cycles (ticks × resolution, plus half a tick
    /// to correct the floor-quantization bias).
    pub fn mean_cycles(&self) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        let s = Summary::of(&self.as_f64());
        s.mean * self.cycles_per_tick as f64 + 0.0
    }

    /// Sample variance in cycles².
    pub fn variance_cycles(&self) -> f64 {
        let s = Summary::of(&self.as_f64());
        s.variance * (self.cycles_per_tick as f64).powi(2)
    }

    /// Distinct tick values with their multiplicities, ascending.
    pub fn counted(&self) -> Vec<(u64, usize)> {
        let mut sorted = self.ticks.clone();
        sorted.sort_unstable();
        let mut out: Vec<(u64, usize)> = Vec::new();
        for t in sorted {
            match out.last_mut() {
                Some((v, n)) if *v == t => *n += 1,
                _ => out.push((t, 1)),
            }
        }
        out
    }

    fn as_f64(&self) -> Vec<f64> {
        self.ticks.iter().map(|&t| t as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_groups_duplicates() {
        let s = TimingSamples::new(vec![3, 1, 3, 3, 2, 1], 1);
        assert_eq!(s.counted(), vec![(1, 2), (2, 1), (3, 3)]);
    }

    #[test]
    fn mean_scales_with_resolution() {
        let s = TimingSamples::new(vec![2, 4], 100);
        assert!((s.mean_cycles() - 300.0).abs() < 1e-12);
    }

    #[test]
    fn variance_scales_quadratically() {
        let s = TimingSamples::new(vec![2, 4], 10);
        // tick variance = 2 → cycles² variance = 200.
        assert!((s.variance_cycles() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_samples_are_harmless() {
        let s = TimingSamples::new(vec![], 10);
        assert!(s.is_empty());
        assert_eq!(s.mean_cycles(), 0.0);
        assert_eq!(s.counted(), vec![]);
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_rejected() {
        TimingSamples::new(vec![1], 0);
    }

    #[test]
    fn try_new_rejects_zero_resolution() {
        assert_eq!(
            TimingSamples::try_new(vec![1], 0),
            Err(SampleIssue::ZeroResolution)
        );
        assert!(TimingSamples::try_new(vec![1], 8).is_ok());
    }

    #[test]
    fn validate_flags_empty_and_overflow() {
        assert_eq!(
            TimingSamples::new(vec![], 1).validate(),
            Err(SampleIssue::Empty)
        );
        let s = TimingSamples::new(vec![u64::MAX / 2], 8);
        assert!(matches!(
            s.validate(),
            Err(SampleIssue::TickOverflow { .. })
        ));
        assert_eq!(TimingSamples::new(vec![5, 6], 244).validate(), Ok(()));
    }

    #[test]
    fn trimming_keeps_bimodal_bulk_and_drops_spikes() {
        // Legit two-path durations 115/215 plus channel garbage.
        let mut ticks = vec![115u64; 70];
        ticks.extend(vec![215u64; 30]);
        ticks.push(90_000); // interrupt-latency spike
        ticks.push(u64::MAX); // stuck-at counter
        let s = TimingSamples::new(ticks, 1);
        let (t, dropped) = s.trimmed(TrimPolicy::default());
        assert_eq!(dropped, 2);
        assert_eq!(t.len(), 100);
        assert!(t.ticks().contains(&215), "slow path survives trimming");
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn trimming_survives_heavy_stuck_at_contamination() {
        // 30% all-ones readings — beyond the fence quantile. The overflow
        // pre-filter must remove them before quantile estimation, or the
        // upper fence would blow up and keep everything.
        let mut ticks = vec![115u64; 49];
        ticks.extend(vec![215u64; 21]);
        ticks.extend(vec![u64::MAX; 30]);
        let s = TimingSamples::new(ticks, 244);
        let (t, dropped) = s.trimmed(TrimPolicy::default());
        assert_eq!(dropped, 30);
        assert_eq!(t.len(), 70);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn trimming_clean_samples_is_identity() {
        let mut ticks = vec![115u64; 70];
        ticks.extend(vec![215u64; 30]);
        let s = TimingSamples::new(ticks, 1);
        let (t, dropped) = s.trimmed(TrimPolicy::default());
        assert_eq!(dropped, 0);
        assert_eq!(t, s);
        let empty = TimingSamples::new(vec![], 1);
        assert_eq!(empty.trimmed(TrimPolicy::default()).1, 0);
    }

    #[test]
    fn issue_display() {
        assert!(SampleIssue::ZeroResolution.to_string().contains("zero"));
        let o = SampleIssue::TickOverflow {
            tick: u64::MAX,
            cycles_per_tick: 8,
        };
        assert!(o.to_string().contains("overflows"));
    }
}

//! Seeded synthetic-sample generation: exact-duration samples drawn from a
//! known Markov model, for estimator ablations where the true parameters
//! must be exact by construction.

use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;
use ct_core::samples::TimingSamples;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws `n` exact-duration samples (cycle-accurate ticks) from the true
/// model: each sample is a random CFG walk under `truth`, its duration the
/// sum of the visited block and edge costs.
///
/// # Panics
///
/// Panics when `truth` induces no absorbing chain over `cfg` (a malformed
/// synthetic problem — the bundled generators never produce one).
pub fn synth_samples(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    truth: &BranchProbs,
    n: usize,
    seed: u64,
) -> TimingSamples {
    let chain = ct_markov::chain_from_cfg(cfg, truth).expect("valid chain");
    let edges = cfg.edges();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ticks = Vec::with_capacity(n);
    for _ in 0..n {
        let run = ct_markov::sample_run(&chain, cfg.entry().index(), &mut rng, 1_000_000)
            .expect("absorbing chain");
        let mut d: u64 = run.iter().map(|&b| block_costs[b]).sum();
        for w in run.windows(2) {
            let e = edges
                .iter()
                .find(|e| e.from.index() == w[0] && e.to.index() == w[1])
                .expect("edge exists");
            d += edge_costs[e.index];
        }
        ticks.push(d);
    }
    TimingSamples::new(ticks, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_apps::synthetic::diamond_chain_problem;

    #[test]
    fn synthesis_is_seeded_and_exact() {
        let (cfg, bc, ec, truth) = diamond_chain_problem(2, 70);
        let a = synth_samples(&cfg, &bc, &ec, &truth, 200, 7_000);
        let b = synth_samples(&cfg, &bc, &ec, &truth, 200, 7_000);
        let c = synth_samples(&cfg, &bc, &ec, &truth, 200, 7_001);
        assert_eq!(a.ticks(), b.ticks());
        assert_ne!(a.ticks(), c.ticks());
        assert_eq!(a.len(), 200);
        assert_eq!(a.cycles_per_tick(), 1);
    }
}

//! Event-stream gating: owns its process so toggling the global flag
//! cannot race the unit tests.

#[test]
fn stream_gate_controls_event_recording() {
    // No CT_TRACE/CT_TRACE_JSON in the test environment -> defaults off.
    ct_obs::emit("gated.before", vec![]);

    ct_obs::set_stream_enabled(true);
    ct_obs::emit("gated.on", vec![("k", 1u64.into())]);

    ct_obs::set_stream_enabled(false);
    ct_obs::emit("gated.after", vec![]);

    let snap = ct_obs::snapshot();
    let names: Vec<&str> = snap.events.iter().map(|e| e.name.as_str()).collect();
    assert!(!names.contains(&"gated.before"), "default-off violated");
    assert!(names.contains(&"gated.on"));
    assert!(!names.contains(&"gated.after"));

    // Spans and counters are always on, independent of the gate.
    {
        let _s = ct_obs::Span::enter("gated.span");
    }
    ct_obs::Counter::new("gated.counter").incr();
    let snap = ct_obs::snapshot();
    assert!(snap.spans.iter().any(|(n, _)| n == "gated.span"));
    assert!(snap
        .counters
        .iter()
        .any(|(n, v)| n == "gated.counter" && *v == 1));

    // reset() clears everything (test support API).
    ct_obs::reset();
    let snap = ct_obs::snapshot();
    assert!(snap.events.is_empty() && snap.spans.is_empty() && snap.counters.is_empty());
}

//! Robustness contract for the whole pipeline: no measurement-channel fault,
//! at any rate, may panic the estimator or placement — the degradation
//! ladder must always return *something*, and fault injection must be a pure
//! function of its plan (independent of thread count and call order).

use std::panic::{catch_unwind, AssertUnwindSafe};

use code_tomography::cfg::profile::BranchProbs;
use code_tomography::core::estimator::{estimate, estimate_robust, EstimateOptions, RobustOptions};
use code_tomography::core::samples::TimingSamples;
use code_tomography::faults::{FaultKind, FaultPlan};
use code_tomography::markov;
use code_tomography::mote::cost::{AvrCost, CostModel};
use code_tomography::mote::interp::Mote;
use code_tomography::mote::timer::VirtualTimer;
use code_tomography::mote::trace::TimingProfiler;
use code_tomography::placement::{place_with_confidence, Strategy, MIN_PLACEMENT_CONFIDENCE};

/// Profiles `sense` for `n` activations on the 1 MHz timer and returns the
/// mote plus its clean timing samples.
fn profile_sense(n: usize, seed: u64) -> (Mote, ct_ir::instr::ProcId, TimingSamples) {
    let app = code_tomography::apps::app_by_name("sense").expect("app exists");
    let mut mote = app.boot(Box::new(AvrCost));
    mote.reseed(seed);
    let program = mote.program().clone();
    let pid = app.target_id(&program);
    let timer = VirtualTimer::mhz1_at_8mhz();
    let cpt = timer.cycles_per_tick();
    let mut tp = TimingProfiler::new(&program, timer, 0);
    for i in 0..n {
        if let Some(hook) = app.per_call {
            hook(&mut mote, i);
        }
        mote.call(pid, &[], &mut tp).expect("app runs");
    }
    let samples = TimingSamples::new(tp.samples(pid).to_vec(), cpt);
    (mote, pid, samples)
}

#[test]
fn every_fault_kind_at_full_rate_never_panics_the_pipeline() {
    let (mote, pid, clean) = profile_sense(400, 77);
    let cfg = mote.program().procs[pid.index()].cfg.clone();
    let block_costs = mote.static_block_costs(pid);
    let edge_costs = mote.static_edge_costs(pid);
    let pen = AvrCost.penalties();

    for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
        let faulty = FaultPlan::single(kind, 1.0, 9_000 + i as u64)
            .build()
            .apply(&clean);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // The front door may refuse (typed error) but must not panic.
            let naive = estimate(
                &cfg,
                block_costs,
                edge_costs,
                &faulty,
                EstimateOptions::default(),
            )
            .map(|e| e.probs)
            .unwrap_or_else(|_| BranchProbs::uniform(&cfg, 0.5));
            // The ladder must always return an estimate, down to the prior.
            let robust = estimate_robust(
                &cfg,
                block_costs,
                edge_costs,
                &faulty,
                RobustOptions::default(),
            );
            // And placement must accept whatever came out of either path.
            for (probs, conf) in [(&naive, 1.0), (&robust.estimate.probs, robust.confidence)] {
                if let Ok(freq) = markov::visits::expected_edge_traversals(&cfg, probs) {
                    let _ = place_with_confidence(
                        &cfg,
                        &freq,
                        conf,
                        MIN_PLACEMENT_CONFIDENCE,
                        &pen,
                        Strategy::Best,
                    );
                }
            }
            robust.confidence
        }));
        let conf = outcome.unwrap_or_else(|_| panic!("{kind} at rate 1.0 panicked the pipeline"));
        assert!(
            (0.0..=1.0).contains(&conf),
            "{kind}: confidence {conf} out of range"
        );
    }
}

#[test]
fn zero_rate_faults_leave_the_estimate_bitwise_unchanged() {
    let (mote, pid, clean) = profile_sense(600, 78);
    let cfg = mote.program().procs[pid.index()].cfg.clone();

    // A chain of every fault model at rate zero is the identity — on the
    // samples, and therefore on everything downstream.
    let mut plan = FaultPlan::new(4242);
    for kind in FaultKind::ALL {
        plan = plan.with(kind, 0.0);
    }
    let faulted = plan.build().apply(&clean);
    assert_eq!(clean, faulted, "zero-rate chain must be the identity");

    let run = |s: &TimingSamples| {
        estimate_robust(
            &cfg,
            mote.static_block_costs(pid),
            mote.static_edge_costs(pid),
            s,
            RobustOptions::default(),
        )
    };
    let a = run(&clean);
    let b = run(&faulted);
    assert_eq!(a.estimate.probs.as_slice(), b.estimate.probs.as_slice());
    assert_eq!(a.rung, b.rung);
    assert_eq!(a.confidence, b.confidence);
}

#[test]
fn fault_injection_is_identical_across_thread_counts() {
    let (_mote, _pid, clean) = profile_sense(500, 79);

    // The e13 sweep shards cells across `CT_THREADS` workers; each cell's
    // corruption must depend only on its plan, never on which worker ran it
    // or in what order. Re-apply the same plans concurrently from several
    // threads and demand bitwise-identical streams.
    let plans: Vec<FaultPlan> = FaultKind::ALL
        .into_iter()
        .enumerate()
        .map(|(i, kind)| FaultPlan::single(kind, 0.4, 31_337 + i as u64))
        .collect();
    let reference: Vec<TimingSamples> = plans.iter().map(|p| p.build().apply(&clean)).collect();

    for workers in [1usize, 4] {
        let replayed: Vec<TimingSamples> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let plans = &plans;
                    let clean = &clean;
                    scope.spawn(move || {
                        plans
                            .iter()
                            .map(|p| p.build().apply(clean))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut first = None;
            for h in handles {
                let got = h.join().expect("worker panicked");
                if let Some(prev) = &first {
                    assert_eq!(prev, &got, "workers disagreed at {workers} threads");
                } else {
                    first = Some(got);
                }
            }
            first.expect("at least one worker")
        });
        assert_eq!(reference, replayed, "thread count {workers} changed faults");
    }
}

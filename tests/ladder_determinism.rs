//! The five-rung ladder (with GNT) must be bit-identical across thread
//! counts, and on clean data it must still answer at full EM — bitwise
//! identical to the pre-0.10 four-rung ladder (`use_gnt = false`).
//!
//! This test mutates the process-global `CT_THREADS` variable, so it is
//! the ONLY test in this binary (integration tests in one file share a
//! process).

use ct_core::estimator::{estimate_robust, RobustEstimate, RobustOptions, Rung};
use ct_core::fb::FbParams;
use ct_core::samples::TimingSamples;
use proptest::prelude::*;

fn fingerprint(r: &RobustEstimate) -> (Vec<u64>, u64, String) {
    (
        r.estimate
            .probs
            .as_slice()
            .iter()
            .map(|p| p.to_bits())
            .collect(),
        r.confidence.to_bits(),
        r.rung.to_string(),
    )
}

fn ladder_with_threads(
    threads: &str,
    cfg: &ct_cfg::graph::Cfg,
    bc: &[u64],
    ec: &[u64],
    samples: &TimingSamples,
    opts: RobustOptions,
) -> RobustEstimate {
    std::env::set_var("CT_THREADS", threads);
    estimate_robust(cfg, bc, ec, samples, opts)
}

/// Forward–backward strangled small enough that full and trimmed EM both
/// fail on a loop-heavy workload, forcing the descent into the GNT rung
/// (mirrors `ladder_reaches_gnt_when_em_explodes` in ct-core).
fn strangled() -> RobustOptions {
    let mut opts = RobustOptions::default();
    opts.base.em.fb = FbParams {
        mass_eps: 1e-12,
        max_entries: 3,
        ..FbParams::default()
    };
    opts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]
    #[test]
    fn gnt_ladder_is_bitwise_deterministic_across_thread_counts(
        p in 0.1f64..0.9,
        q in 0.3f64..0.95,
        n in 60usize..200,
        seed in 0u64..1_000,
    ) {
        // Scenario 1: clean diamond-chain samples. The ladder must answer
        // at full EM, identically at any thread count, and identically
        // with the GNT rung disabled — the golden pin that adding the
        // rung changed nothing on the healthy path.
        let (cfg, bc, ec, _) = ct_apps::synthetic::diamond_chain_problem(2, seed);
        let truth = ct_cfg::profile::BranchProbs::from_vec(&cfg, vec![p, q]);
        let chain = ct_markov::chain_from_cfg(&cfg, &truth).expect("valid chain");
        let edges = cfg.edges();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let ticks: Vec<u64> = (0..n)
            .map(|_| {
                let run = ct_markov::sample_run(&chain, cfg.entry().index(), &mut rng, 10_000)
                    .expect("absorbing chain");
                let mut d: u64 = run.iter().map(|&b| bc[b]).sum();
                for w in run.windows(2) {
                    let e = edges
                        .iter()
                        .find(|e| e.from.index() == w[0] && e.to.index() == w[1])
                        .expect("edge exists");
                    d += ec[e.index];
                }
                d
            })
            .collect();
        let samples = TimingSamples::new(ticks, 1);

        let serial = ladder_with_threads("1", &cfg, &bc, &ec, &samples, RobustOptions::default());
        let parallel = ladder_with_threads("4", &cfg, &bc, &ec, &samples, RobustOptions::default());
        prop_assert_eq!(serial.rung, Rung::FullEm, "clean data must answer at full EM");
        prop_assert_eq!(fingerprint(&serial), fingerprint(&parallel), "thread count changed the ladder");
        let no_gnt = ladder_with_threads("1", &cfg, &bc, &ec, &samples, RobustOptions {
            use_gnt: false,
            ..RobustOptions::default()
        });
        prop_assert_eq!(fingerprint(&serial), fingerprint(&no_gnt), "the GNT rung touched the clean path");

        // Scenario 2: force the descent into the GNT rung on a geometric
        // loop workload and require bitwise identity across thread counts
        // there too (the CF inversion is pure serial math).
        let loop_cfg = ct_cfg::builder::while_loop();
        let (lbc, lec) = (vec![2u64, 3, 10, 1], vec![0u64; loop_cfg.edges().len()]);
        let mut lticks = Vec::new();
        for k in 0..60u64 {
            let copies = ((n as f64) * q.powi(k as i32) * (1.0 - q)) as usize;
            lticks.extend(vec![6 + 13 * k; copies]);
        }
        let lsamples = TimingSamples::new(lticks, 1);
        let lserial = ladder_with_threads("1", &loop_cfg, &lbc, &lec, &lsamples, strangled());
        let lparallel = ladder_with_threads("4", &loop_cfg, &lbc, &lec, &lsamples, strangled());
        std::env::remove_var("CT_THREADS");
        prop_assert_eq!(fingerprint(&lserial), fingerprint(&lparallel), "thread count changed the GNT rung");
    }
}

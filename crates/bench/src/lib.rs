#![warn(missing_docs)]

//! # ct-bench
//!
//! The experiment harness regenerating the paper's evaluation: one binary
//! per table/figure (see DESIGN.md's experiment index) plus Criterion
//! microbenchmarks.
//!
//! | binary | experiment |
//! |---|---|
//! | `e1_accuracy` | estimation accuracy vs sample count (Table) |
//! | `e2_resolution` | accuracy vs timer resolution (Figure) |
//! | `e3_overhead` | profiling overhead comparison (Table) |
//! | `e4_placement` | misprediction reduction by layout (Table) |
//! | `e5_speedup` | end-to-end cycle improvement (Figure) |
//! | `e6_noise` | robustness to interrupt contamination (Figure) |
//! | `e7_estimators` | EM vs moments vs flow ablation (Figure) |
//! | `e8_scalability` | estimation cost vs CFG size (Figure) |
//! | `e9_pipeline` | full per-app case study (Table) |
//! | `e10_unroll_ablation` | counted-loop unrolling ablation (Table, extension) |
//! | `e11_model_error` | robustness to block-cost model error (Table, extension) |
//! | `e12_cross_mcu` | cross-MCU pipeline + energy (Table, extension) |
//! | `e13_faults` | naive EM vs degradation ladder under channel faults (Table, extension) |
//!
//! Each binary prints a markdown table and mirrors it into `results/`.
//!
//! ## Example
//!
//! ```
//! use ct_bench::harness::{run_app, estimate_run, Mcu};
//! use ct_core::estimator::EstimateOptions;
//! use ct_mote::timer::VirtualTimer;
//!
//! let app = ct_apps::app_by_name("sense").unwrap();
//! let run = run_app(&app, Mcu::Avr, 500, VirtualTimer::mhz1_at_8mhz(), 0, 1);
//! let (_est, acc) = estimate_run(&run, EstimateOptions::default());
//! assert!(acc.mae < 0.05);
//! ```

pub mod harness;
pub mod table;

pub use harness::{
    edge_frequencies, estimate_run, par_sweep, penalties, random_layout, replay_with_layout,
    run_app, run_on_mote, run_with_profiler, AppRun, Mcu,
};
pub use table::{f2, f4, write_result, Table};

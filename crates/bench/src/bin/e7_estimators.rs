//! E7 — Estimator ablation: EM vs moment matching vs flow-NNLS (Figure).
//!
//! Claim evaluated: the full likelihood (EM over the time-expanded chain)
//! extracts strictly more from the same samples than moment- or mean-based
//! inversion, at higher compute cost. Synthetic problems make the true
//! parameters exact.

use ct_apps::synthetic::{diamond_chain_problem, loop_problem};
use ct_bench::{f4, write_result, Table};
use ct_cfg::graph::Cfg;
use ct_cfg::profile::BranchProbs;
use ct_core::accuracy::compare_unweighted;
use ct_core::estimator::{estimate, EstimateOptions, Method};
use ct_core::samples::TimingSamples;
use ct_markov::chain_from_cfg;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Draws `n` exact-duration samples from the true model.
fn synth_samples(
    cfg: &Cfg,
    bc: &[u64],
    ec: &[u64],
    truth: &BranchProbs,
    n: usize,
    seed: u64,
) -> TimingSamples {
    let chain = chain_from_cfg(cfg, truth).expect("valid chain");
    let edges = cfg.edges();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ticks = Vec::with_capacity(n);
    for _ in 0..n {
        let run = ct_markov::sample_run(&chain, cfg.entry().index(), &mut rng, 1_000_000)
            .expect("absorbing chain");
        let mut d: u64 = run.iter().map(|&b| bc[b]).sum();
        for w in run.windows(2) {
            let e = edges
                .iter()
                .find(|e| e.from.index() == w[0] && e.to.index() == w[1])
                .expect("edge exists");
            d += ec[e.index];
        }
        ticks.push(d);
    }
    TimingSamples::new(ticks, 1)
}

fn main() {
    let n = 3_000;
    let mut table = Table::new(vec![
        "problem", "branches", "method", "mae", "max err", "iters", "time ms",
    ]);

    type Problem = (String, Cfg, Vec<u64>, Vec<u64>, BranchProbs);
    let mut problems: Vec<Problem> = Vec::new();
    for k in [1usize, 2, 3, 4] {
        let (cfg, bc, ec, truth) = diamond_chain_problem(k, 70 + k as u64);
        problems.push((format!("diamond_chain_{k}"), cfg, bc, ec, truth));
    }
    let (cfg, bc, ec, truth) = loop_problem(99);
    problems.push(("while_loop".into(), cfg, bc, ec, truth));

    // One job per problem (methods stay serial inside a job so their
    // relative per-method timings remain comparable); problems fan out.
    let rows_per_problem =
        ct_bench::par_sweep(problems.iter().collect(), |(name, cfg, bc, ec, truth)| {
            let samples = synth_samples(cfg, bc, ec, truth, n, 7_000);
            let mut rows = Vec::new();
            for method in [Method::Em, Method::Moments, Method::FlowMean] {
                let opts = EstimateOptions {
                    method: Some(method),
                    ..Default::default()
                };
                let start = Instant::now();
                let est = estimate(cfg, bc, ec, &samples, opts).expect("estimation succeeds");
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                let acc = compare_unweighted(&est.probs, truth);
                rows.push(vec![
                    name.clone(),
                    truth.len().to_string(),
                    method.to_string(),
                    f4(acc.mae),
                    f4(acc.max_err),
                    est.iterations.to_string(),
                    format!("{elapsed:.2}"),
                ]);
            }
            eprintln!("e7: {name} done");
            rows
        });
    for rows in rows_per_problem {
        for row in rows {
            table.row(row);
        }
    }

    let out = format!(
        "# E7 — Estimator ablation on synthetic problems\n\n\
         {n} exact-duration samples per problem (cycle-accurate); true parameters\n\
         known by construction. flow-mean uses only the sample mean; moments uses\n\
         mean+variance; EM uses the full duration distribution.\n\n{}",
        table.to_markdown()
    );
    println!("{out}");
    write_result("e7_estimators.md", &out);
}

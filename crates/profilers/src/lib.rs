#![warn(missing_docs)]

//! # ct-profilers
//!
//! The conventional on-mote profilers Code Tomography is evaluated against,
//! each with an explicit overhead model (cycles per event, RAM, flash):
//!
//! - [`edge_counter`] — a 16-bit RAM counter on every CFG edge: exact, and
//!   the most expensive in both cycles and RAM.
//! - [`ball_larus`] — Ball–Larus efficient path profiling: exact path
//!   frequencies from one register update per edge plus a table increment per
//!   path; RAM scales with the static path count.
//! - [`sampling`] — timer-interrupt PC sampling: cheap but time-biased and
//!   approximate.
//! - [`overhead`] — the unified cost-reporting vocabulary (experiment E3).
//!
//! The simulator-only ground truth profiler lives in `ct_mote::trace`; Code
//! Tomography's timestamp layer is `ct_mote::trace::TimingProfiler` with the
//! static costs modeled in [`overhead::tomography`].
//!
//! ## Example
//!
//! ```
//! use ct_profilers::edge_counter::EdgeCounterProfiler;
//! use ct_mote::{cost::AvrCost, interp::Mote};
//! use ct_ir::instr::ProcId;
//!
//! let program = ct_ir::compile_source(
//!     "module M { var a: u16; proc f(x: u16) {
//!          if (x > 5) { a = a + 1; } else { }
//!      } }",
//! ).unwrap();
//! let mut mote = Mote::new(program.clone(), Box::new(AvrCost));
//! let mut counters = EdgeCounterProfiler::new(&program);
//! for x in 0..10 {
//!     mote.call(ProcId(0), &[x], &mut counters).unwrap();
//! }
//! let probs = counters.profile(ProcId(0)).branch_probs(&program.procs[0].cfg);
//! assert!((probs.as_slice()[0] - 0.4).abs() < 1e-9);
//! ```

pub mod ball_larus;
pub mod edge_counter;
pub mod overhead;
pub mod sampling;

pub use ball_larus::{BallLarusProfiler, BlError, BlNumbering};
pub use edge_counter::EdgeCounterProfiler;
pub use overhead::{static_costs, OverheadReport};
pub use sampling::SamplingProfiler;

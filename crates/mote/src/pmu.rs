//! The virtual performance-monitoring unit: a hardware-counter bank the
//! interpreter samples at every control transfer.
//!
//! Real MCUs in this class have no PMU — which is exactly why the paper
//! must *estimate* branch behavior from timing. The simulator, however,
//! can afford one, and it closes the measurement loop: placement decisions
//! made from estimated profiles are validated against counters with
//! hardware-grade ground truth, the way network-tomography estimates are
//! validated against per-link observations.
//!
//! Contract (the zero-observer-effect rule, extended to the PMU):
//!
//! - **Zero overhead.** Counting charges no cycles, perturbs no RNG, and
//!   touches no interpreter state — the PMU is pure bookkeeping beside the
//!   cycle counter, like [`GroundTruthProfiler`](crate::trace::GroundTruthProfiler).
//! - **Always on.** There is no gate to flip; a gated PMU would make
//!   "with counters" and "without counters" distinct configurations to
//!   keep bitwise-identical, which is a contract nobody needs.
//! - **Deterministic.** Counters are a pure function of the executed path
//!   and the installed layouts, so a seeded run reproduces them bitwise at
//!   any thread count.
//!
//! Mispredictions are counted under *both* static predictor models
//! side by side ([`BranchPredictor::AlwaysNotTaken`] — what the
//! AVR/MSP430 penalty models charge — and [`BranchPredictor::Btfnt`]),
//! so experiments can report the architectural rate and the what-if rate
//! from one run.

use ct_cfg::layout::{BranchPredictor, EdgeTransfer, TransferKind};
use ct_ir::instr::ProcId;

/// One procedure's (or the whole mote's) counter bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmuCounters {
    /// Conditional branch executions where the machine branch was taken.
    pub cond_taken: u64,
    /// Conditional branch executions that fell through.
    pub cond_not_taken: u64,
    /// Unconditional jump instructions executed (not elided by adjacency).
    pub jumps: u64,
    /// Straight-line transfers: fall-throughs and adjacency-elided jumps.
    pub fall_throughs: u64,
    /// Procedure activations (call events).
    pub calls: u64,
    /// Return terminators executed.
    pub returns: u64,
    /// Mispredictions under [`BranchPredictor::AlwaysNotTaken`].
    pub mispred_ant: u64,
    /// Mispredictions under [`BranchPredictor::Btfnt`].
    pub mispred_btfnt: u64,
    /// Exclusive cycles attributed to the procedure (callees' windows
    /// subtracted), including any instrumentation overhead charged inside
    /// the activation.
    pub cycles: u64,
}

impl PmuCounters {
    /// Folds `other` into `self` (plain field-wise addition — commutative
    /// and associative, the same merge discipline as `SuffStats`).
    pub fn merge(&mut self, other: &PmuCounters) {
        self.cond_taken += other.cond_taken;
        self.cond_not_taken += other.cond_not_taken;
        self.jumps += other.jumps;
        self.fall_throughs += other.fall_throughs;
        self.calls += other.calls;
        self.returns += other.returns;
        self.mispred_ant += other.mispred_ant;
        self.mispred_btfnt += other.mispred_btfnt;
        self.cycles += other.cycles;
    }

    /// Conditional branch executions observed.
    pub fn cond_total(&self) -> u64 {
        self.cond_taken + self.cond_not_taken
    }

    /// Misprediction count under `predictor`.
    pub fn mispredictions(&self, predictor: BranchPredictor) -> u64 {
        match predictor {
            BranchPredictor::AlwaysNotTaken => self.mispred_ant,
            BranchPredictor::Btfnt => self.mispred_btfnt,
        }
    }

    /// Misprediction rate under `predictor`; `0.0` when no conditional
    /// branches executed.
    pub fn misprediction_rate(&self, predictor: BranchPredictor) -> f64 {
        let total = self.cond_total();
        if total == 0 {
            0.0
        } else {
            self.mispredictions(predictor) as f64 / total as f64
        }
    }
}

/// A point-in-time copy of the counter bank: per-procedure counters plus
/// the mote-wide total.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PmuSnapshot {
    /// Counters per procedure, indexed by [`ProcId`].
    pub procs: Vec<PmuCounters>,
    /// Field-wise sum over all procedures.
    pub total: PmuCounters,
}

impl PmuSnapshot {
    /// The counters of `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range for the snapshot's program.
    pub fn proc(&self, proc: ProcId) -> &PmuCounters {
        &self.procs[proc.index()]
    }

    /// Folds `other` into `self` procedure-by-procedure (fleet merges).
    ///
    /// # Panics
    ///
    /// Panics if the snapshots cover different procedure counts — merging
    /// counters across different programs is meaningless.
    pub fn merge(&mut self, other: &PmuSnapshot) {
        assert_eq!(
            self.procs.len(),
            other.procs.len(),
            "PMU snapshots of different programs cannot merge"
        );
        for (a, b) in self.procs.iter_mut().zip(&other.procs) {
            a.merge(b);
        }
        self.total.merge(&other.total);
    }
}

#[derive(Debug, Clone, Copy)]
struct PmuFrame {
    proc: ProcId,
    entry_cycles: u64,
    child_cycles: u64,
}

/// The live counter bank inside a [`Mote`](crate::interp::Mote).
#[derive(Debug, Clone, Default)]
pub struct Pmu {
    procs: Vec<PmuCounters>,
    stack: Vec<PmuFrame>,
}

impl Pmu {
    /// A PMU shaped for `n_procs` procedures, all counters zero.
    pub fn new(n_procs: usize) -> Pmu {
        Pmu {
            procs: vec![PmuCounters::default(); n_procs],
            stack: Vec::new(),
        }
    }

    /// Zeroes every counter and clears the activation stack.
    pub fn reset(&mut self) {
        for c in &mut self.procs {
            *c = PmuCounters::default();
        }
        self.stack.clear();
    }

    /// Records a procedure activation starting at mote clock `cycles`.
    pub(crate) fn enter(&mut self, proc: ProcId, cycles: u64) {
        self.procs[proc.index()].calls += 1;
        self.stack.push(PmuFrame {
            proc,
            entry_cycles: cycles,
            child_cycles: 0,
        });
    }

    /// Records the activation's end at mote clock `cycles`, attributing the
    /// exclusive window (callees subtracted) to the procedure. Runs on the
    /// trap path too — the interpreter unwinds activations symmetrically.
    pub(crate) fn exit(&mut self, proc: ProcId, cycles: u64) {
        let Some(frame) = self.stack.pop() else {
            return; // unbalanced exit: drop rather than corrupt counters
        };
        debug_assert_eq!(frame.proc, proc, "PMU activation stack corrupted");
        let window = cycles.saturating_sub(frame.entry_cycles);
        let exclusive = window.saturating_sub(frame.child_cycles);
        self.procs[proc.index()].cycles += exclusive;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_cycles += window;
        }
    }

    /// Samples one control transfer of `proc`.
    pub(crate) fn record_transfer(&mut self, proc: ProcId, t: EdgeTransfer) {
        let c = &mut self.procs[proc.index()];
        match t.kind {
            TransferKind::FallThrough => c.fall_throughs += 1,
            TransferKind::Jump => c.jumps += 1,
            TransferKind::TakenBranch | TransferKind::TakenBranchOverJump => {}
        }
        if t.conditional {
            if t.taken {
                c.cond_taken += 1;
            } else {
                c.cond_not_taken += 1;
            }
            if BranchPredictor::AlwaysNotTaken.mispredicts(t.taken, t.backward_target) {
                c.mispred_ant += 1;
            }
            if BranchPredictor::Btfnt.mispredicts(t.taken, t.backward_target) {
                c.mispred_btfnt += 1;
            }
        }
    }

    /// Samples a `Return` terminator of `proc`.
    pub(crate) fn record_return(&mut self, proc: ProcId) {
        self.procs[proc.index()].returns += 1;
    }

    /// Copies the counter bank out (per-proc plus total).
    pub fn snapshot(&self) -> PmuSnapshot {
        let mut total = PmuCounters::default();
        for c in &self.procs {
            total.merge(c);
        }
        PmuSnapshot {
            procs: self.procs.clone(),
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AvrCost;
    use crate::interp::Mote;
    use crate::trace::NullProfiler;
    use ct_cfg::graph::BlockId;
    use ct_cfg::layout::Layout;

    /// One diamond (if/else) procedure; the classic PMU test subject.
    fn diamond_mote() -> Mote {
        Mote::new(
            ct_ir::compile_source(
                "module M { var a: u16; proc f(x: u16) {
                    if (x > 10) { a = a + x; } else { a = a * 2; }
                } }",
            )
            .unwrap(),
            Box::new(AvrCost),
        )
    }

    #[test]
    fn counters_merge_fieldwise() {
        let mut a = PmuCounters {
            cond_taken: 1,
            cond_not_taken: 2,
            jumps: 3,
            fall_throughs: 4,
            calls: 5,
            returns: 6,
            mispred_ant: 7,
            mispred_btfnt: 8,
            cycles: 9,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.cond_taken, 2);
        assert_eq!(a.cycles, 18);
        assert_eq!(a.cond_total(), 6);
    }

    #[test]
    fn diamond_counts_match_hand_computation_both_polarities() {
        use ct_ir::instr::ProcId;
        // Lowering emits [cond, join, then, else]. Natural layout: join is
        // next after cond, so neither successor is adjacent — the machine
        // emits `brcond then; jmp else`: the true arm takes the branch
        // (forward target), the false arm falls through into the jump.
        let mut mote = diamond_mote();
        let pid = ProcId(0);
        // 3 true-arm calls, 2 false-arm calls.
        for arg in [20i64, 30, 40, 1, 2] {
            mote.call(pid, &[arg], &mut NullProfiler).unwrap();
        }
        let snap = mote.pmu.snapshot();
        let c = snap.proc(pid);
        assert_eq!(c.calls, 5);
        assert_eq!(c.returns, 5);
        assert_eq!(c.cond_taken, 3, "true arm takes the branch");
        assert_eq!(c.cond_not_taken, 2, "false arm falls through to the jmp");
        // False arm rides `jmp else`; both arms jump to join unless
        // adjacent. From the lowering order [cond, join, then, else]:
        // then→join and else→join are both displaced jumps, and the false
        // arm adds its `jmp else`. 3 true calls: brcond taken + then→join
        // jump. 2 false calls: jmp else + else→join jump.
        assert_eq!(c.jumps, 3 + 2 * 2);
        // ANT: every taken branch mispredicts; the taken-target (then) is
        // forward of cond, so BTFNT agrees with ANT here.
        assert_eq!(c.mispredictions(BranchPredictor::AlwaysNotTaken), 3);
        assert_eq!(c.mispredictions(BranchPredictor::Btfnt), 3);
        assert!(
            (c.misprediction_rate(BranchPredictor::AlwaysNotTaken) - 0.6).abs() < 1e-12,
            "3 taken of 5 conditionals"
        );
        assert!(c.cycles > 0);
        assert_eq!(snap.total, *c, "single-proc program: total == proc");

        // Opposite polarity: put the *false* arm (else) right after cond.
        // Now the machine branch targets then only when taken — inverted:
        // next == else == on_false, so taken-target is on_true (then),
        // true arm takes, false arm falls through — same taken counts, but
        // the jump census changes (else→join becomes displaced or not per
        // the order).
        let cfg = mote.program().procs[0].cfg.clone();
        let order = vec![BlockId(0), BlockId(3), BlockId(2), BlockId(1)]; // cond, else, then, join
        let l = Layout::from_order(&cfg, order).unwrap();
        mote.pmu.reset();
        mote.set_layout(pid, l);
        for arg in [20i64, 30, 40, 1, 2] {
            mote.call(pid, &[arg], &mut NullProfiler).unwrap();
        }
        let c = mote.pmu.snapshot().procs[0];
        // cond: next is else (on_false) → true arm is the taken branch.
        assert_eq!(c.cond_taken, 3);
        assert_eq!(c.cond_not_taken, 2);
        // then is right before join: then→join falls through; else→join is
        // a displaced jump (2 false calls).
        assert_eq!(c.jumps, 2);
        assert_eq!(c.fall_throughs, 2 + 3, "else fall-through + then→join");
        assert_eq!(c.mispredictions(BranchPredictor::AlwaysNotTaken), 3);
        // Taken-target (then) is still forward → BTFNT == ANT.
        assert_eq!(c.mispredictions(BranchPredictor::Btfnt), 3);
    }

    #[test]
    fn loop_backedge_separates_the_predictor_models() {
        use ct_ir::instr::ProcId;
        let mut mote = Mote::new(
            ct_ir::compile_source(
                "module M { proc sum(n: u16) -> u32 {
                    var acc: u32 = 0;
                    var i: u16 = 0;
                    while (i < n) { acc = acc + i; i = i + 1; }
                    return acc;
                } }",
            )
            .unwrap(),
            Box::new(AvrCost),
        );
        let pid = ProcId(0);
        // Natural layout puts the body right after the header: the continue
        // edge falls through and only the (forward) exit takes the branch,
        // so both predictor models mispredict exactly once.
        mote.call(pid, &[10], &mut NullProfiler).unwrap();
        let c = mote.pmu.snapshot().procs[0];
        assert_eq!(c.cond_total(), 11, "10 continue + 1 exit test");
        assert_eq!(c.mispredictions(BranchPredictor::AlwaysNotTaken), 1);
        assert_eq!(c.mispredictions(BranchPredictor::Btfnt), 1);

        // Rotate the loop: [entry, body, header, exit] makes the continue
        // edge a *backward taken branch* — the shape the two models are
        // designed to disagree on. ANT eats all 10 iterations; BTFNT only
        // the final fall-through exit.
        let cfg = mote.program().procs[0].cfg.clone();
        let l =
            Layout::from_order(&cfg, vec![BlockId(0), BlockId(2), BlockId(1), BlockId(3)]).unwrap();
        mote.pmu.reset();
        mote.set_layout(pid, l);
        mote.call(pid, &[10], &mut NullProfiler).unwrap();
        let c = mote.pmu.snapshot().procs[0];
        assert_eq!(c.cond_total(), 11);
        assert_eq!(c.cond_taken, 10, "continue edge now takes the branch");
        assert_eq!(c.mispredictions(BranchPredictor::AlwaysNotTaken), 10);
        assert_eq!(c.mispredictions(BranchPredictor::Btfnt), 1);
        assert!(
            c.misprediction_rate(BranchPredictor::Btfnt)
                < c.misprediction_rate(BranchPredictor::AlwaysNotTaken)
        );
    }

    #[test]
    fn pmu_charges_zero_cycles_and_survives_reset() {
        use ct_ir::instr::ProcId;
        // Two identical motes, one cleared mid-run: cycle counters agree
        // exactly — the PMU never charges the machine.
        let mut a = diamond_mote();
        let mut b = diamond_mote();
        a.call(ProcId(0), &[20], &mut NullProfiler).unwrap();
        b.pmu.reset();
        b.call(ProcId(0), &[20], &mut NullProfiler).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.pmu.snapshot(), b.pmu.snapshot());
    }

    #[test]
    fn exclusive_cycles_subtract_callees_and_sum_to_the_clock() {
        use ct_ir::instr::ProcId;
        let mut mote = Mote::new(
            ct_ir::compile_source(
                "module M {
                    proc leaf(x: u16) -> u16 { return x * 2; }
                    proc top(x: u16) -> u16 { var y: u16 = leaf(x); return y + leaf(y); }
                }",
            )
            .unwrap(),
            Box::new(AvrCost),
        );
        let before = mote.cycles;
        mote.call(ProcId(1), &[3], &mut NullProfiler).unwrap();
        let used = mote.cycles - before;
        let snap = mote.pmu.snapshot();
        assert_eq!(snap.proc(ProcId(0)).calls, 2);
        assert_eq!(snap.proc(ProcId(1)).calls, 1);
        assert!(snap.proc(ProcId(0)).cycles > 0);
        assert!(snap.proc(ProcId(1)).cycles > 0);
        // Exclusive windows partition the consumed cycles exactly.
        assert_eq!(snap.total.cycles, used);
    }

    #[test]
    fn trap_unwind_keeps_the_activation_stack_balanced() {
        use ct_ir::instr::ProcId;
        let mut mote = Mote::new(
            ct_ir::compile_source(
                "module M {
                    proc bad(x: u16) -> u16 { return 10 / x; }
                    proc top(x: u16) -> u16 { return bad(x); }
                }",
            )
            .unwrap(),
            Box::new(AvrCost),
        );
        mote.call(ProcId(1), &[0], &mut NullProfiler).unwrap_err();
        // Both activations closed on the trap path; a follow-up clean call
        // attributes cycles normally.
        let trapped = mote.pmu.snapshot();
        assert_eq!(trapped.proc(ProcId(0)).calls, 1);
        assert_eq!(trapped.proc(ProcId(1)).calls, 1);
        mote.call(ProcId(1), &[2], &mut NullProfiler).unwrap();
        let snap = mote.pmu.snapshot();
        assert_eq!(snap.proc(ProcId(1)).calls, 2);
        assert_eq!(
            snap.proc(ProcId(1)).returns,
            1,
            "only the clean call returned"
        );
    }

    #[test]
    fn snapshots_merge_like_suffstats() {
        use ct_ir::instr::ProcId;
        let mut a = diamond_mote();
        let mut b = diamond_mote();
        a.call(ProcId(0), &[20], &mut NullProfiler).unwrap();
        b.call(ProcId(0), &[1], &mut NullProfiler).unwrap();
        let mut ab = a.pmu.snapshot();
        ab.merge(&b.pmu.snapshot());
        let mut ba = b.pmu.snapshot();
        ba.merge(&a.pmu.snapshot());
        assert_eq!(ab, ba, "merge is commutative");
        // And equals one mote doing both calls.
        let mut both = diamond_mote();
        both.call(ProcId(0), &[20], &mut NullProfiler).unwrap();
        both.call(ProcId(0), &[1], &mut NullProfiler).unwrap();
        assert_eq!(ab, both.pmu.snapshot());
    }

    #[test]
    #[should_panic(expected = "different programs")]
    fn mismatched_snapshot_merge_panics() {
        let mut a = PmuSnapshot {
            procs: vec![PmuCounters::default()],
            total: PmuCounters::default(),
        };
        let b = PmuSnapshot {
            procs: vec![PmuCounters::default(); 2],
            total: PmuCounters::default(),
        };
        a.merge(&b);
    }
}

//! E4 — Branch misprediction reduction by code placement (Table).
//!
//! Claim evaluated: placement driven by Code Tomography's *estimated*
//! profile reduces the taken-branch (misprediction) rate close to what the
//! exact profile achieves. Layouts compared on identical replayed inputs.

use ct_bench::{
    edge_frequencies, estimate_run, f4, penalties, random_layout, replay_with_layout, run_app,
    write_result, Mcu, Table,
};
use ct_cfg::layout::Layout;
use ct_core::estimator::EstimateOptions;
use ct_mote::timer::VirtualTimer;
use ct_placement::{place_procedure, Strategy};

fn main() {
    let n = 3_000;
    let mcu = Mcu::Avr;
    let pen = penalties(mcu);
    let mut table = Table::new(vec![
        "app",
        "natural",
        "random",
        "PH(true)",
        "PH(estimated)",
        "est-vs-true gap",
    ]);

    for app in ct_apps::all_apps() {
        // Profile once on the natural layout with the realistic coarse timer.
        let run = run_app(&app, mcu, n, VirtualTimer::mhz1_at_8mhz(), 0, 4_000);
        let (est, _acc) = estimate_run(&run, EstimateOptions::default());
        let cfg = run.cfg().clone();

        let freq_true = edge_frequencies(&cfg, &run.truth);
        let freq_est = edge_frequencies(&cfg, &est.probs);

        let layouts: Vec<(&str, Layout)> = vec![
            ("natural", Layout::natural(&cfg)),
            ("random", random_layout(&cfg, 99)),
            (
                "PH(true)",
                place_procedure(&cfg, &freq_true, &pen, Strategy::PettisHansen),
            ),
            (
                "PH(estimated)",
                place_procedure(&cfg, &freq_est, &pen, Strategy::PettisHansen),
            ),
        ];

        let mut rates = Vec::new();
        for (_, layout) in &layouts {
            let (cost, _cycles) = replay_with_layout(&app, mcu, layout.clone(), n, 4_000);
            rates.push(cost.misprediction_rate());
        }
        let gap = rates[3] - rates[2];
        table.row(vec![
            app.name.to_string(),
            f4(rates[0]),
            f4(rates[1]),
            f4(rates[2]),
            f4(rates[3]),
            f4(gap),
        ]);
        eprintln!("e4: {} done", app.name);
    }

    let out = format!(
        "# E4 — Misprediction (taken-branch) rate by layout\n\n\
         {n} invocations, identical inputs per layout (seed 4000); profile taken on the\n\
         natural layout with a 1 MHz timer (see E2 for the resolution sweep); placement = Pettis–Hansen.\n\
         Static predict-not-taken: every taken conditional branch mispredicts.\n\n{}",
        table.to_markdown()
    );
    println!("{out}");
    write_result("e4_placement.md", &out);
}

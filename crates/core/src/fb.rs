//! Forward–backward analysis of the per-procedure Markov chain over the
//! time-expanded state space.
//!
//! This is the inference engine behind the EM estimator. For the chain with
//! parameters `θ` and static block/edge cycle costs:
//!
//! - the **forward** table `f(b, t)` is the probability of arriving at block
//!   `b` (before executing it) having consumed exactly `t` cycles;
//! - the **backward** table `g(b, t)` is the probability that the total
//!   remaining duration (including executing `b`) is exactly `t`.
//!
//! The procedure's duration distribution is `g(entry, ·)`, and the posterior
//! expected traversal count of edge `(u → v)` given an observed duration
//! decomposes as `p_e · Σ_t f(u,t) · g(v, d − t − c_u − c_e) / D(d)` — the
//! Baum–Welch statistics, computed here against the quantization kernel so
//! coarse-timer observations are handled exactly.
//!
//! ## Engine layout
//!
//! Both tables are computed by frontier propagation with flat sorted-vec
//! PMFs (`ct_stats::pmf`) instead of `BTreeMap` frontiers:
//!
//! - the forward table by one propagation from the entry block;
//! - **all** backward tables by one propagation over the *reversed* graph,
//!   seeded at the Return blocks — `g(u)` receives `p_e · (c_u + c_e ⊕ g(v))`
//!   along each edge `u → v`, so every block's remaining-duration PMF
//!   materializes in a single pass (the first generation ran an independent
//!   DP per block; that engine survives as [`crate::fb_reference`]);
//! - the E-step computes **one** windowed convolution
//!   `h_e(d) = Σ_t f(u,t) · g(v, d − t − c_u − c_e)` per edge and scores all
//!   observed ticks against it, instead of rescanning the `f ⊗ g` product
//!   for every `(sample, edge)` pair.

use crate::quantize::{duration_window, pmf_tick_score_soa};
use crate::samples::DurationSamples;
use ct_cfg::graph::{Cfg, Terminator};
use ct_cfg::profile::BranchProbs;
use ct_stats::cache::{ConvCache, ConvKey};
use ct_stats::pmf::{self, Pmf};
use std::error::Error;
use std::fmt;

/// Tuning knobs for the time-expanded dynamic programs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FbParams {
    /// Probability mass below which a DP entry is dropped (and accounted as
    /// truncated).
    pub mass_eps: f64,
    /// Cap on total `(block, time)` expansions per dynamic program
    /// (runaway-loop guard).
    pub max_entries: usize,
    /// Largest time key the DPs keep (inclusive); entries beyond it are
    /// dropped **silently** (not counted as truncated — they are not lost
    /// to approximation, they are provably unreachable by the caller).
    ///
    /// [`e_step`] sets this to the upper edge of the largest observed
    /// tick's [`duration_window`]: a forward arrival `t`, a backward
    /// remainder `s`, or a duration key `d` beyond that bound can never
    /// enter any tick score (`t ≤ d ≤ hi`, `s ≤ d ≤ hi`), so the capped
    /// E-step is **bit-identical** to the uncapped one while the DPs skip
    /// every table entry past the observation horizon — on long unrolled
    /// chains that is the majority of the support. `u64::MAX` (the
    /// default) keeps the full support, e.g. for duration-distribution
    /// queries.
    pub time_cap: u64,
}

impl Default for FbParams {
    fn default() -> Self {
        FbParams {
            mass_eps: 1e-9,
            max_entries: 4_000_000,
            time_cap: u64::MAX,
        }
    }
}

/// Failure of the time-expanded DP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FbError {
    /// The DP exceeded its entry budget (loop continuation probability too
    /// close to 1 for the requested precision).
    SupportExplosion {
        /// The configured entry cap.
        max_entries: usize,
    },
    /// The CFG/probability inputs were inconsistent (e.g. cost vector length
    /// mismatch).
    Shape(String),
    /// A likelihood or posterior count went non-finite (NaN/∞) — numerical
    /// breakdown the EM watchdog refuses to iterate past.
    NonFinite {
        /// The EM iteration (1-based) at which the breakdown was detected.
        iteration: usize,
    },
}

impl fmt::Display for FbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FbError::SupportExplosion { max_entries } => {
                write!(f, "time-expanded DP exceeded {max_entries} entries")
            }
            FbError::Shape(msg) => write!(f, "shape error: {msg}"),
            FbError::NonFinite { iteration } => {
                write!(f, "non-finite likelihood at EM iteration {iteration}")
            }
        }
    }
}

impl Error for FbError {}

/// Sparse probability table per block: sorted `(cycles, probability)` pairs.
/// This is the raw (array-of-structs) layout the propagation frontiers use;
/// finished tables are stored structure-of-arrays as [`Pmf`].
pub type SparsePmf = Vec<(u64, f64)>;

/// Forward and backward tables for one parameter vector.
///
/// Tables are stored structure-of-arrays ([`Pmf`]): the E-step's convolution
/// and scoring inner loops run over contiguous mass slices, and
/// contiguous-support blocks skip binary-search windowing.
#[derive(Debug, Clone)]
pub struct FbTables {
    /// `forward[b]`: arrival distribution at block `b`.
    pub forward: Vec<Pmf>,
    /// `backward[b]`: remaining-duration distribution from block `b`.
    pub backward: Vec<Pmf>,
    /// Probability mass lost to `mass_eps` pruning (upper bound across DPs).
    pub truncated: f64,
}

impl FbTables {
    /// The procedure's end-to-end duration distribution (`g(entry, ·)`).
    pub fn duration_pmf(&self, cfg: &Cfg) -> &Pmf {
        &self.backward[cfg.entry().index()]
    }
}

/// Computes forward and backward tables.
///
/// # Errors
///
/// [`FbError::SupportExplosion`] when pruning cannot contain the DP, and
/// [`FbError::Shape`] for mismatched cost vectors.
pub fn compute_tables(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    probs: &BranchProbs,
    params: FbParams,
) -> Result<FbTables, FbError> {
    let edges = cfg.edges();
    if block_costs.len() != cfg.len() {
        return Err(FbError::Shape(format!(
            "expected {} block costs, got {}",
            cfg.len(),
            block_costs.len()
        )));
    }
    if edge_costs.len() != edges.len() {
        return Err(FbError::Shape(format!(
            "expected {} edge costs, got {}",
            edges.len(),
            edge_costs.len()
        )));
    }
    let edge_probs = probs.edge_probs(cfg);
    let is_return: Vec<bool> = cfg
        .iter()
        .map(|(_, b)| matches!(b.term, Terminator::Return))
        .collect();
    let mut out_edges = vec![Vec::new(); cfg.len()];
    let mut in_edges = vec![Vec::new(); cfg.len()];
    for e in &edges {
        out_edges[e.from.index()].push((e.index, e.to.index()));
        in_edges[e.to.index()].push((e.index, e.from.index()));
    }

    let mut truncated = 0.0;
    let forward = forward_table(
        cfg,
        block_costs,
        edge_costs,
        &edge_probs,
        &out_edges,
        &is_return,
        params,
        &mut truncated,
    )?;
    let backward = backward_tables(
        block_costs,
        edge_costs,
        &edge_probs,
        &in_edges,
        &is_return,
        params,
        &mut truncated,
    )?;
    Ok(FbTables {
        forward,
        backward,
        truncated,
    })
}

/// Forward propagation from the entry block with per-block flat frontiers.
///
/// Blocks are visited in index order and frontier entries in ascending time,
/// and merged masses are summed in contribution order — the same enumeration
/// and summation order as the reference `BTreeMap` engine, so results match
/// it bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn forward_table(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    edge_probs: &[f64],
    out_edges: &[Vec<(usize, usize)>],
    is_return: &[bool],
    params: FbParams,
    truncated: &mut f64,
) -> Result<Vec<Pmf>, FbError> {
    let n = cfg.len();
    // Raw (uncoalesced) arrival contributions per block, coalesced at the end.
    let mut acc: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n];
    // Current frontier per block, coalesced; and next-round staging.
    let mut cur: Vec<SparsePmf> = vec![Vec::new(); n];
    let mut next: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n];
    let entry = cfg.entry().index();
    cur[entry].push((0, 1.0));
    acc[entry].push((0, 1.0));
    let mut processed: usize = 0;

    loop {
        let frontier_len: usize = cur.iter().map(Vec::len).sum();
        if frontier_len == 0 {
            break;
        }
        processed += frontier_len;
        if processed > params.max_entries {
            return Err(FbError::SupportExplosion {
                max_entries: params.max_entries,
            });
        }
        for b in 0..n {
            if cur[b].is_empty() {
                continue;
            }
            if is_return[b] {
                cur[b].clear(); // absorbed; arrival already recorded
                continue;
            }
            let c_b = block_costs[b];
            for &(t, mass) in &cur[b] {
                for &(ei, v) in &out_edges[b] {
                    let p = edge_probs[ei];
                    if p <= 0.0 {
                        continue;
                    }
                    let m = mass * p;
                    if m < params.mass_eps {
                        *truncated += m;
                        continue;
                    }
                    let t2 = t + c_b + edge_costs[ei];
                    if t2 > params.time_cap {
                        continue; // past the observation horizon: unreachable by any score
                    }
                    next[v].push((t2, m));
                    acc[v].push((t2, m));
                }
            }
            cur[b].clear();
        }
        for b in 0..n {
            if !next[b].is_empty() {
                std::mem::swap(&mut cur[b], &mut next[b]);
                pmf::coalesce(&mut cur[b]);
            }
        }
    }
    Ok(acc
        .into_iter()
        .map(|mut v| {
            pmf::coalesce(&mut v);
            Pmf::from_sorted(v)
        })
        .collect())
}

/// All blocks' remaining-duration PMFs in **one** propagation over the
/// reversed graph.
///
/// Seed: each Return block `r` holds `g(r) = {(c_r, 1.0)}`. Propagation:
/// when `g(v)` gains mass `m` at remaining time `t`, every in-edge
/// `u → v` (probability `p`, cost `c_e`) contributes
/// `(t + c_e + c_u, m·p)` to `g(u)` — both into the result and back into
/// the frontier for `u`'s own predecessors. Mass in cycles decays by the
/// branch probabilities each lap and is pruned at `mass_eps`, exactly like
/// the per-block DPs this replaces; the difference is that every path
/// suffix is walked once instead of once per starting block.
fn backward_tables(
    block_costs: &[u64],
    edge_costs: &[u64],
    edge_probs: &[f64],
    in_edges: &[Vec<(usize, usize)>],
    is_return: &[bool],
    params: FbParams,
    truncated: &mut f64,
) -> Result<Vec<Pmf>, FbError> {
    let n = block_costs.len();
    let mut result: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n];
    let mut cur: Vec<SparsePmf> = vec![Vec::new(); n];
    let mut next: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n];
    for b in 0..n {
        if is_return[b] {
            let c = block_costs[b];
            if c > params.time_cap {
                continue; // past the observation horizon: unreachable by any score
            }
            cur[b].push((c, 1.0));
            result[b].push((c, 1.0));
        }
    }
    let mut processed: usize = 0;

    loop {
        let frontier_len: usize = cur.iter().map(Vec::len).sum();
        if frontier_len == 0 {
            break;
        }
        processed += frontier_len;
        if processed > params.max_entries {
            return Err(FbError::SupportExplosion {
                max_entries: params.max_entries,
            });
        }
        for v in 0..n {
            if cur[v].is_empty() {
                continue;
            }
            for &(t, mass) in &cur[v] {
                for &(ei, u) in &in_edges[v] {
                    let p = edge_probs[ei];
                    if p <= 0.0 {
                        continue;
                    }
                    let m = mass * p;
                    if m < params.mass_eps {
                        *truncated += m;
                        continue;
                    }
                    let t2 = t + edge_costs[ei] + block_costs[u];
                    if t2 > params.time_cap {
                        continue; // past the observation horizon: unreachable by any score
                    }
                    next[u].push((t2, m));
                    result[u].push((t2, m));
                }
            }
            cur[v].clear();
        }
        for b in 0..n {
            if !next[b].is_empty() {
                std::mem::swap(&mut cur[b], &mut next[b]);
                pmf::coalesce(&mut cur[b]);
            }
        }
    }
    Ok(result
        .into_iter()
        .map(|mut v| {
            pmf::coalesce(&mut v);
            Pmf::from_sorted(v)
        })
        .collect())
}

/// Posterior expected edge-traversal counts aggregated over a sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeExpectations {
    /// Expected traversal count per edge (summed over samples).
    pub counts: Vec<f64>,
    /// Total log-likelihood of the explained samples.
    pub loglik: f64,
    /// Samples whose observed ticks have (numerically) zero probability
    /// under the model — contamination or truncation casualties.
    pub unexplained: usize,
}

/// Iteration-to-iteration E-step state: version stamps for every block's
/// forward/backward PMF plus the per-edge convolution cache they key.
///
/// After each table build the cache compares every block's PMF against the
/// previous iteration **bitwise** ([`Pmf::bits_eq`]) and bumps the block's
/// version stamp only on change. An edge whose source-arrival version,
/// target-remaining version, shift, and scoring window all match the cached
/// entry reuses the previous windowed convolution — bit-identical to
/// recomputation, so cached and uncached runs are indistinguishable.
///
/// The cache is intentionally long-lived: held across EM iterations it
/// skips convolutions for blocks untouched by a parameter move; held across
/// batches (incremental estimation) it skips the *entire* first E-step's
/// convolutions whenever the warm start reproduces the previous optimum's
/// tables and the observed-tick window is unchanged.
#[derive(Debug, Clone)]
pub struct EStepCache {
    conv: ConvCache,
    f_version: Vec<u64>,
    g_version: Vec<u64>,
    prev_forward: Vec<Pmf>,
    prev_backward: Vec<Pmf>,
}

impl Default for EStepCache {
    fn default() -> Self {
        EStepCache::new()
    }
}

impl EStepCache {
    /// An empty cache honoring the `CT_CONV_CACHE` environment knob.
    pub fn new() -> EStepCache {
        EStepCache::with_cache_enabled(ct_stats::cache::cache_enabled_from_env())
    }

    /// An empty cache with the enable switch forced (for A/B tests).
    pub fn with_cache_enabled(enabled: bool) -> EStepCache {
        EStepCache {
            conv: ConvCache::with_enabled(0, enabled),
            f_version: Vec::new(),
            g_version: Vec::new(),
            prev_forward: Vec::new(),
            prev_backward: Vec::new(),
        }
    }

    /// Version-stamps freshly built tables: bumps a block's stamp iff its
    /// PMF changed bitwise since the previous call.
    fn observe(&mut self, tables: &FbTables) {
        let n = tables.forward.len();
        if self.prev_forward.len() != n {
            // First build (or a different CFG shape): stamp everything.
            self.prev_forward = tables.forward.clone();
            self.prev_backward = tables.backward.clone();
            self.f_version = vec![1; n];
            self.g_version = vec![1; n];
            return;
        }
        for b in 0..n {
            if !tables.forward[b].bits_eq(&self.prev_forward[b]) {
                self.f_version[b] += 1;
                self.prev_forward[b] = tables.forward[b].clone();
            }
            if !tables.backward[b].bits_eq(&self.prev_backward[b]) {
                self.g_version[b] += 1;
                self.prev_backward[b] = tables.backward[b].clone();
            }
        }
    }

    /// Convolutions answered from the cache.
    pub fn hits(&self) -> u64 {
        self.conv.hits()
    }

    /// Convolutions recomputed.
    pub fn misses(&self) -> u64 {
        self.conv.misses()
    }

    /// Whether cached results may be returned.
    pub fn cache_enabled(&self) -> bool {
        self.conv.enabled()
    }
}

/// Runs one E-step: builds tables for `probs` and computes posterior expected
/// edge-traversal counts for `samples` (the entry point the EM loop uses).
///
/// Per edge `e = (u → v)` this convolves `f(u) ⊗ g(v)` **once** over the
/// union of the observed ticks' duration windows,
/// `h_e(d) = Σ_t f(u,t) · g(v, d − t − c_u − c_e)`, then scores every
/// distinct tick against `h_e` — instead of rescanning the product per
/// `(sample, edge)` pair.
pub fn e_step<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    probs: &BranchProbs,
    samples: &S,
    params: FbParams,
) -> Result<(EdgeExpectations, FbTables), FbError> {
    e_step_inner(cfg, block_costs, edge_costs, probs, samples, params, None)
}

/// [`e_step`] with a live [`EStepCache`]: edges whose factor PMFs and
/// scoring window are unchanged since the previous call reuse their windowed
/// convolution. Results are bit-identical to the uncached path.
pub fn e_step_cached<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    probs: &BranchProbs,
    samples: &S,
    params: FbParams,
    cache: &mut EStepCache,
) -> Result<(EdgeExpectations, FbTables), FbError> {
    e_step_inner(
        cfg,
        block_costs,
        edge_costs,
        probs,
        samples,
        params,
        Some(cache),
    )
}

fn e_step_inner<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    probs: &BranchProbs,
    samples: &S,
    params: FbParams,
    mut cache: Option<&mut EStepCache>,
) -> Result<(EdgeExpectations, FbTables), FbError> {
    let cpt = samples.cycles_per_tick();
    let counted = samples.counted();
    // Cap the DPs at the largest observed tick's window: no table entry
    // beyond it can enter any score (see [`FbParams::time_cap`]), so this
    // changes no output bit — it only stops the DPs from expanding support
    // past the observation horizon.
    let mut params = params;
    if let Some(&(t_max, _)) = counted.last() {
        if let Ok((_, hi)) = crate::quantize::try_duration_window(t_max, cpt) {
            params.time_cap = params.time_cap.min(hi);
        }
    }
    let tables = compute_tables(cfg, block_costs, edge_costs, probs, params)?;
    if let Some(c) = cache.as_deref_mut() {
        c.observe(&tables);
    }
    let edges = cfg.edges();
    let edge_probs = probs.edge_probs(cfg);
    let duration = tables.duration_pmf(cfg);
    let mut counts = vec![0.0; edges.len()];
    let mut loglik = 0.0;
    let mut unexplained = 0;

    // Normalizers per distinct tick, plus the union window over explained
    // ticks — the support the per-edge convolutions are restricted to.
    let mut explained: Vec<(u64, usize, f64)> = Vec::new();
    let (mut win_lo, mut win_hi) = (u64::MAX, 0u64);
    for (t_obs, n) in counted {
        let z = pmf_tick_score_soa(duration, t_obs, cpt);
        if z <= 1e-300 {
            unexplained += n;
            continue;
        }
        loglik += n as f64 * z.ln();
        let (lo, hi) = duration_window(t_obs, cpt);
        win_lo = win_lo.min(lo);
        win_hi = win_hi.max(hi);
        explained.push((t_obs, n, z));
    }

    if !explained.is_empty() {
        for e in edges.iter() {
            let p_e = edge_probs[e.index];
            if p_e <= 0.0 {
                continue;
            }
            let delta = block_costs[e.from.index()] + edge_costs[e.index];
            let f_u = &tables.forward[e.from.index()];
            let g_v = &tables.backward[e.to.index()];
            if f_u.is_empty() || g_v.is_empty() {
                continue;
            }
            // Tighten the union window to this edge's achievable support:
            // no term of `f ⊗ g` shifted by `delta` lands outside
            // [f.min + g.min + δ, f.max + g.max + δ], so clipping changes
            // no output bit — it only shrinks the dense path's buffer from
            // the full observed-duration range to the edge's own span.
            let win_lo = win_lo.max(
                f_u.keys()[0]
                    .saturating_add(g_v.keys()[0])
                    .saturating_add(delta),
            );
            let win_hi = win_hi.min(
                f_u.keys()[f_u.len() - 1]
                    .saturating_add(g_v.keys()[g_v.len() - 1])
                    .saturating_add(delta),
            );
            if win_lo > win_hi {
                continue;
            }
            let score = |h: &Pmf, counts: &mut [f64]| {
                for &(t_obs, n, z) in &explained {
                    let acc = pmf_tick_score_soa(h, t_obs, cpt);
                    counts[e.index] += n as f64 * p_e * acc / z;
                }
            };
            match cache.as_deref_mut() {
                Some(c) => {
                    let key = ConvKey {
                        f_version: c.f_version[e.from.index()],
                        g_version: c.g_version[e.to.index()],
                        shift: delta,
                        lo: win_lo,
                        hi: win_hi,
                    };
                    let h = c.conv.get_or_compute(e.index, key, || {
                        pmf::convolve_window_pmf(f_u, g_v, delta, win_lo, win_hi)
                    });
                    score(h, &mut counts);
                }
                None => {
                    let h = pmf::convolve_window_pmf(f_u, g_v, delta, win_lo, win_hi);
                    score(&h, &mut counts);
                }
            }
        }
    }

    Ok((
        EdgeExpectations {
            counts,
            loglik,
            unexplained,
        },
        tables,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::TimingSamples;
    use ct_cfg::builder::{diamond, while_loop};

    fn diamond_setup(p: f64) -> (ct_cfg::graph::Cfg, Vec<u64>, Vec<u64>, BranchProbs) {
        let cfg = diamond();
        let block_costs = vec![10, 100, 200, 5];
        let edge_costs = vec![1, 2, 0, 0];
        let probs = BranchProbs::from_vec(&cfg, vec![p]);
        (cfg, block_costs, edge_costs, probs)
    }

    #[test]
    fn duration_pmf_of_diamond_is_two_point() {
        let (cfg, bc, ec, probs) = diamond_setup(0.7);
        let t = compute_tables(&cfg, &bc, &ec, &probs, FbParams::default()).unwrap();
        let d = t.duration_pmf(&cfg).entries();
        // true path: 10+1+100+0+5 = 116; false: 10+2+200+0+5 = 217.
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, 116);
        assert!((d[0].1 - 0.7).abs() < 1e-12);
        assert_eq!(d[1].0, 217);
        assert!((d[1].1 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn forward_table_arrivals() {
        let (cfg, bc, ec, probs) = diamond_setup(0.7);
        let t = compute_tables(&cfg, &bc, &ec, &probs, FbParams::default()).unwrap();
        // Arrive at then (b1) at t = 10+1 = 11 with mass 0.7.
        assert_eq!(t.forward[1].entries(), vec![(11, 0.7)]);
        // Arrive at join (b3) from both arms.
        assert_eq!(t.forward[3].len(), 2);
        let total: f64 = t.forward[3].masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn backward_tables_cover_every_block() {
        let (cfg, bc, ec, probs) = diamond_setup(0.7);
        let t = compute_tables(&cfg, &bc, &ec, &probs, FbParams::default()).unwrap();
        // g(then) = {100+0+5}, g(else) = {200+0+5}, g(join) = {5}.
        assert_eq!(t.backward[1].entries(), vec![(105, 1.0)]);
        assert_eq!(t.backward[2].entries(), vec![(205, 1.0)]);
        assert_eq!(t.backward[3].entries(), vec![(5, 1.0)]);
    }

    #[test]
    fn e_step_attributes_samples_to_paths() {
        let (cfg, bc, ec, probs) = diamond_setup(0.5);
        // 30 observations of the fast path, 10 of the slow, cycle-accurate.
        let mut ticks = vec![116u64; 30];
        ticks.extend(vec![217u64; 10]);
        let samples = TimingSamples::new(ticks, 1);
        let (exp, _) = e_step(&cfg, &bc, &ec, &probs, &samples, FbParams::default()).unwrap();
        // Edge 0 = cond→then: all 30 fast samples; edge 1 = cond→else: 10.
        assert!((exp.counts[0] - 30.0).abs() < 1e-9, "{:?}", exp.counts);
        assert!((exp.counts[1] - 10.0).abs() < 1e-9);
        assert_eq!(exp.unexplained, 0);
        assert!(exp.loglik < 0.0);
    }

    #[test]
    fn e_step_with_quantized_ticks() {
        let (cfg, bc, ec, probs) = diamond_setup(0.5);
        // cpt = 100: fast path 116 cycles → ticks 1 (84%) or 2 (16%);
        // slow path 217 → ticks 2 (83%) or 3 (17%). Observed tick 3 must be
        // attributed fully to the slow path.
        let samples = TimingSamples::new(vec![3], 100);
        let (exp, _) = e_step(&cfg, &bc, &ec, &probs, &samples, FbParams::default()).unwrap();
        assert!(exp.counts[0].abs() < 1e-12, "{:?}", exp.counts);
        assert!((exp.counts[1] - 1.0).abs() < 1e-9);
        // Tick 1 is unambiguously fast.
        let samples = TimingSamples::new(vec![1], 100);
        let (exp, _) = e_step(&cfg, &bc, &ec, &probs, &samples, FbParams::default()).unwrap();
        assert!((exp.counts[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn impossible_observation_is_unexplained() {
        let (cfg, bc, ec, probs) = diamond_setup(0.5);
        let samples = TimingSamples::new(vec![9999], 1);
        let (exp, _) = e_step(&cfg, &bc, &ec, &probs, &samples, FbParams::default()).unwrap();
        assert_eq!(exp.unexplained, 1);
        assert!(exp.counts.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn loop_tables_have_geometric_support() {
        let cfg = while_loop();
        let bc = vec![2, 3, 10, 1];
        let ec = vec![0; cfg.edges().len()];
        let mut probs = BranchProbs::uniform(&cfg, 0.5);
        probs.set_prob_true(ct_cfg::graph::BlockId(1), 0.5);
        let t = compute_tables(&cfg, &bc, &ec, &probs, FbParams::default()).unwrap();
        let d = t.duration_pmf(&cfg).entries();
        // k iterations: 2 + 3(k+1) + 10k + 1 = 6 + 13k, each w.p. 0.5^{k+1}.
        assert_eq!(d[0], (6, 0.5));
        assert_eq!(d[1].0, 19);
        assert!((d[1].1 - 0.25).abs() < 1e-12);
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        assert!(total > 0.999);
    }

    #[test]
    fn loop_e_step_counts_iterations() {
        let cfg = while_loop();
        let bc = vec![2, 3, 10, 1];
        let ec = vec![0; cfg.edges().len()];
        let probs = BranchProbs::from_vec(&cfg, vec![0.5]);
        // Observe a run with exactly 2 iterations: d = 6 + 26 = 32.
        let samples = TimingSamples::new(vec![32], 1);
        let (exp, _) = e_step(&cfg, &bc, &ec, &probs, &samples, FbParams::default()).unwrap();
        // Back edge (body→header) is edge index 2 (jump); header true edge
        // (continue) index 0 taken twice, false edge once.
        let edges = cfg.edges();
        let true_idx = edges
            .iter()
            .find(|e| e.kind == ct_cfg::graph::EdgeKind::BranchTrue)
            .unwrap()
            .index;
        let false_idx = edges
            .iter()
            .find(|e| e.kind == ct_cfg::graph::EdgeKind::BranchFalse)
            .unwrap()
            .index;
        assert!(
            (exp.counts[true_idx] - 2.0).abs() < 1e-9,
            "{:?}",
            exp.counts
        );
        assert!((exp.counts[false_idx] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn explosion_guard_fires() {
        let cfg = while_loop();
        let bc = vec![2, 3, 10, 1];
        let ec = vec![0; cfg.edges().len()];
        let probs = BranchProbs::from_vec(&cfg, vec![0.9999]);
        let params = FbParams {
            mass_eps: 1e-300,
            max_entries: 4,
            ..FbParams::default()
        };
        assert!(matches!(
            compute_tables(&cfg, &bc, &ec, &probs, params),
            Err(FbError::SupportExplosion { .. })
        ));
    }

    #[test]
    fn shape_errors_detected() {
        let (cfg, bc, _, probs) = diamond_setup(0.5);
        let bad_ec = vec![0u64; 1];
        assert!(matches!(
            compute_tables(&cfg, &bc, &bad_ec, &probs, FbParams::default()),
            Err(FbError::Shape(_))
        ));
    }

    #[test]
    fn matches_reference_engine_on_loop() {
        let cfg = while_loop();
        let bc = vec![2, 3, 10, 1];
        let ec = vec![0; cfg.edges().len()];
        let probs = BranchProbs::from_vec(&cfg, vec![0.7]);
        let params = FbParams {
            mass_eps: 1e-12,
            ..FbParams::default()
        };
        let new = compute_tables(&cfg, &bc, &ec, &probs, params).unwrap();
        let old = crate::fb_reference::compute_tables(&cfg, &bc, &ec, &probs, params).unwrap();
        for b in 0..cfg.len() {
            assert_eq!(new.forward[b].len(), old.forward[b].len(), "forward[{b}]");
            for (x, y) in new.forward[b].iter().zip(old.forward[b].iter()) {
                assert_eq!(x.0, y.0);
                assert!((x.1 - y.1).abs() < 1e-12);
            }
            assert_eq!(
                new.backward[b].len(),
                old.backward[b].len(),
                "backward[{b}]"
            );
            for (x, y) in new.backward[b].iter().zip(old.backward[b].iter()) {
                assert_eq!(x.0, y.0);
                assert!((x.1 - y.1).abs() < 1e-12);
            }
        }
    }
}

//! Minimal table builder: the experiment harnesses print markdown tables to
//! stdout and mirror them into `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple string table with a header row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.join(","));
        }
        out
    }
}

/// Writes `content` under `results/<name>` (creating the directory), best
/// effort: failures are reported to stderr but do not abort the experiment.
///
/// A run manifest (`results/<stem>.manifest.json` — seeds, env knobs, git
/// rev, per-stage timings, estimator audit trail) rides along with every
/// result, and any `CT_TRACE`/`CT_TRACE_JSON` sinks are flushed, so each
/// experiment binary gets observability output for free.
pub fn write_result(name: &str, content: &str) {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    if let Err(e) = fs::write(dir.join(name), content) {
        eprintln!("warning: cannot write results/{name}: {e}");
    }
    let stem = name.rsplit_once('.').map_or(name, |(s, _)| s);
    let manifest = format!("{stem}.manifest.json");
    if let Err(e) = ct_obs::write_manifest(&dir.join(&manifest), stem, &[]) {
        eprintln!("warning: cannot write results/{manifest}: {e}");
    }
    ct_obs::flush_env_sinks();
}

/// Writes the run manifest to the path named by the `CT_MANIFEST` env
/// knob, when set — even in smoke mode (unlike [`write_result`], which
/// smoke runs skip). This is how check.sh's PMU drift gate captures two
/// runs' counters for `ct-obs-diff` without touching `results/`.
pub fn write_manifest_env(stem: &str) {
    let Ok(path) = std::env::var("CT_MANIFEST") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if let Err(e) = ct_obs::write_manifest(Path::new(&path), stem, &[]) {
        eprintln!("warning: cannot write manifest {path}: {e}");
    }
    ct_obs::flush_env_sinks();
}

/// Formats a float with 4 decimal places (the report convention).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]).row(vec!["3", "4"]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["7"]);
        assert_eq!(t.to_csv(), "x\n7\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new(vec!["a", "b"]).row(vec!["1"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(f2(10.0), "10.00");
    }
}

//! Method-of-moments estimation: match the model's duration mean/variance to
//! the sample moments.
//!
//! This is the fallback estimator for procedures whose time-expanded support
//! is too large for exact forward–backward (deeply nested or long loops). It
//! uses only two statistics of the sample, so it is cheaper but weaker than
//! EM — experiment E7 quantifies exactly how much weaker.

use crate::samples::DurationSamples;
use ct_cfg::graph::{Cfg, Terminator};
use ct_cfg::profile::BranchProbs;
use ct_stats::matrix::Matrix;
use ct_stats::solve::Lu;
use std::error::Error;
use std::fmt;

/// Failure of the moments estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum MomentsError {
    /// The chain does not reach its exit under some probed parameters.
    Divergent,
    /// Input shapes are inconsistent.
    Shape(String),
    /// No samples were provided.
    NoSamples,
    /// The sample statistics report a saturated second-moment accumulator:
    /// the variance is a lower bound, so matching model moments against it
    /// would bias the fit. Degrade instead.
    SaturatedMoments,
}

impl fmt::Display for MomentsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MomentsError::Divergent => write!(f, "model diverges (exit unreachable)"),
            MomentsError::Shape(m) => write!(f, "shape error: {m}"),
            MomentsError::NoSamples => write!(f, "no timing samples provided"),
            MomentsError::SaturatedMoments => write!(
                f,
                "sample square-sum saturated; variance untrustworthy for moment matching"
            ),
        }
    }
}

impl Error for MomentsError {}

/// Model mean and variance of the end-to-end duration under `probs`, with
/// per-block and per-edge cycle costs.
///
/// # Errors
///
/// [`MomentsError::Divergent`] when the exit is unreachable (singular
/// system), [`MomentsError::Shape`] on mismatched inputs.
pub fn model_moments(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    probs: &BranchProbs,
) -> Result<(f64, f64), MomentsError> {
    let n = cfg.len();
    if block_costs.len() != n {
        return Err(MomentsError::Shape("block cost length".into()));
    }
    let edges = cfg.edges();
    if edge_costs.len() != edges.len() {
        return Err(MomentsError::Shape("edge cost length".into()));
    }
    let edge_probs = probs.edge_probs(cfg);

    // Unknowns: E[T_b] for non-return blocks ("transient"); returns are known.
    let transient: Vec<usize> = cfg
        .iter()
        .filter(|(_, b)| !matches!(b.term, Terminator::Return))
        .map(|(id, _)| id.index())
        .collect();
    if transient.is_empty() {
        let c = block_costs[cfg.entry().index()] as f64;
        return Ok((c, 0.0));
    }
    let t = transient.len();
    let pos = |b: usize| transient.iter().position(|&x| x == b);

    // First moment: E[T_b] = Σ_e p_e (c_b + c_e + E[T_v]).
    let mut a = Matrix::identity(t);
    let mut b1 = vec![0.0; t];
    for (ti, &bi) in transient.iter().enumerate() {
        for e in edges.iter().filter(|e| e.from.index() == bi) {
            let p = edge_probs[e.index];
            if p <= 0.0 {
                continue;
            }
            let step = (block_costs[bi] + edge_costs[e.index]) as f64;
            b1[ti] += p * step;
            match pos(e.to.index()) {
                Some(tj) => a[(ti, tj)] -= p,
                None => b1[ti] += p * block_costs[e.to.index()] as f64,
            }
        }
    }
    let lu = Lu::factor(&a).map_err(|_| MomentsError::Divergent)?;
    let m1 = lu.solve(&b1).map_err(|_| MomentsError::Divergent)?;

    // Second moment: E[T_b²] = Σ_e p_e [(s)² + 2 s E[T_v] + E[T_v²]],
    // s = c_b + c_e; for return targets E[T_v] = c_v, E[T_v²] = c_v².
    let mut b2 = vec![0.0; t];
    for (ti, &bi) in transient.iter().enumerate() {
        for e in edges.iter().filter(|e| e.from.index() == bi) {
            let p = edge_probs[e.index];
            if p <= 0.0 {
                continue;
            }
            let s = (block_costs[bi] + edge_costs[e.index]) as f64;
            let (ev, known_second) = match pos(e.to.index()) {
                Some(tj) => (m1[tj], None),
                None => {
                    let c = block_costs[e.to.index()] as f64;
                    (c, Some(c * c))
                }
            };
            b2[ti] += p * (s * s + 2.0 * s * ev + known_second.unwrap_or(0.0));
        }
    }
    // Same coefficient matrix (I − Q) as the first moment: the linear part of
    // E[T_v²] for transient targets has coefficient p_e.
    let m2 = lu.solve(&b2).map_err(|_| MomentsError::Divergent)?;

    let entry_pos = pos(cfg.entry().index()).expect("entry is transient");
    let mean = m1[entry_pos];
    let variance = (m2[entry_pos] - mean * mean).max(0.0);
    Ok((mean, variance))
}

/// Options for the moments search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentsOptions {
    /// Coordinate-descent sweeps over the parameter vector.
    pub sweeps: usize,
    /// Golden-section iterations per coordinate.
    pub line_iters: usize,
    /// Probability clamp.
    pub min_prob: f64,
    /// Weight of the variance term relative to the mean term.
    pub variance_weight: f64,
}

impl Default for MomentsOptions {
    fn default() -> Self {
        MomentsOptions {
            sweeps: 12,
            line_iters: 24,
            min_prob: 1e-3,
            variance_weight: 0.5,
        }
    }
}

/// The outcome of a moments fit.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentsResult {
    /// Estimated branch probabilities.
    pub probs: BranchProbs,
    /// Final objective value (normalized squared moment mismatch).
    pub objective: f64,
    /// Coordinate sweeps executed.
    pub sweeps: usize,
}

/// Fits branch probabilities by matching model mean and variance to the
/// sample moments (quantization-corrected), via coordinate descent with
/// golden-section line search.
///
/// # Errors
///
/// [`MomentsError::NoSamples`] for empty input,
/// [`MomentsError::SaturatedMoments`] when the sample statistics lost
/// second-moment information; propagates model errors.
pub fn estimate_moments<S: DurationSamples + ?Sized>(
    cfg: &Cfg,
    block_costs: &[u64],
    edge_costs: &[u64],
    samples: &S,
    opts: MomentsOptions,
) -> Result<MomentsResult, MomentsError> {
    if samples.is_empty() {
        return Err(MomentsError::NoSamples);
    }
    if samples.moments_saturated() {
        return Err(MomentsError::SaturatedMoments);
    }
    let cpt = samples.cycles_per_tick() as f64;
    let sample_mean = samples.mean_cycles();
    // Quantization adds ≈ cpt²/6 variance (uniform phase); subtract it.
    let sample_var = (samples.variance_cycles() - cpt * cpt / 6.0).max(0.0);

    let mean_scale = sample_mean.abs().max(1.0);
    let var_scale = sample_var.abs().max(1.0);

    let objective = |probs: &BranchProbs| -> f64 {
        match model_moments(cfg, block_costs, edge_costs, probs) {
            Ok((m, v)) => {
                let dm = (m - sample_mean) / mean_scale;
                let dv = (v - sample_var) / var_scale;
                dm * dm + opts.variance_weight * dv * dv
            }
            Err(_) => f64::INFINITY,
        }
    };

    let mut probs = BranchProbs::uniform(cfg, 0.5);
    let blocks: Vec<_> = probs.blocks().to_vec();
    let mut best = objective(&probs);
    let mut sweeps_done = 0;

    for _ in 0..opts.sweeps {
        sweeps_done += 1;
        let mut improved = false;
        for &bb in &blocks {
            // Golden-section search on θ_bb.
            let phi = 0.618_033_988_75;
            let mut lo = opts.min_prob;
            let mut hi = 1.0 - opts.min_prob;
            let eval = |theta: f64, probs: &mut BranchProbs| {
                probs.set_prob_true(bb, theta);
                objective(probs)
            };
            let mut x1 = hi - phi * (hi - lo);
            let mut x2 = lo + phi * (hi - lo);
            let mut f1 = eval(x1, &mut probs);
            let mut f2 = eval(x2, &mut probs);
            for _ in 0..opts.line_iters {
                if f1 <= f2 {
                    hi = x2;
                    x2 = x1;
                    f2 = f1;
                    x1 = hi - phi * (hi - lo);
                    f1 = eval(x1, &mut probs);
                } else {
                    lo = x1;
                    x1 = x2;
                    f1 = f2;
                    x2 = lo + phi * (hi - lo);
                    f2 = eval(x2, &mut probs);
                }
            }
            let (theta, f) = if f1 <= f2 { (x1, f1) } else { (x2, f2) };
            probs.set_prob_true(bb, theta);
            if f + 1e-12 < best {
                best = f;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    Ok(MomentsResult {
        probs,
        objective: best,
        sweeps: sweeps_done,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::TimingSamples;
    use ct_cfg::builder::{diamond, while_loop};
    use ct_cfg::graph::BlockId;

    #[test]
    fn model_moments_match_markov_for_state_rewards() {
        // Edge costs zero → must agree with ct-markov's reward moments.
        let cfg = while_loop();
        let bc = vec![2u64, 3, 10, 1];
        let ec = vec![0u64; cfg.edges().len()];
        let probs = BranchProbs::from_vec(&cfg, vec![0.6]);
        let (m, v) = model_moments(&cfg, &bc, &ec, &probs).unwrap();
        let chain = ct_markov::chain_from_cfg(&cfg, &probs).unwrap();
        let rewards: Vec<f64> = bc.iter().map(|&c| c as f64).collect();
        let dm = ct_markov::duration_moments(&chain, &rewards, 0).unwrap();
        assert!((m - dm.mean).abs() < 1e-9, "{m} vs {}", dm.mean);
        assert!((v - dm.variance).abs() < 1e-6, "{v} vs {}", dm.variance);
    }

    #[test]
    fn model_moments_include_edge_costs() {
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let zero = vec![0u64; 4];
        let ec = vec![7u64, 3, 2, 4];
        let probs = BranchProbs::from_vec(&cfg, vec![0.5]);
        let (m0, _) = model_moments(&cfg, &bc, &zero, &probs).unwrap();
        let (m1, _) = model_moments(&cfg, &bc, &ec, &probs).unwrap();
        // Expected extra: 0.5(7+2) + 0.5(3+4) = 8.
        assert!((m1 - m0 - 8.0).abs() < 1e-9, "{m0} {m1}");
    }

    #[test]
    fn diamond_variance_is_bernoulli_spread() {
        let cfg = diamond();
        let bc = vec![0u64, 100, 200, 0];
        let ec = vec![0u64; 4];
        let probs = BranchProbs::from_vec(&cfg, vec![0.5]);
        let (m, v) = model_moments(&cfg, &bc, &ec, &probs).unwrap();
        assert!((m - 150.0).abs() < 1e-9);
        assert!((v - 2500.0).abs() < 1e-6);
    }

    #[test]
    fn estimate_recovers_diamond_probability() {
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        // True p = 0.75: durations 115 (p) / 215 (1-p). Synthesize exact
        // moment-consistent samples.
        let mut ticks = vec![115u64; 750];
        ticks.extend(vec![215u64; 250]);
        let samples = TimingSamples::new(ticks, 1);
        let r = estimate_moments(&cfg, &bc, &ec, &samples, MomentsOptions::default()).unwrap();
        let est = r.probs.as_slice()[0];
        assert!((est - 0.75).abs() < 0.02, "estimated {est}");
    }

    #[test]
    fn estimate_recovers_loop_parameter() {
        let cfg = while_loop();
        let bc = vec![2u64, 3, 10, 1];
        let ec = vec![0u64; cfg.edges().len()];
        // q = 0.5: durations 6 + 13k w.p. 0.5^{k+1}. Build a sample matching
        // the distribution closely: 4096 >> (k+1) copies per bucket is exact
        // (no truncating float cast), and the geometric tail beyond k = 11 —
        // exactly one run's worth of mass — goes into an explicit k = 12
        // record so the fixture holds precisely 4096 runs.
        let mut ticks = Vec::new();
        for k in 0..12u32 {
            let copies = 4096usize >> (k + 1);
            ticks.extend(vec![6 + 13 * u64::from(k); copies]);
        }
        ticks.push(6 + 13 * 12);
        assert_eq!(ticks.len(), 4096, "fixture must carry the full mass");
        let samples = TimingSamples::new(ticks, 1);
        let r = estimate_moments(&cfg, &bc, &ec, &samples, MomentsOptions::default()).unwrap();
        let est = r.probs.prob_true(BlockId(1)).unwrap();
        assert!((est - 0.5).abs() < 0.04, "estimated {est}");
    }

    #[test]
    fn no_samples_is_an_error() {
        let cfg = diamond();
        let bc = vec![1u64; 4];
        let ec = vec![0u64; 4];
        let samples = TimingSamples::new(vec![], 1);
        assert_eq!(
            estimate_moments(&cfg, &bc, &ec, &samples, MomentsOptions::default()),
            Err(MomentsError::NoSamples)
        );
    }

    #[test]
    fn saturated_stats_are_refused() {
        // A square-sum that clamped at u128::MAX floors the variance; the
        // moments estimator must degrade rather than fit against it.
        let cfg = diamond();
        let bc = vec![10u64, 100, 200, 5];
        let ec = vec![0u64; 4];
        let mut stats = crate::stream::SuffStats::new(1);
        stats.push(u64::MAX - 1);
        stats.push(u64::MAX - 1);
        assert!(stats.saturated());
        assert_eq!(
            estimate_moments(&cfg, &bc, &ec, &stats, MomentsOptions::default()),
            Err(MomentsError::SaturatedMoments)
        );
    }

    #[test]
    fn shape_mismatch_detected() {
        let cfg = diamond();
        let probs = BranchProbs::uniform(&cfg, 0.5);
        assert!(matches!(
            model_moments(&cfg, &[1, 2], &[0; 4], &probs),
            Err(MomentsError::Shape(_))
        ));
    }
}

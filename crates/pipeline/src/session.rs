//! The session: one [`RunConfig`], the full stage chain behind methods
//! that stop at any artifact an experiment needs.

use crate::config::{EstimatorChoice, RunConfig};
use crate::error::PipelineError;
use crate::measure;
use crate::stage::{
    self, AppRun, Collect, Compile, Corrupt, Deploy, EstimateStage, Estimated, Evaluate, Place, Run,
};
use ct_cfg::layout::{Layout, LayoutCost};
use ct_cfg::profile::BranchProbs;
use ct_core::incremental::IncrementalEm;
use ct_placement::{place_with_confidence, Strategy, MIN_PLACEMENT_CONFIDENCE};

/// A replayed layout measurement: what the layout cost on identical inputs.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// Branch-taken/misprediction accounting under the replayed profile
    /// (analytical: truth profile × penalty arithmetic).
    pub cost: LayoutCost,
    /// Total cycles the replayed workload consumed.
    pub cycles: u64,
    /// The replay mote's virtual-PMU counters: the *measured* side of the
    /// same accounting, for predicted-vs-measured comparisons.
    pub pmu: ct_mote::pmu::PmuSnapshot,
}

/// The full pipeline's final artifact: measure → estimate → place →
/// re-measure, all under one config.
#[derive(Debug)]
pub struct PipelineReport {
    /// The measured run.
    pub run: AppRun,
    /// The scored estimate.
    pub estimated: Estimated,
    /// The optimized layout.
    pub layout: Layout,
    /// The natural layout replayed on identical inputs.
    pub before: Evaluated,
    /// The optimized layout replayed on identical inputs.
    pub after: Evaluated,
}

/// One pipeline run under one seeded configuration.
///
/// The stage methods mirror the typed [`crate::stage::Stage`] chain
/// but stop wherever an experiment needs an artifact: [`Session::collect`]
/// for the measured run, [`Session::estimate`] for a scored estimate,
/// [`Session::place`]/[`Session::evaluate`] for layouts, and
/// [`Session::run`] for the whole flow in one call.
#[derive(Debug, Clone)]
pub struct Session {
    config: RunConfig,
}

impl Session {
    /// A session over `config`.
    pub fn new(config: RunConfig) -> Session {
        Session { config }
    }

    /// The session's configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Measures one workload run:
    /// `Compile → Deploy → Run → Collect → Corrupt`.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Trap`] if the workload traps.
    pub fn collect(&self) -> Result<AppRun, PipelineError> {
        let compiled = stage::traced(&Compile, &self.config, ())?;
        let deployed = stage::traced(&Deploy::default(), &self.config, compiled)?;
        let executed = stage::traced(&Run, &self.config, deployed)?;
        let run = stage::traced(&Collect, &self.config, executed)?;
        stage::traced(&Corrupt, &self.config, run)
    }

    /// Estimates the run's branch probabilities with the configured
    /// estimator and scores them against the run's ground truth.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Estimate`] when the naive estimator fails hard
    /// (the robust ladder never fails).
    pub fn estimate(&self, run: &AppRun) -> Result<Estimated, PipelineError> {
        self.estimate_as(run, &self.config.estimator)
    }

    /// Like [`Session::estimate`] but with an explicit estimator choice —
    /// for experiments comparing estimators on the *same* collected run.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Estimate`] when the naive estimator fails hard.
    pub fn estimate_as(
        &self,
        run: &AppRun,
        choice: &EstimatorChoice,
    ) -> Result<Estimated, PipelineError> {
        stage::estimate_collected(&self.config, run, choice)
    }

    /// An empty [`IncrementalEm`] accumulator matching this session's timer
    /// resolution and EM controls — for long-lived sessions that ingest
    /// successive collected runs (or radio batches) and re-estimate per
    /// batch via [`Session::estimate_incremental`].
    pub fn incremental(&self) -> IncrementalEm {
        let em = match &self.config.estimator {
            EstimatorChoice::Naive(o) => o.em,
            EstimatorChoice::Robust(o) => o.base.em,
        };
        IncrementalEm::new(self.config.cycles_per_tick, em)
    }

    /// Folds one collected run into `inc` as a [`ct_core::stream::SuffStats`] delta and
    /// re-estimates warm-started from the previous optimum, scoring against
    /// this run's ground truth. The streaming counterpart of
    /// [`Session::estimate`]: amortized cost per batch is a few warm EM
    /// sweeps plus the cache-missed convolutions.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Estimate`] when EM fails hard (including a timer
    /// resolution mismatch between the run and the accumulator).
    pub fn estimate_incremental(
        &self,
        run: &AppRun,
        inc: &mut IncrementalEm,
    ) -> Result<Estimated, PipelineError> {
        stage::estimate_incremental_collected(run, inc)
    }

    /// Computes an optimized layout from a probability vector (estimated
    /// or ground-truth), trusting it fully.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Frequency`] when no edge frequencies exist under
    /// `probs` (exit unreachable).
    pub fn place(
        &self,
        run: &AppRun,
        probs: &BranchProbs,
        strategy: Strategy,
    ) -> Result<Layout, PipelineError> {
        let cfg = run.cfg();
        let freq = measure::edge_frequencies(cfg, probs).map_err(PipelineError::Frequency)?;
        Ok(place_with_confidence(
            cfg,
            &freq,
            1.0,
            MIN_PLACEMENT_CONFIDENCE,
            &self.config.penalties(),
            strategy,
        ))
    }

    /// Confidence-gated placement that never fails: a degenerate
    /// probability vector (no derivable frequencies) or a low-confidence
    /// estimate degrades to the natural layout — placement must never
    /// crash the pipeline.
    pub fn place_gated(
        &self,
        run: &AppRun,
        probs: &BranchProbs,
        confidence: f64,
        strategy: Strategy,
    ) -> Layout {
        let cfg = run.cfg();
        match measure::edge_frequencies(cfg, probs) {
            Ok(freq) => place_with_confidence(
                cfg,
                &freq,
                confidence,
                MIN_PLACEMENT_CONFIDENCE,
                &self.config.penalties(),
                strategy,
            ),
            Err(_) => Layout::natural(cfg),
        }
    }

    /// Replays the identical workload (same seed, cycle-accurate timer,
    /// zero overhead) on `layout`, measuring its cost.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Trap`] if the replayed workload traps.
    pub fn evaluate(&self, layout: &Layout) -> Result<Evaluated, PipelineError> {
        stage::replay(&self.config, layout.clone())
    }

    /// The whole flow in one call, composed from the typed stages:
    /// measure, estimate, place with `strategy`, and replay both the
    /// natural and the optimized layout on identical inputs.
    ///
    /// # Errors
    ///
    /// Any stage's error; see [`PipelineError`].
    pub fn run(&self, strategy: Strategy) -> Result<PipelineReport, PipelineError> {
        let compiled = stage::traced(&Compile, &self.config, ())?;
        let deployed = stage::traced(&Deploy::default(), &self.config, compiled)?;
        let executed = stage::traced(&Run, &self.config, deployed)?;
        let collected = stage::traced(&Collect, &self.config, executed)?;
        let collected = stage::traced(&Corrupt, &self.config, collected)?;
        let estimated = stage::traced(&EstimateStage, &self.config, collected)?;
        let placed = stage::traced(&Place { strategy }, &self.config, estimated)?;
        stage::traced(&Evaluate, &self.config, placed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mcu;
    use ct_core::estimator::EstimateOptions;

    fn sense(n: usize, seed: u64) -> Session {
        Session::new(RunConfig::new("sense").invocations(n).seeded(seed))
    }

    #[test]
    fn collect_produces_consistent_artifacts() {
        let run = sense(300, 42).collect().unwrap();
        assert_eq!(run.samples.len(), 300);
        assert_eq!(run.invocations, 300);
        assert!(run.truth_profile.is_flow_consistent(run.cfg(), 300));
        assert!(run.cycles_used > 0);
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let a = sense(100, 7).collect().unwrap();
        let b = sense(100, 7).collect().unwrap();
        assert_eq!(a.samples.ticks(), b.samples.ticks());
        assert_eq!(a.truth_profile, b.truth_profile);
        let c = sense(100, 8).collect().unwrap();
        assert_ne!(a.samples.ticks(), c.samples.ticks());
    }

    #[test]
    fn estimate_recovers_sense_branch() {
        let session = sense(2000, 1);
        let run = session.collect().unwrap();
        let est = session.estimate(&run).unwrap();
        assert!(
            est.accuracy.mae < 0.02,
            "mae {} (est {:?} truth {:?})",
            est.accuracy.mae,
            est.estimate.probs,
            run.truth
        );
        assert_eq!(est.confidence, 1.0);
        assert!(est.robust.is_none());
    }

    #[test]
    fn robust_choice_carries_ladder_outcome() {
        let session = Session::new(RunConfig::new("sense").invocations(500).seeded(3).robust());
        let run = session.collect().unwrap();
        let est = session.estimate(&run).unwrap();
        let r = est.robust.expect("robust ladder ran");
        assert!(est.confidence > 0.0);
        assert_eq!(r.estimate.probs.as_slice(), est.estimate.probs.as_slice());
    }

    #[test]
    fn estimate_as_overrides_the_configured_choice() {
        let session = sense(500, 5);
        let run = session.collect().unwrap();
        let naive = session
            .estimate_as(&run, &EstimatorChoice::Naive(EstimateOptions::default()))
            .unwrap();
        assert!(naive.robust.is_none());
    }

    #[test]
    fn full_run_improves_or_preserves_mispredictions() {
        use ct_cfg::layout::BranchPredictor;
        let report = sense(800, 11).run(Strategy::Best).unwrap();
        assert!(report.before.cycles > 0);
        assert!(
            report.after.cost.misprediction_rate()
                <= report.before.cost.misprediction_rate() + 1e-9
        );
        // The measured (PMU) rates must tell the same story as the
        // analytical ones.
        let measured = |e: &Evaluated| {
            e.pmu
                .proc(report.run.pid)
                .misprediction_rate(BranchPredictor::AlwaysNotTaken)
        };
        assert!(measured(&report.after) <= measured(&report.before) + 1e-9);
    }

    #[test]
    fn evaluate_measures_cost_on_natural_layout() {
        let session = sense(200, 3);
        let run = session.collect().unwrap();
        let e = session.evaluate(&Layout::natural(run.cfg())).unwrap();
        assert!(e.cycles > 0);
        assert_eq!(e.cost.branches_taken + e.cost.branches_not_taken, 200);
    }

    #[test]
    fn pmu_measures_exactly_what_the_cost_model_charges() {
        use ct_cfg::layout::BranchPredictor;
        // The replay's analytical cost (truth profile × penalty model) and
        // the virtual PMU count the same transfers of the same execution —
        // they must agree *exactly*, not approximately.
        let session = sense(250, 9);
        let run = session.collect().unwrap();
        for layout in [
            Layout::natural(run.cfg()),
            session.place(&run, &run.truth, Strategy::Best).unwrap(),
        ] {
            let e = session.evaluate(&layout).unwrap();
            let c = e.pmu.proc(run.pid);
            assert_eq!(c.cond_taken, e.cost.branches_taken);
            assert_eq!(c.cond_not_taken, e.cost.branches_not_taken);
            assert_eq!(c.jumps, e.cost.jumps_executed);
            assert_eq!(
                c.mispredictions(BranchPredictor::AlwaysNotTaken),
                e.cost.mispredicted
            );
            // Exclusive PMU windows partition the cycles consumed inside
            // activations; nothing outside them runs in this workload.
            assert_eq!(e.pmu.total.cycles, e.cycles);
        }
    }

    #[test]
    fn msp430_config_runs_end_to_end() {
        let session = Session::new(
            RunConfig::new("blink")
                .invocations(200)
                .seeded(1)
                .on(Mcu::Msp430)
                .resolution(8),
        );
        let run = session.collect().unwrap();
        assert_eq!(run.samples.cycles_per_tick(), 8);
        session.estimate(&run).unwrap();
    }
}

//! Event and value types for the trace stream.
//!
//! An [`Event`] is a named record with a flat list of typed fields. Events
//! render to one JSON object per line (JSONL) with `"event"` as the first
//! key followed by the fields in recorded order — the schema contract the
//! golden tests pin.

use crate::json;

/// Field names whose values are timing-dependent and therefore excluded
/// from the deterministic content contract (and from [`Event::stable_key`]).
pub const VOLATILE_FIELDS: &[&str] = &["wall_ns", "cpu_ticks", "cpu_ns", "elapsed_ns"];

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer, rendered exactly.
    U64(u64),
    /// Signed integer, rendered exactly.
    I64(i64),
    /// Float; non-finite values render as `null`.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String, escaped on render.
    Str(String),
}

impl Value {
    /// Appends the JSON rendering of this value to `out`.
    pub fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => json::write_escaped(out, s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One trace event: a name plus typed fields in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name, dotted by convention (`stage.compile`, `em.restart`).
    pub name: String,
    /// Fields in the order they were emitted.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Builds an event from a name and borrowed field pairs.
    pub fn new(name: &str, fields: Vec<(&str, Value)>) -> Self {
        Event {
            name: name.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"event\":");
        json::write_escaped(&mut out, &self.name);
        for (k, v) in &self.fields {
            out.push(',');
            json::write_escaped(&mut out, k);
            out.push(':');
            v.render(&mut out);
        }
        out.push('}');
        out
    }

    /// Deterministic sort key: the event rendered without its
    /// [`VOLATILE_FIELDS`]. Two runs of the same workload produce the same
    /// multiset of stable keys regardless of `CT_THREADS`.
    pub fn stable_key(&self) -> String {
        let mut out = String::with_capacity(64);
        json::write_escaped(&mut out, &self.name);
        for (k, v) in &self.fields {
            if VOLATILE_FIELDS.contains(&k.as_str()) {
                continue;
            }
            out.push(',');
            json::write_escaped(&mut out, k);
            out.push(':');
            v.render(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rendering_is_parseable_and_ordered() {
        let e = Event::new(
            "em.restart",
            vec![
                ("restart", 3u64.into()),
                ("loglik", (-12.5f64).into()),
                ("converged", true.into()),
                ("reason", "tol".into()),
            ],
        );
        let line = e.to_jsonl();
        assert!(line.starts_with("{\"event\":\"em.restart\",\"restart\":3,"));
        let parsed = json::parse(&line).unwrap();
        assert_eq!(
            parsed.get("event").and_then(json::Json::as_str),
            Some("em.restart")
        );
        assert_eq!(
            parsed.get("loglik").and_then(json::Json::as_num),
            Some(-12.5)
        );
        assert_eq!(parsed.get("converged"), Some(&json::Json::Bool(true)));
    }

    #[test]
    fn non_finite_floats_render_null() {
        let e = Event::new("x", vec![("v", f64::NAN.into())]);
        assert!(e.to_jsonl().contains("\"v\":null"));
        assert!(json::parse(&e.to_jsonl()).is_ok());
    }

    #[test]
    fn stable_key_ignores_volatile_fields() {
        let a = Event::new(
            "stage.run",
            vec![("ok", true.into()), ("wall_ns", 10u64.into())],
        );
        let b = Event::new(
            "stage.run",
            vec![("ok", true.into()), ("wall_ns", 99u64.into())],
        );
        assert_eq!(a.stable_key(), b.stable_key());
        let c = Event::new(
            "stage.run",
            vec![("ok", false.into()), ("wall_ns", 10u64.into())],
        );
        assert_ne!(a.stable_key(), c.stable_key());
    }
}

//! The estimation front door's request/response types and the typed
//! errors of the ingest and reduce tiers.

use ct_core::fb::FbError;
use std::error::Error;
use std::fmt;

/// A front-door estimation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimateRequest {
    /// The estimation target, by name (one service instance serves one
    /// procedure's statistics; the name is echoed into the response so
    /// multi-procedure deployments can multiplex over one wire).
    pub procedure: String,
    /// The newest generation the client has already seen, if any: when it
    /// still names the service's current generation *and* an estimate for
    /// it is cached, the response replays that estimate without re-running
    /// EM. `None` always serves (and caches) the current generation.
    pub generation: Option<u64>,
}

impl EstimateRequest {
    /// A request for `procedure` at whatever generation is current.
    pub fn latest(procedure: impl Into<String>) -> EstimateRequest {
        EstimateRequest {
            procedure: procedure.into(),
            generation: None,
        }
    }
}

/// A front-door estimation response: the estimate served from the latest
/// reduced generation, stamped with how current it is.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateResponse {
    /// The requested procedure, echoed.
    pub procedure: String,
    /// The reduce-tier generation the estimate was computed from.
    pub generation: u64,
    /// Distinct batches folded into the served statistics.
    pub batches: u64,
    /// Samples in the served statistics.
    pub samples: usize,
    /// Branch probabilities, one per CFG branch site.
    pub probs: Vec<f64>,
    /// Final log-likelihood of the served EM run.
    pub loglik: f64,
    /// Whether the served EM run converged.
    pub converged: bool,
    /// EM iterations the served run took (0 when replayed from cache).
    pub iterations: usize,
    /// Confidence in the served estimate: 1 when EM converged, halved when
    /// it ran out its iteration budget (callers gate placement on this the
    /// same way `place_with_confidence` gates on coverage).
    pub confidence: f64,
    /// Staleness: batches accepted by the ingest tier but not yet folded
    /// into the served generation (0 = fresh). Under the threaded service
    /// the count is read from relaxed atomics, but it still brackets the
    /// truth: a batch is counted from the moment `ingest` returns until a
    /// reduce folds it in, so after a `Drain` with quiesced producers it
    /// reads exactly 0 and never resurrects drained batches.
    pub staleness: u64,
}

/// Why a non-blocking ingest was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The target shard's bounded queue is full — backpressure. The batch
    /// was *not* enqueued; retry, block, or shed load.
    QueueFull {
        /// The shard whose queue is full.
        shard: usize,
        /// The queue's configured capacity.
        depth: usize,
    },
    /// The target shard's worker is gone (service shut down).
    Closed {
        /// The shard whose channel is closed.
        shard: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::QueueFull { shard, depth } => {
                write!(f, "shard {shard} queue full (depth {depth}): backpressure")
            }
            IngestError::Closed { shard } => write!(f, "shard {shard} channel closed"),
        }
    }
}

impl Error for IngestError {}

/// Why the reduce tier or front door failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Estimation failed (shape mismatch, dynamic-program failure).
    Estimation(FbError),
    /// An estimate was requested before any batch was reduced.
    NoBatches,
    /// A shard worker died or its reply channel broke.
    Shard(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Estimation(e) => write!(f, "service estimation failed: {e}"),
            ServiceError::NoBatches => write!(f, "no batches reduced yet: nothing to estimate"),
            ServiceError::Shard(msg) => write!(f, "shard worker failed: {msg}"),
        }
    }
}

impl Error for ServiceError {}

impl From<FbError> for ServiceError {
    fn from(e: FbError) -> ServiceError {
        ServiceError::Estimation(e)
    }
}

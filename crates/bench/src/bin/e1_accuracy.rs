//! E1 — Estimation accuracy vs sample count (Table).
//!
//! Claim evaluated: end-to-end timing alone recovers branch probabilities,
//! improving with more samples. Cycle-accurate timer isolates the
//! statistical (not quantization) error.

use ct_bench::{f4, par_sweep, write_result, Table};
use ct_pipeline::{EnvConfig, RunConfig, Session};

fn main() {
    let env = EnvConfig::load();
    eprintln!("e1: {}", env.banner());
    let sample_counts: &[usize] = env.pick(&[100, 500, 1_000, 5_000, 20_000], &[100, 500]);
    let seed_base = env.seed_or(1_000);

    let mut headers = vec!["app".to_string(), "branches".to_string()];
    headers.extend(sample_counts.iter().map(|n| format!("n={n}")));
    headers.push("method".to_string());
    let mut table = Table::new(headers);

    // One job per (app, sample count) cell; results come back in grid order.
    let apps = ct_apps::all_apps();
    let apps = &apps[..env.pick(apps.len(), 2)];
    let grid: Vec<(usize, usize, usize)> = (0..apps.len())
        .flat_map(|a| {
            sample_counts
                .iter()
                .enumerate()
                .map(move |(i, &n)| (a, i, n))
        })
        .collect();
    let measured = par_sweep(grid, |(a, i, n)| {
        let session = Session::new(
            RunConfig::for_app(apps[a].clone())
                .invocations(n)
                .seeded(seed_base + i as u64),
        );
        let run = session.collect().expect("bundled apps must not trap");
        let est = session.estimate(&run).expect("estimation succeeds");
        (
            est.accuracy.n_branches,
            est.accuracy.weighted_mae,
            est.estimate.method.to_string(),
        )
    });

    for (a, app) in apps.iter().enumerate() {
        let row = &measured[a * sample_counts.len()..(a + 1) * sample_counts.len()];
        let mut cells = vec![app.name.to_string(), row[0].0.to_string()];
        cells.extend(row.iter().map(|&(_, wmae, _)| f4(wmae)));
        cells.push(row.last().expect("nonempty row").2.clone());
        table.row(cells);
        eprintln!("e1: {} done", app.name);
    }

    // Traced full-pipeline epilogue: one Session::run so a traced e1 run
    // covers every stage, compile through evaluate (the accuracy grid above
    // stops at estimation). Reported on stderr only — stdout is the table
    // and must stay byte-identical whether tracing is on or off.
    let epilogue = Session::new(
        RunConfig::for_app(apps[0].clone())
            .invocations(sample_counts[0])
            .seeded(seed_base),
    )
    .run(ct_placement::Strategy::Best);
    match epilogue {
        Ok(report) => eprintln!(
            "e1: pipeline epilogue ok ({} cycles natural, {} cycles placed)",
            report.before.cycles, report.after.cycles
        ),
        Err(e) => eprintln!("e1: pipeline epilogue failed: {e}"),
    }

    let out = format!(
        "# E1 — Estimation accuracy (weighted MAE of branch probabilities) vs sample count\n\n\
         Cycle-accurate timer; AVR cost model; seed family {seed_base}+.\n\
         {}\n\n{}",
        env.banner(),
        table.to_markdown()
    );
    println!("{out}");
    if !env.smoke {
        write_result("e1_accuracy.md", &out);
    }
    ct_obs::flush_env_sinks();
}
